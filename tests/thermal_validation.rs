//! Cross-crate validation of the thermal path: closed forms
//! (`ptherm-core`) against the exact rectangle integral and the 3-D
//! finite-difference solver (`ptherm-thermal-num`).

use ptherm::floorplan::{generator, Block, ChipGeometry, Floorplan};
use ptherm::model::thermal::rect::{center_rise, rect_rise};
use ptherm::model::thermal::ThermalModel;
use ptherm::thermal_num::{rect_surface_temperature, FdmSolver};

const K_SI: f64 = 148.0;

#[test]
fn eq18_is_exact_at_the_center() {
    for (w, l) in [(1e-6, 0.1e-6), (5e-6, 5e-6), (0.4e-3, 0.3e-3)] {
        let exact = rect_surface_temperature(1e-3, K_SI, w, l, 0.0, 0.0);
        let model = center_rise(1e-3, K_SI, w, l);
        assert!(
            (model - exact).abs() / exact < 1e-12,
            "({w:.1e}, {l:.1e}): {model} vs {exact}"
        );
    }
}

#[test]
fn eq20_far_field_accuracy_holds_for_many_shapes() {
    // The Fig. 5 claim generalized: beyond ~1.5 source lengths the
    // combined estimate stays within 10% of exact for wide-ranging aspect
    // ratios.
    for (w, l) in [
        (1e-6f64, 1e-6f64),
        (2e-6, 0.5e-6),
        (10e-6, 0.35e-6),
        (1e-6, 4e-6),
    ] {
        let s = w.max(l);
        for factor in [2.0, 4.0, 8.0] {
            let x = factor * s;
            let exact = rect_surface_temperature(1e-3, K_SI, w, l, x, 0.4 * s);
            let model = rect_rise(1e-3, K_SI, w, l, x, 0.4 * s);
            let rel = (model - exact).abs() / exact;
            assert!(rel < 0.10, "({w:.1e},{l:.1e}) at {factor}s: rel {rel:.3}");
        }
    }
}

/// Block temperatures from the image-series model vs FDM on the paper's
/// 3-block floorplan: the extended depth series lands within ~25%.
#[test]
fn image_model_matches_fdm_at_block_centers() {
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let model = ThermalModel::with_image_orders(&fp, 2, 9);
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: 24,
        ny: 24,
        nz: 12,
    };
    let sol = fdm.solve(&fp.power_map(24, 24)).expect("fdm solves");
    for b in fp.blocks() {
        let t_model = model.temperature(b.cx, b.cy) - g.sink_temperature;
        let t_fdm = sol.surface_at(b.cx, b.cy) - g.sink_temperature;
        let rel = (t_model - t_fdm).abs() / t_fdm;
        assert!(
            rel < 0.30,
            "{}: model {t_model:.2} vs fdm {t_fdm:.2} ({rel:.3})",
            b.name
        );
    }
}

/// The paper's single-mirror configuration must at least preserve ranking
/// (which block is hottest) even where its magnitudes drift.
#[test]
fn paper_mode_preserves_block_ranking() {
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let model = ThermalModel::paper_defaults(&fp);
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: 24,
        ny: 24,
        nz: 12,
    };
    let sol = fdm.solve(&fp.power_map(24, 24)).expect("fdm solves");
    let rank = |temps: &[f64]| {
        let mut idx: Vec<usize> = (0..temps.len()).collect();
        idx.sort_by(|&a, &b| temps[b].partial_cmp(&temps[a]).expect("finite"));
        idx
    };
    let t_model = model.block_center_temperatures();
    let t_fdm: Vec<f64> = fp
        .blocks()
        .iter()
        .map(|b| sol.surface_at(b.cx, b.cy))
        .collect();
    assert_eq!(
        rank(&t_model),
        rank(&t_fdm),
        "model {t_model:?} vs fdm {t_fdm:?}"
    );
}

/// Zero-flux edges: the discrete FDM field and the image model agree that
/// the outermost gradient is tiny.
#[test]
fn both_references_show_adiabatic_edges() {
    let fp = Floorplan::paper_three_blocks();
    let model = ThermalModel::with_image_orders(&fp, 3, 9);
    let h = 1e-6;
    let y = 0.5e-3;
    let edge = ((model.temperature(h, y) - model.temperature(0.0, y)) / h).abs();
    let interior = ((model.temperature(0.6e-3, y) - model.temperature(0.6e-3 - h, y)) / h).abs();
    assert!(edge < 0.05 * interior, "edge {edge} vs interior {interior}");
}

/// Superposition: a two-block plan equals the sum of its single-block
/// fields (the model is linear in power, like the PDE).
#[test]
fn image_model_superposes() {
    let g = ChipGeometry::paper_1mm();
    let b1 = Block::new("a", 0.3e-3, 0.3e-3, 0.2e-3, 0.2e-3, 0.4);
    let b2 = Block::new("b", 0.7e-3, 0.7e-3, 0.2e-3, 0.2e-3, 0.6);
    let both = Floorplan::new(g, vec![b1.clone(), b2.clone()]).expect("valid");
    let only1 = Floorplan::new(g, vec![b1]).expect("valid");
    let only2 = Floorplan::new(g, vec![b2]).expect("valid");
    let at = (0.5e-3, 0.52e-3);
    let rise_both = ThermalModel::new(&both).temperature_rise(at.0, at.1);
    let rise_sum = ThermalModel::new(&only1).temperature_rise(at.0, at.1)
        + ThermalModel::new(&only2).temperature_rise(at.0, at.1);
    assert!(
        (rise_both - rise_sum).abs() < 1e-9,
        "{rise_both} vs {rise_sum}"
    );
}

/// Many-block chips stay finite and ordered: a 6x6 tiling with uniform
/// power has its hottest tiles in the middle.
#[test]
fn tiled_chip_center_runs_hottest() {
    let fp =
        generator::tiled(ChipGeometry::paper_1mm(), 6, 6, 0.02, 0.02, 0).expect("tiled floorplan");
    let model = ThermalModel::new(&fp);
    let temps = model.block_center_temperatures();
    let center_avg = (temps[14] + temps[15] + temps[20] + temps[21]) / 4.0;
    let corner_avg = (temps[0] + temps[5] + temps[30] + temps[35]) / 4.0;
    assert!(
        center_avg > corner_avg,
        "center {center_avg} vs corner {corner_avg}"
    );
}

/// Thermal resistance consistency chain: Eq. 18 per watt >= the
/// FDM-extracted resistance of the same source on a thick die (the finite
/// sink can only lower it), and both within a factor ~2.
#[test]
fn resistance_chain_is_consistent() {
    let w = 50e-6;
    let l = 50e-6;
    let eq18 = ptherm::model::thermal::resistance::self_heating_resistance(K_SI, w, l);
    let fdm = FdmSolver {
        die_w: 1e-3,
        die_l: 1e-3,
        thickness: 0.5e-3,
        k: K_SI,
        sink_temperature: 300.0,
        nx: 40,
        ny: 40,
        nz: 14,
    };
    let r_fdm = fdm
        .source_thermal_resistance(w, l, 0.5e-3, 0.5e-3)
        .expect("fdm solves");
    assert!(
        eq18 > r_fdm,
        "Eq18 {eq18:.0} must exceed finite-die {r_fdm:.0}"
    );
    assert!(eq18 < 2.5 * r_fdm, "Eq18 {eq18:.0} vs FDM {r_fdm:.0}");
}
