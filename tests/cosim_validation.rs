//! End-to-end validation of the concurrent electro-thermal solver: the
//! closed-form fixed point against a numerical loop (FDM thermal +
//! identical power models), runaway detection, and circuit-backed blocks.

use ptherm::floorplan::{generator, ChipGeometry, Floorplan};
use ptherm::model::cosim::power_model::CircuitBlockPower;
use ptherm::model::cosim::{CosimError, ElectroThermalSolver};
use ptherm::netlist::circuit::Circuit;
use ptherm::tech::Technology;
use ptherm::thermal_num::FdmSolver;

fn feedback(_i: usize, t: f64) -> f64 {
    0.25 + 0.04 * ((t - 300.0) / 25.0).exp2()
}

/// The analytical fixed point lands near the numerical (FDM-in-the-loop)
/// fixed point: block temperature rises within 35%, and identical
/// once both loops use the same thermal operator.
#[test]
fn analytic_and_numeric_fixed_points_agree() {
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let solver = ElectroThermalSolver::new(fp.clone());
    let analytic = solver.solve(feedback).expect("converges");

    // Numerical loop with the same damping and power model.
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: 24,
        ny: 24,
        nz: 12,
    };
    let mut plan = fp.clone();
    let mut temps = vec![g.sink_temperature; plan.blocks().len()];
    for _ in 0..40 {
        for (i, &t) in temps.iter().enumerate() {
            plan.set_power(i, feedback(i, t));
        }
        let sol = fdm.solve(&plan.power_map(24, 24)).expect("fdm solves");
        let fresh: Vec<f64> = plan
            .blocks()
            .iter()
            .map(|b| sol.surface_at(b.cx, b.cy))
            .collect();
        for i in 0..temps.len() {
            temps[i] += 0.7 * (fresh[i] - temps[i]);
        }
    }

    for (i, (a, n)) in analytic.block_temperatures.iter().zip(&temps).enumerate() {
        let rise_a = a - g.sink_temperature;
        let rise_n = n - g.sink_temperature;
        let rel = (rise_a - rise_n).abs() / rise_n;
        assert!(
            rel < 0.35,
            "block {i}: analytic rise {rise_a:.2} vs numeric {rise_n:.2}"
        );
    }
}

/// Fixed-point property: re-evaluating power at the converged
/// temperatures and re-solving the thermal model reproduces the same
/// temperatures (within the solver tolerance).
#[test]
fn converged_point_is_self_consistent() {
    let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    let result = solver.solve(feedback).expect("converges");
    let mut plan = solver.floorplan().clone();
    for (i, &p) in result.block_powers.iter().enumerate() {
        plan.set_power(i, p);
    }
    let model = ptherm::model::thermal::ThermalModel::with_image_orders(&plan, 2, 9);
    for (a, b) in result
        .block_temperatures
        .iter()
        .zip(model.block_center_temperatures())
    {
        assert!((a - b).abs() < 0.02, "{a} vs {b}");
    }
}

/// Runaway boundary: low feedback gain converges, extreme gain is
/// detected as runaway — and the boundary is monotone in between.
#[test]
fn runaway_boundary_is_monotone() {
    let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    let mut last_stable = true;
    for gain in [1.0, 4.0, 16.0, 64.0, 256.0] {
        let result = solver.solve(move |_, t| 0.3 * gain * ((t - 300.0) / 15.0).exp2());
        let stable = result.is_ok();
        assert!(
            last_stable || !stable,
            "stability must not return once lost (gain {gain})"
        );
        last_stable = stable;
    }
    assert!(!last_stable, "the largest gain must run away");
}

#[test]
fn damping_choices_reach_the_same_fixed_point() {
    let base = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    let reference = base.solve(feedback).expect("converges");
    for damping in [0.3, 0.5, 1.0] {
        let mut s = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
        s.damping = damping;
        let r = s.solve(feedback).expect("converges");
        for (a, b) in r
            .block_temperatures
            .iter()
            .zip(&reference.block_temperatures)
        {
            assert!((a - b).abs() < 0.05, "damping {damping}: {a} vs {b}");
        }
    }
}

/// A 16-block chip backed by real gate-level circuits converges and shows
/// the expected structure: hotter blocks leak more.
#[test]
fn circuit_backed_chip_converges_with_consistent_leakage() {
    let tech = Technology::cmos_120nm();
    let plan = generator::tiled(ChipGeometry::paper_1mm(), 4, 4, 0.0, 0.0, 9).expect("tiled");
    let blocks: Vec<CircuitBlockPower> = (0..16)
        .map(|i| CircuitBlockPower {
            circuit: Circuit::random(format!("b{i}"), i as u64, 4_000, 1.5e9, &tech),
            tech: tech.clone(),
        })
        .collect();
    let solver = ElectroThermalSolver::new(plan);
    let result = solver.solve(|i, t| blocks[i].power(t)).expect("converges");
    assert!(result.converged);
    assert!(result.peak_temperature().unwrap() > 300.0);
    // Power at the fixed point must equal the model evaluated there.
    for (i, (&t, &p)) in result
        .block_temperatures
        .iter()
        .zip(&result.block_powers)
        .enumerate()
    {
        let direct = blocks[i].power(t);
        assert!((direct - p).abs() / p < 1e-9, "block {i}");
    }
}

/// Error reporting: non-finite powers are caught with the block index.
#[test]
fn bad_power_model_reports_block() {
    let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    match solver.solve(|i, _| if i == 2 { f64::INFINITY } else { 0.1 }) {
        Err(CosimError::BadPower { block: 2, .. }) => {}
        other => panic!("expected BadPower for block 2, got {other:?}"),
    }
}
