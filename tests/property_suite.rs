//! Property-based tests spanning the workspace: randomized widths,
//! geometries and temperatures against the invariants the models must
//! honour everywhere — not just at the hand-picked test points.

use proptest::prelude::*;
use ptherm::model::cosim::ScenarioGrid;
use ptherm::model::leakage::{CollapseParams, GateLeakageModel};
use ptherm::model::thermal::rect::{center_rise, rect_rise};
use ptherm::spice::stack::Stack;
use ptherm::tech::constants::thermal_voltage;
use ptherm::tech::Technology;
use ptherm::thermal_num::rect_surface_temperature;

fn width() -> impl Strategy<Value = f64> {
    // 0.16 um .. 10 um, log-uniform.
    (0.16f64.ln()..10.0f64.ln()).prop_map(|l| l.exp() * 1e-6)
}

fn temperature() -> impl Strategy<Value = f64> {
    260.0..420.0f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 10 must solve the pair transcendental equation everywhere in
    /// the (width ratio, temperature) plane, not just on the Fig. 3 sweep.
    #[test]
    fn eq10_satisfies_the_pair_equation(w_top in width(), w_bot in width(), t in temperature()) {
        let tech = Technology::cmos_120nm();
        let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
        let vt = thermal_voltage(t);
        let x = params.delta_v(w_top, w_bot, t);
        prop_assert!(x > 0.0);
        let r = (w_top / w_bot) * (params.sigma * params.vdd / (params.n * vt)).exp();
        let lhs = (params.alpha() * x / vt).exp() * (1.0 - (-x / vt).exp());
        let rel = (lhs - r).abs() / r;
        prop_assert!(rel < 0.05, "x {x}, residual {rel}");
    }

    /// The collapsed equivalent width is positive and below the top width
    /// (shielding can only shrink it).
    #[test]
    fn collapse_shrinks_widths(ws in proptest::collection::vec(width(), 1..6), t in temperature()) {
        let tech = Technology::cmos_120nm();
        let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
        let w_eq = params.collapse_chain(&ws, t);
        prop_assert!(w_eq > 0.0);
        prop_assert!(w_eq <= *ws.last().unwrap() * (1.0 + 1e-12));
        // Deeper chain (same widths + one more device below) leaks less.
        let mut deeper = ws.clone();
        deeper.insert(0, 1e-6);
        let w_deeper = params.collapse_chain(&deeper, t);
        prop_assert!(w_deeper < w_eq * (1.0 + 1e-12));
    }

    /// Analytical stack current vs exact solver under random widths,
    /// depths and temperatures: within 15% everywhere.
    #[test]
    fn model_tracks_exact_for_random_stacks(
        ws in proptest::collection::vec(width(), 1..5),
        t in temperature(),
    ) {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let exact = Stack::off_current(&tech, &ws, t).expect("stack solves");
        let analytic = model.stack_off_current(&ws, t);
        let rel = (analytic - exact).abs() / exact;
        prop_assert!(rel < 0.15, "widths {ws:?} T {t}: rel {rel}");
    }

    /// Exact-solver invariants: node voltages increase monotonically and
    /// currents through each device match.
    #[test]
    fn exact_stack_invariants(ws in proptest::collection::vec(width(), 2..6), t in temperature()) {
        let tech = Technology::cmos_120nm();
        let sol = Stack::all_off(&tech, &ws).solve(t).expect("stack solves");
        prop_assert!(sol.current > 0.0);
        let mut last = 0.0;
        for v in &sol.node_voltages {
            prop_assert!(*v >= last - 1e-12, "nodes {:?}", sol.node_voltages);
            prop_assert!(*v <= tech.vdd);
            last = *v;
        }
    }

    /// Thermal closed forms: Eq. 20 never exceeds its Eq. 18 cap, is
    /// non-negative, and decays with distance.
    #[test]
    fn eq20_bounded_and_decaying(
        w in width(), l in width(),
        x in 0.0..30.0f64, p in 1e-4..0.1f64,
    ) {
        let k = 148.0;
        let t0 = center_rise(p, k, w, l);
        let near = rect_rise(p, k, w, l, x * 1e-6, 0.0);
        let far = rect_rise(p, k, w, l, (x + 20.0) * 1e-6, 0.0);
        prop_assert!(near <= t0 * (1.0 + 1e-12));
        prop_assert!(far >= 0.0);
        prop_assert!(far <= near * (1.0 + 1e-12));
    }

    /// Eq. 20 vs the exact Eq. 17 integral at random far-field points:
    /// within 15%.
    #[test]
    fn eq20_tracks_exact_far_field(
        w in width(), l in width(),
        factor in 2.0..12.0f64, angle in 0.0..std::f64::consts::FRAC_PI_2,
    ) {
        let k = 148.0;
        let s = w.max(l);
        let (x, y) = (factor * s * angle.cos(), factor * s * angle.sin());
        let exact = rect_surface_temperature(1e-3, k, w, l, x, y);
        let model = rect_rise(1e-3, k, w, l, x, y);
        let rel = (model - exact).abs() / exact;
        prop_assert!(rel < 0.15, "w {w:.2e} l {l:.2e} at ({x:.2e},{y:.2e}): rel {rel}");
    }

    /// Scale invariance of the thermal kernel: scaling geometry by λ
    /// scales temperatures by 1/λ.
    #[test]
    fn thermal_scale_invariance(w in width(), l in width(), lambda in 1.5..50.0f64) {
        let k = 148.0;
        let t1 = rect_rise(1e-3, k, w, l, 3.0 * w, 2.0 * l);
        let t2 = rect_rise(1e-3, k, lambda * w, lambda * l, lambda * 3.0 * w, lambda * 2.0 * l);
        let rel = (t2 - t1 / lambda).abs() / t2.max(1e-30);
        prop_assert!(rel < 1e-9);
    }
}

// Gate-level property under randomized vectors: the analytical current
// of the blocking network is positive and bounded by the naive no-stack
// estimate.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn gate_current_bounded_by_naive(bits in 0u64..16, cell_idx in 0usize..11, t in temperature()) {
        let tech = Technology::cmos_120nm();
        let model = GateLeakageModel::new(&tech);
        let library = ptherm::netlist::cells::standard_library(&tech);
        let cell = &library[cell_idx % library.len()];
        let n = cell.inputs().len();
        let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let i_gate = model.gate_off_current(cell, &v, t).expect("blocking network");
        prop_assert!(i_gate > 0.0);
        // Upper bound: the widest device in the blocking network leaking
        // across the full rail with no stack shielding at all, plus margin
        // for parallel combinations.
        let blocking = cell.bound_blocking(&v).expect("complementary");
        let w_eff = model.effective_width(&blocking, t).expect("blocking");
        let naive = model.equivalent_off_current(
            10.0 * tech.nmos.w_min * 8.0 * cell.transistor_count() as f64,
            blocking.polarity(),
            t,
        );
        prop_assert!(w_eff > 0.0);
        prop_assert!(i_gate < naive, "gate {i_gate:.3e} vs bound {naive:.3e}");
    }
}

// The GEMM-batched sweep path against the per-scenario oracle under
// randomized floorplans and scenario grids: same outcome kinds and
// iteration counts, temperatures/powers within the documented ULP
// contract of `ptherm::model::cosim::batch`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn batched_sweep_matches_the_per_scenario_oracle(
        rows in 1usize..4,
        cols in 1usize..4,
        seed in 0u64..1000,
        lanes in 1usize..9,
        dyn_w in 0.05f64..1.0,
        leak_w in 0.005f64..0.1,
    ) {
        use ptherm::floorplan::{generator, ChipGeometry};
        use ptherm::model::cosim::sweep::{ScenarioGrid, SweepEngine};
        use ptherm::model::SweepOutcome;
        use ptherm::tech::Technology;

        let plan = generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.0, 0.0, seed)
            .expect("valid tiling");
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm(), Technology::cmos_350nm()])
            .vdd_scales(vec![0.9, 1.1])
            .activities(vec![0.5, 1.5])
            .ambients_k(vec![300.0, 340.0]);
        let engine = SweepEngine::new(plan).threads(2).batch_lanes(lanes);
        let model = engine.uniform_tech_power(dyn_w, leak_w).prepared_for(&grid);
        let batched = engine.run(&grid, &model);
        let oracle = engine.run_per_scenario(&grid, &model);
        prop_assert_eq!(batched.len(), oracle.len());
        for (b, o) in batched.outcomes.iter().zip(&oracle.outcomes) {
            match (b, o) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: bt,
                        block_powers: bp,
                        iterations: bi,
                    },
                    SweepOutcome::Converged {
                        block_temperatures: ot,
                        block_powers: op,
                        iterations: oi,
                    },
                ) => {
                    prop_assert_eq!(bi, oi);
                    for (x, y) in bt.iter().zip(ot) {
                        prop_assert!((x - y).abs() < 1e-9, "temps {} vs {}", x, y);
                    }
                    for (x, y) in bp.iter().zip(op) {
                        prop_assert!((x - y).abs() < 1e-9 * y.abs().max(1.0), "powers {} vs {}", x, y);
                    }
                }
                (
                    SweepOutcome::Runaway {
                        iteration: bi,
                        temperature: btemp,
                    },
                    SweepOutcome::Runaway {
                        iteration: oi,
                        temperature: otemp,
                    },
                ) => {
                    // Divergence amplifies the ULP-level gap in absolute
                    // terms; relative agreement stays at the contract.
                    prop_assert_eq!(bi, oi);
                    prop_assert!((btemp - otemp).abs() < 1e-9 * otemp.abs());
                }
                (b, o) => prop_assert_eq!(b, o),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lazy mixed-radix `ScenarioGrid::scenario(i)` decode must agree
    /// with materialized iteration for every axis-size combination —
    /// including degenerate empty axes, which must yield zero scenarios
    /// rather than a decode panic.
    #[test]
    fn scenario_grid_random_access_matches_iteration_order(
        nv in 0usize..4,
        na in 0usize..3,
        namb in 0usize..3,
        set_ambient in proptest::bool::ANY,
        ntech in 1usize..3,
    ) {
        let techs = vec![ptherm::tech::Technology::cmos_120nm(); ntech];
        let mut grid = ScenarioGrid::new(techs)
            .vdd_scales((0..nv).map(|i| 0.8 + 0.1 * i as f64).collect())
            .activities((0..na).map(|i| 0.5 + 0.25 * i as f64).collect());
        if set_ambient {
            grid = grid.ambients_k((0..namb).map(|i| 290.0 + 10.0 * i as f64).collect());
        }
        let expected = ntech * nv * na * if set_ambient { namb } else { 1 };
        prop_assert_eq!(grid.len(), expected);
        let materialized = grid.scenarios(303.0);
        prop_assert_eq!(materialized.len(), grid.len());
        let lazy: Vec<_> = grid.iter_scenarios(303.0).collect();
        prop_assert_eq!(&lazy, &materialized);
        for (i, s) in materialized.iter().enumerate() {
            let decoded = grid.scenario(i, 303.0);
            prop_assert_eq!(&decoded, s, "index {}", i);
        }
        if !set_ambient {
            // The unset ambient axis resolves to the supplied default.
            prop_assert!(materialized.iter().all(|s| s.ambient_k == 303.0));
        }
    }
}
