//! Miniature versions of every figure experiment, run as tests: if any
//! paper-level claim regresses, `cargo test` fails — the experiment
//! binaries then provide the detailed diagnosis.

use ptherm::floorplan::Floorplan;
use ptherm::model::leakage::baselines::chen98_stack_current;
use ptherm::model::leakage::{CollapseParams, GateLeakageModel};
use ptherm::model::thermal::rect::rect_rise;
use ptherm::model::thermal::ThermalModel;
use ptherm::spice::stack::Stack;
use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::{ScalingTable, Technology};
use ptherm::thermal_num::rect_surface_temperature;

/// Fig. 1: static overtakes dynamic sub-100nm, earlier when hot.
#[test]
fn fig1_crossovers() {
    let table = ScalingTable::itrs_like();
    let cross = |t: f64| {
        table
            .nodes
            .iter()
            .position(|n| n.static_power(t) > n.dynamic_power())
    };
    let c150 = cross(celsius_to_kelvin(150.0)).expect("150C crossover");
    let c100 = cross(celsius_to_kelvin(100.0)).expect("100C crossover");
    assert!(table.nodes[c150].node <= 0.1e-6);
    assert!(c150 <= c100);
}

/// Fig. 3: Eq. 10 within 5% of the exact 2-stack node voltage.
#[test]
fn fig3_eq10_accuracy() {
    let tech = Technology::cmos_120nm();
    let params = CollapseParams::from_mos(&tech.nmos, tech.vdd);
    for k in [-4i32, -1, 0, 1, 4] {
        let w_top = 1e-6 * 2f64.powi(k);
        let exact = Stack::all_off(&tech, &[1e-6, w_top])
            .solve(300.0)
            .expect("solves")
            .node_voltages[0];
        let eq10 = params.delta_v(w_top, 1e-6, 300.0);
        assert!((eq10 - exact).abs() / exact < 0.05, "2^{k}");
    }
}

/// Fig. 5: far-field profile within 5%.
#[test]
fn fig5_profile_accuracy() {
    let (w, l, p, k) = (1e-6, 0.1e-6, 10e-3, 148.0);
    for x in [2e-6, 4e-6, 8e-6] {
        let exact = rect_surface_temperature(p, k, w, l, x, 0.0);
        let model = rect_rise(p, k, w, l, x, 0.0);
        assert!((model - exact).abs() / exact < 0.05, "x = {x}");
    }
}

/// Figs. 6–7: boundary conditions honoured by the image model.
#[test]
fn fig6_7_edge_flux() {
    let fp = Floorplan::paper_three_blocks();
    let model = ThermalModel::with_image_orders(&fp, 3, 9);
    let h = 1e-6;
    for y in [0.25e-3, 0.5e-3, 0.75e-3] {
        let edge = ((model.temperature(h, y) - model.temperature(0.0, y)) / h).abs();
        let interior =
            ((model.temperature(0.6e-3, y) - model.temperature(0.6e-3 - h, y)) / h).abs();
        assert!(edge < 0.10 * interior.max(100.0), "y = {y}: edge {edge}");
    }
}

/// Fig. 8: model within 5% of exact, beating Chen'98, for N = 2..4.
#[test]
fn fig8_model_ordering() {
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);
    for n in 2..=4 {
        let widths = vec![1e-6; n];
        let exact = Stack::off_current(&tech, &widths, 300.0).expect("solves");
        let proposed = model.stack_off_current(&widths, 300.0);
        let chen = chen98_stack_current(&tech, &widths, 300.0);
        let e_p = (proposed - exact).abs() / exact;
        let e_c = (chen - exact).abs() / exact;
        assert!(e_p < 0.05, "N = {n}: proposed {e_p:.3}");
        assert!(e_p < e_c, "N = {n}: ordering");
    }
}

/// Figs. 9–10 pipeline in miniature: rig -> calibration -> extraction
/// recovers the thermal network.
#[test]
fn fig9_10_extraction_pipeline() {
    use ptherm::device::on_current::OnCurrentModel;
    use ptherm::thermal_num::transient::ThermalRc;
    use ptherm::thermal_num::SelfHeatingRig;
    let rig = SelfHeatingRig {
        dut_current: |t| {
            OnCurrentModel::new(&Technology::cmos_350nm().nmos, 300.0).current(10e-6, 3.3, t)
        },
        supply: 3.3,
        sense_resistance: 20.0,
        thermal: ThermalRc {
            rth: 900.0,
            cth: 25e-3 / 900.0,
        },
        gate_frequency: 3.0,
        noise_rms: 0.2e-3,
        seed: 7,
    };
    let ambients = [303.15, 308.15, 313.15];
    let cal = rig.calibrate(&ambients, 512).expect("calibration");
    let m = rig.measure(303.15, cal, 1024).expect("measurement");
    assert!((m.rth - 900.0).abs() / 900.0 < 0.15, "rth {}", m.rth);
    // The Eq. 18 model for the same footprint is the right order of
    // magnitude and sits above the channel-averaged measurement.
    let model = ptherm::model::thermal::resistance::self_heating_resistance(
        148.0,
        10e-6,
        Technology::cmos_350nm().nmos.l,
    );
    assert!(
        model > 0.5 * m.rth && model < 3.0 * m.rth,
        "model {model} vs {}",
        m.rth
    );
}

/// Sweep engine in miniature: a Vdd × activity × ambient × node grid on
/// the paper floorplan — GEMM-batched results match one-shot solves
/// within the documented ULP contract (see `ptherm_core::cosim::batch`),
/// runaway corners reported per scenario.
#[test]
fn sweep_engine_shape() {
    use ptherm::model::cosim::sweep::{ScenarioGrid, ScenarioPowerModel, SweepEngine};
    use ptherm::model::cosim::Workspace;
    use ptherm::model::ElectroThermalSolver;
    use ptherm::tech::ScalingTable;

    let table = ScalingTable::itrs_like();
    let technologies: Vec<_> = table
        .nodes
        .iter()
        .filter(|n| n.node <= 0.18e-6)
        .take(2)
        .map(|n| n.technology())
        .collect();
    let grid = ScenarioGrid::new(technologies)
        .vdd_scales(vec![0.9, 1.1])
        .activities(vec![0.5, 1.0])
        .ambients_k(vec![300.0, 330.0]);
    let engine = SweepEngine::new(Floorplan::paper_three_blocks());
    let model = engine.uniform_tech_power(0.5, 0.05);
    let report = engine.run(&grid, &model);
    assert_eq!(report.len(), 16);
    assert_eq!(report.converged_count(), 16);

    // Spot-check against a one-shot operator solve: the batched path
    // fuses multiply-adds and batches exponentials, so agreement is
    // ~1e-9 K rather than bitwise.
    let scenario = &grid.scenarios(300.0)[5];
    let tech = &grid.technologies()[scenario.tech_index];
    let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
    let op = solver.operator();
    let mut ws = Workspace::new();
    solver
        .solve_with_ambient(&op, scenario.ambient_k, &mut ws, |b, t| {
            model.block_power(scenario, tech, b, t)
        })
        .expect("converges");
    match &report.outcomes[5] {
        ptherm::model::SweepOutcome::Converged {
            block_temperatures, ..
        } => {
            for (a, b) in ws.temperatures().iter().zip(block_temperatures) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
        other => panic!("expected convergence, got {other:?}"),
    }
}

/// Speed shape (debug build, coarse): the analytical gate evaluation beats
/// the exact network solve by a comfortable factor.
#[test]
fn speed_shape_leakage() {
    use ptherm::netlist::cells;
    use ptherm::spice::network::solve_network;
    use std::time::Instant;
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);
    let gate = cells::nand(3, &tech);
    let v = [false, true, false];

    let t0 = Instant::now();
    for _ in 0..200 {
        let _ = model.gate_off_current(&gate, &v, 300.0).expect("blocking");
    }
    let analytic = t0.elapsed();
    let blocking = gate.bound_blocking(&v).expect("complementary");
    let t1 = Instant::now();
    for _ in 0..200 {
        let _ = solve_network(&tech, &blocking, 300.0).expect("solves");
    }
    let exact = t1.elapsed();
    assert!(
        exact > 3 * analytic,
        "exact {exact:?} should dwarf analytic {analytic:?}"
    );
}
