//! Cross-crate validation of the FFT thermal map engine: the map path
//! against the dense influence operator (exact, same truncated image
//! sum), the pointwise Eq. 21 model (close, different source
//! discretization) and the 3-D finite-difference reference (physics).

use ptherm::floorplan::{generator, ChipGeometry, Floorplan};
use ptherm::model::cosim::ThermalOperator;
use ptherm::model::thermal::map::{MapOperator, MapWorkspace};
use ptherm::model::thermal::ThermalModel;
use ptherm::thermal_num::FdmSolver;

/// The coincident-grid configuration: blocks are exactly the tiles of
/// an `n × n` grid (see [`generator::tile_aligned`] for the shared
/// construction), with deterministic non-uniform powers.
fn tile_aligned_floorplan(n: usize) -> Floorplan {
    generator::tile_aligned(ChipGeometry::paper_1mm(), n, n, |i| {
        0.001 + 0.0005 * ((i * 3) % 17) as f64
    })
    .expect("aligned tiling is valid")
}

/// The acceptance-bar configuration at integration scale: a 16×16
/// coincident grid where the map must reproduce the dense operator's
/// block-centre temperatures within 1e-6 K (measured: ~1e-9).
#[test]
fn map_matches_dense_operator_on_a_16x16_coincident_grid() {
    let n = 16;
    let fp = tile_aligned_floorplan(n);
    let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
    let map_op = MapOperator::with_image_orders(&fp, n, n, 2, 9);
    let dense = ThermalOperator::with_image_orders(&fp, 2, 9);
    let mut ws = MapWorkspace::new();
    let mut map = vec![0.0; map_op.tiles()];
    map_op.rise_map_into(&powers, &mut ws, &mut map);
    let mut dense_rises = vec![0.0; powers.len()];
    dense.temperature_rises_into(&powers, &mut dense_rises);
    let mut worst = 0.0f64;
    for (block, &r) in fp.blocks().iter().zip(&dense_rises) {
        let tile = map_op.tile_of(block.cx, block.cy);
        worst = worst.max((map[tile] - r).abs());
    }
    assert!(worst <= 1e-6, "max |dT| vs dense = {worst:e} K");
}

/// Against the pointwise closed-form model on the paper floorplan.
/// The two are different discretizations of the same superposition —
/// Eq. 20's min()-capped rectangle kernel vs a sum of tile kernels —
/// which agree closely in the field but diverge locally right at
/// source edges (where the min() cap saturates). So the contract is an
/// RMS bound over the whole grid plus a looser pointwise one.
#[test]
fn map_tracks_the_pointwise_model_within_a_few_percent() {
    let fp = Floorplan::paper_three_blocks();
    let n = 24;
    let op = MapOperator::new(&fp, n, n);
    let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
    let mut ws = MapWorkspace::new();
    let mut map = vec![0.0; op.tiles()];
    op.rise_map_into(&powers, &mut ws, &mut map);
    let pointwise = ThermalModel::new(&fp).surface_grid(n, n);
    let peak_rise = pointwise.iter().map(|t| t - 300.0).fold(0.0f64, f64::max);
    let mut worst = 0.0f64;
    let mut sq_sum = 0.0f64;
    for (m, p) in map.iter().zip(&pointwise) {
        let gap = (m - (p - 300.0)).abs();
        worst = worst.max(gap);
        sq_sum += gap * gap;
    }
    let rms = (sq_sum / map.len() as f64).sqrt();
    // Measured: rms ≈ 6.5% of the peak rise, dominated by the on-block
    // region where the min() cap saturates (the tile sum integrates the
    // rectangle more finely there — the FDM test below is the arbiter).
    assert!(
        rms < 0.10 * peak_rise,
        "rms gap {rms:.4} K vs peak rise {peak_rise:.4} K"
    );
    assert!(
        worst < 0.30 * peak_rise,
        "worst gap {worst:.4} K vs peak rise {peak_rise:.4} K"
    );
}

/// Against the finite-difference PDE reference: same tolerance family
/// as the pointwise model's own FDM validation (the map inherits the
/// image-series truncation), and the same hottest-region story.
#[test]
fn map_matches_fdm_at_block_centers() {
    let fp = Floorplan::paper_three_blocks();
    let g = *fp.geometry();
    let n = 24;
    let op = MapOperator::with_image_orders(&fp, n, n, 2, 9);
    let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
    let mut ws = MapWorkspace::new();
    let mut map = vec![0.0; op.tiles()];
    op.rise_map_into(&powers, &mut ws, &mut map);
    let fdm = FdmSolver {
        die_w: g.width,
        die_l: g.length,
        thickness: g.thickness,
        k: g.conductivity,
        sink_temperature: g.sink_temperature,
        nx: n,
        ny: n,
        nz: 12,
    };
    let sol = fdm.solve(&fp.power_map(n, n)).expect("fdm solves");
    for b in fp.blocks() {
        let t_map = map[op.tile_of(b.cx, b.cy)];
        let t_fdm = sol.surface_at(b.cx, b.cy) - g.sink_temperature;
        let rel = (t_map - t_fdm).abs() / t_fdm;
        assert!(
            rel < 0.30,
            "{}: map {t_map:.2} vs fdm {t_fdm:.2} ({rel:.3})",
            b.name
        );
    }
}

/// The map at block-model resolution reproduces the dense operator even
/// on grids whose torus needs padding (non-power-of-two dims).
#[test]
fn padded_torus_grids_stay_exact() {
    for n in [5usize, 12, 20] {
        let fp = tile_aligned_floorplan(n);
        let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
        let map_op = MapOperator::with_image_orders(&fp, n, n, 1, 3);
        let dense = ThermalOperator::with_image_orders(&fp, 1, 3);
        let mut ws = MapWorkspace::new();
        let mut map = vec![0.0; map_op.tiles()];
        map_op.rise_map_into(&powers, &mut ws, &mut map);
        let mut dense_rises = vec![0.0; powers.len()];
        dense.temperature_rises_into(&powers, &mut dense_rises);
        for (block, &r) in fp.blocks().iter().zip(&dense_rises) {
            let tile = map_op.tile_of(block.cx, block.cy);
            assert!(
                (map[tile] - r).abs() <= 1e-6,
                "n = {n}: {} vs {r}",
                map[tile]
            );
        }
    }
}
