//! Property validation of warm-started batched Picard
//! ([`SweepEngine::warm_start`]) against the cold oracle: on randomized
//! scenario grids with ascending axes, warm chaining must converge to
//! the **same fixed points** (≤ 1e-9 K), classify every scenario with
//! the **same outcome kind**, and spend **no more Picard iterations**
//! than a cold start on any converged lane — while staying bitwise
//! invariant across thread counts, batch widths and backends, exactly
//! like the cold path.

use proptest::prelude::*;
use ptherm::floorplan::{generator, ChipGeometry, Floorplan};
use ptherm::model::cosim::{RunOptions, ScenarioGrid, SweepBackend, SweepEngine, SweepOutcome};
use ptherm::tech::Technology;

fn plan() -> Floorplan {
    generator::tiled(ChipGeometry::paper_1mm(), 2, 2, 0.01, 0.05, 7).expect("valid tiling")
}

/// An engine with the Picard loop tightened far below the warm/cold
/// agreement tolerance, so 1e-9 K disagreement would be a real bug,
/// not truncation noise.
fn engine(threads: usize, lanes: usize, warm: bool) -> SweepEngine {
    SweepEngine::new(plan())
        .threads(threads)
        .batch_lanes(lanes)
        .warm_start(warm)
        .configure(|s| {
            s.tolerance_k = 1e-10;
            s.max_iterations = 5000;
        })
}

/// A sorted ascending axis: the monotone ordering the chain scheduler
/// exploits (each link seeds from a cooler, already-converged
/// predecessor).
fn axis(range: std::ops::Range<f64>, len: std::ops::Range<usize>) -> BoxedStrategy<Vec<f64>> {
    proptest::collection::vec(range, len)
        .prop_map(|mut v| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup();
            v
        })
        .boxed()
}

fn grid(vdd: Vec<f64>, act: Vec<f64>, amb: Vec<f64>) -> ScenarioGrid {
    ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vdd)
        .activities(act)
        .ambients_k(amb)
}

/// Converged iteration count, or `None` for every other outcome.
fn iterations(outcome: &SweepOutcome) -> Option<usize> {
    match outcome {
        SweepOutcome::Converged { iterations, .. } => Some(*iterations),
        _ => None,
    }
}

fn kind(outcome: &SweepOutcome) -> &'static str {
    match outcome {
        SweepOutcome::Converged { .. } => "converged",
        SweepOutcome::Runaway { .. } => "runaway",
        SweepOutcome::NotConverged { .. } => "not_converged",
        SweepOutcome::BadPower { .. } => "bad_power",
        SweepOutcome::Cancelled { .. } => "cancelled",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: warm chaining is an ordering-plus-seeding
    /// optimization, never a physics change. Same fixed points to
    /// 1e-9 K, same outcome kinds, and on every converged lane the
    /// warm seed (a cooler neighbor's fixed point, clamped at ambient)
    /// can only shorten the monotone Picard climb — never lengthen it.
    #[test]
    fn warm_start_matches_the_cold_oracle_in_fewer_or_equal_iterations(
        vdd in axis(0.7..1.4, 2..5),
        act in axis(0.2..1.0, 1..3),
        amb in axis(290.0..340.0, 1..3),
        dynamic_w in 0.05..0.5f64,
        leakage_w in 0.005..0.05f64,
    ) {
        let grid = grid(vdd, act, amb);
        let cold_engine = engine(2, 4, false);
        let model = cold_engine.uniform_tech_power(dynamic_w, leakage_w);
        let cold = cold_engine.run(&grid, &model);
        let warm = engine(2, 4, true).run(&grid, &model);
        prop_assert_eq!(cold.len(), warm.len());
        for (id, (c, w)) in cold.outcomes.iter().zip(&warm.outcomes).enumerate() {
            prop_assert_eq!(kind(c), kind(w), "scenario {} kind diverged", id);
            if let (
                SweepOutcome::Converged { block_temperatures: ct, iterations: ci, .. },
                SweepOutcome::Converged { block_temperatures: wt, iterations: wi, .. },
            ) = (c, w)
            {
                for (a, b) in ct.iter().zip(wt) {
                    prop_assert!((a - b).abs() <= 1e-9,
                        "scenario {id}: fixed points diverged by {}", (a - b).abs());
                }
                prop_assert!(wi <= ci,
                    "scenario {id}: warm spent {wi} iterations vs cold {ci}");
            }
        }
    }

    /// Warm chaining preserves the scheduler's bitwise-invariance
    /// contract: whole chains are claimed per worker, so thread count
    /// and batch width cannot reorder who seeds whom.
    #[test]
    fn warm_results_are_bitwise_invariant_across_threads_and_batch_lanes(
        vdd in axis(0.8..1.3, 2..5),
        dynamic_w in 0.05..0.4f64,
    ) {
        let grid = grid(vdd, vec![0.5, 1.0], vec![300.0, 320.0]);
        let baseline_engine = engine(1, 1, true);
        let model = baseline_engine.uniform_tech_power(dynamic_w, 0.02);
        let baseline = baseline_engine.run(&grid, &model);
        for (threads, lanes) in [(2, 4), (4, 2), (3, 8)] {
            let other = engine(threads, lanes, true).run(&grid, &model);
            prop_assert_eq!(
                &baseline.outcomes, &other.outcomes,
                "threads {} x lanes {} diverged from serial", threads, lanes
            );
        }
    }

    /// Both backends ride the same chain scheduler: per backend, warm
    /// agrees with that backend's own cold oracle (kinds identical,
    /// fixed points ≤ 1e-9 K, iterations never more on converged
    /// lanes). The tiled floorplan is grid-coincident, so the spectral
    /// backend is exercised for real.
    #[test]
    fn warm_ordering_rides_dense_and_spectral_backends(
        vdd in axis(0.8..1.3, 2..4),
        dynamic_w in 0.05..0.3f64,
    ) {
        let grid = grid(vdd, vec![1.0], vec![300.0, 325.0]);
        for backend in [SweepBackend::Dense, SweepBackend::Spectral] {
            let cold_engine = engine(2, 4, false).backend(backend);
            let model = cold_engine.uniform_tech_power(dynamic_w, 0.02);
            let cold = cold_engine.run(&grid, &model);
            let warm = engine(2, 4, true).backend(backend).run(&grid, &model);
            for (id, (c, w)) in cold.outcomes.iter().zip(&warm.outcomes).enumerate() {
                prop_assert_eq!(kind(c), kind(w), "scenario {} kind diverged", id);
                if let (
                    SweepOutcome::Converged { block_temperatures: ct, iterations: ci, .. },
                    SweepOutcome::Converged { block_temperatures: wt, iterations: wi, .. },
                ) = (c, w)
                {
                    for (a, b) in ct.iter().zip(wt) {
                        prop_assert!((a - b).abs() <= 1e-9, "{backend:?} scenario {id}");
                    }
                    prop_assert!(wi <= ci, "{backend:?} scenario {id}: {wi} vs {ci}");
                }
            }
        }
    }
}

/// A per-call [`RunOptions::warm_start`] override beats the engine
/// default in both directions, and forcing cold on a warm engine is
/// bitwise the historical cold behaviour.
#[test]
fn per_call_override_forces_cold_bitwise() {
    let grid = grid(vec![0.9, 1.0, 1.1, 1.2], vec![0.6, 1.0], vec![300.0]);
    let cold_engine = engine(2, 4, false);
    let model = cold_engine.uniform_tech_power(0.25, 0.02);
    let cold = cold_engine.run(&grid, &model);
    let warm_engine = engine(2, 4, true);
    let forced_cold = warm_engine.sweep(&grid, &model, RunOptions::new().warm_start(false));
    assert_eq!(cold.outcomes, forced_cold.outcomes);
    let forced_warm = cold_engine.sweep(&grid, &model, RunOptions::new().warm_start(true));
    let warm = warm_engine.run(&grid, &model);
    assert_eq!(warm.outcomes, forced_warm.outcomes);
}

/// Warm chaining genuinely pays off on a monotone vdd fiber: strictly
/// fewer total Picard iterations than the cold march, not merely
/// no-worse-per-lane.
#[test]
fn warm_chains_cut_total_iterations_on_a_monotone_fiber() {
    let grid = grid(
        (0..12).map(|i| 0.8 + 0.05 * i as f64).collect(),
        vec![1.0],
        vec![300.0],
    );
    let cold_engine = engine(1, 4, false);
    let model = cold_engine.uniform_tech_power(0.4, 0.04);
    let total = |report: &ptherm::model::cosim::SweepReport| {
        report.outcomes.iter().filter_map(iterations).sum::<usize>()
    };
    let cold = cold_engine.run(&grid, &model);
    let warm = engine(1, 4, true).run(&grid, &model);
    assert_eq!(cold.converged_count(), grid.len(), "fiber fully converges");
    assert_eq!(warm.converged_count(), grid.len());
    assert!(
        total(&warm) < total(&cold),
        "warm {} vs cold {} iterations",
        total(&warm),
        total(&cold)
    );
}
