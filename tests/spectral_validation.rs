//! Spectral-backend validation at the facade level: randomized
//! floorplans against the dense-operator oracle.
//!
//! The spectral backend claims (`docs/EQUATIONS.md`, "Eq. 21 as a
//! convolution"): on a floorplan whose blocks coincide with a uniform
//! tile grid, the FFT parity-kernel products reproduce the dense
//! influence matrix term for term, so batched Picard reaches the same
//! fixed point to rounding (≤ 1e-6 K) with identical outcome kinds.
//! Off-grid blocks go through the CG equivalent-source refinement and
//! carry a documented looser bar: ≤ 8% of the peak temperature rise
//! for the coarse 10%-gutter `generator::tiled` family (observed ≲ 5%
//! at 2×2–5×5, shrinking to ~1% by 8×8 as the inferred torus gains
//! resolution). These suites pin both, plus
//! the exact-linearity structure of the operator and the boundary-clip
//! guarantee of the generators.

use proptest::prelude::*;
use ptherm::floorplan::{generator, Block, ChipGeometry, Floorplan};
use ptherm::model::cosim::{
    ScenarioGrid, SpectralOperator, SpectralScratch, SweepBackend, SweepEngine, SweepOutcome,
    ThermalOperator,
};
use ptherm::tech::Technology;

fn small_grid() -> ScenarioGrid {
    ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vec![0.95, 1.05])
        .activities(vec![1.0])
}

/// Fixed points of the given backend on `plan` under a 0.3 W / 0.03 W
/// area-weighted budget over [`small_grid`].
fn fixed_points(plan: &Floorplan, backend: SweepBackend) -> Vec<SweepOutcome> {
    let engine = SweepEngine::new(plan.clone()).backend(backend);
    let grid = small_grid();
    let model = engine.uniform_tech_power(0.3, 0.03).prepared_for(&grid);
    engine.run(&grid, &model).outcomes
}

/// Spectral and dense must agree: same outcome kind per scenario, and
/// for converged scenarios the temperatures within `tol_k(peak rise)`
/// — a closure so exact geometries can demand an absolute microkelvin
/// bar while refined ones scale with the solution. `exact` additionally
/// requires identical Picard iteration counts (coincident geometry runs
/// the same numbers through the same loop).
fn assert_backends_agree(plan: &Floorplan, exact: bool, tol_k: impl Fn(f64) -> f64) {
    let spectral = fixed_points(plan, SweepBackend::Spectral);
    let dense = fixed_points(plan, SweepBackend::Dense);
    prop_assert_eq!(spectral.len(), dense.len());
    for (i, (s, d)) in spectral.iter().zip(&dense).enumerate() {
        prop_assert_eq!(
            std::mem::discriminant(s),
            std::mem::discriminant(d),
            "scenario {} outcome kind",
            i
        );
        if let (
            SweepOutcome::Converged {
                block_temperatures: ts,
                iterations: is,
                ..
            },
            SweepOutcome::Converged {
                block_temperatures: td,
                iterations: id,
                ..
            },
        ) = (s, d)
        {
            if exact {
                prop_assert_eq!(is, id, "scenario {} iterations", i);
            }
            let rise = td.iter().fold(0.0f64, |m, &t| m.max(t - 300.0));
            let bar = tol_k(rise);
            for (a, b) in ts.iter().zip(td) {
                prop_assert!(
                    (a - b).abs() <= bar,
                    "scenario {i}: spectral {a} K vs dense {b} K (bar {bar:e} K)"
                );
            }
        }
    }
}

/// Deterministic per-tile powers from a proptest seed.
fn seeded_power(seed: u64) -> impl Fn(usize) -> f64 {
    move |i| {
        let h = (i as u64 + 1)
            .wrapping_mul(seed.wrapping_add(1))
            .wrapping_mul(0x9E37_79B9);
        0.001 + 0.004 * (h % 97) as f64 / 96.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Grid-aligned floorplans: blocks ARE the tiles, rasterization is
    /// exact (single-cell stencils, no refinement), so the fixed points
    /// match the dense oracle to transform rounding — ≤ 1e-6 K.
    #[test]
    fn aligned_fixed_points_match_dense_to_a_microkelvin(
        nx in 2usize..7,
        ny in 2usize..7,
        seed in 0u64..1000,
    ) {
        let plan = generator::tile_aligned(ChipGeometry::paper_1mm(), nx, ny, seeded_power(seed))
            .expect("aligned tiling is valid");
        assert_backends_agree(&plan, true, |_| 1e-6);
    }

    /// Off-grid (10%-gutter) floorplans: every block straddles tile
    /// boundaries in size, so the CG equivalent-source refinement
    /// carries the scatter on the coarse inferred torus. The documented
    /// fixed-point bar for this family is ≤ 8% of the peak temperature
    /// rise against the dense oracle (`docs/PERFORMANCE.md`; observed
    /// ≲ 5% on 2×2–5×5 tori, ~1% by 8×8), with the outcome kinds still
    /// identical.
    #[test]
    fn gutter_fixed_points_match_dense_within_the_refinement_bar(
        rows in 2usize..6,
        cols in 2usize..6,
        seed in 0u64..1000,
    ) {
        let plan = generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.004, 0.02, seed)
            .expect("tiled plan is valid");
        assert_backends_agree(&plan, false, |rise| 0.08 * rise.max(0.05));
    }
}

/// The spectral image sum is linear in the power vector, and scaling by
/// a power of two commutes with every floating-point operation in the
/// scatter → FFT → sample chain: doubling the powers doubles the rises
/// **bitwise**. General superposition holds to rounding.
#[test]
fn rises_are_linear_and_scale_exactly_by_powers_of_two() {
    let plan = generator::tile_aligned(ChipGeometry::paper_1mm(), 6, 6, seeded_power(7))
        .expect("aligned tiling is valid");
    let op = SpectralOperator::build(&plan).expect("aligned plans are grid-coincident");
    let mut scratch = SpectralScratch::new();
    let p: Vec<f64> = plan.blocks().iter().map(|b| b.power).collect();
    let q: Vec<f64> = p.iter().rev().cloned().collect();
    let n = p.len();
    let rises = |powers: &[f64], scratch: &mut SpectralScratch| {
        let mut out = vec![0.0; n];
        op.rises_into(powers, scratch, &mut out);
        out
    };
    let rp = rises(&p, &mut scratch);
    // Exact power-of-two homogeneity.
    let doubled: Vec<f64> = p.iter().map(|x| 2.0 * x).collect();
    let r2p = rises(&doubled, &mut scratch);
    for (a, b) in r2p.iter().zip(&rp) {
        assert_eq!(*a, 2.0 * b, "power-of-two scaling must be bitwise exact");
    }
    // Superposition to rounding.
    let rq = rises(&q, &mut scratch);
    let sum: Vec<f64> = p.iter().zip(&q).map(|(a, b)| a + b).collect();
    let rsum = rises(&sum, &mut scratch);
    let peak = rsum.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1e-30);
    for ((s, a), b) in rsum.iter().zip(&rp).zip(&rq) {
        assert!(
            (s - (a + b)).abs() <= 1e-10 * peak,
            "superposition drift: {s} vs {}",
            a + b
        );
    }
}

/// Zero power in, exactly ambient out: every FFT tier multiplies exact
/// zeros, so a zero-budget sweep through the spectral backend lands
/// bitwise on the 300 K sink on any ISA — the same contract the golden
/// fleet fixtures rely on.
#[test]
fn zero_power_sweeps_are_bitwise_ambient() {
    let plan = generator::tile_aligned(ChipGeometry::paper_1mm(), 4, 4, |_| 0.0)
        .expect("aligned tiling is valid");
    let engine = SweepEngine::new(plan).backend(SweepBackend::Spectral);
    let grid = small_grid();
    let model = engine.uniform_tech_power(0.0, 0.0).prepared_for(&grid);
    let report = engine.run(&grid, &model);
    assert_eq!(report.converged_count(), report.len());
    for outcome in &report.outcomes {
        let SweepOutcome::Converged {
            block_temperatures, ..
        } = outcome
        else {
            panic!("zero-power scenario must converge")
        };
        assert!(block_temperatures.iter().all(|&t| t == 300.0));
    }
}

/// Boundary-clip regression pin, generator side: for in-die blocks the
/// clip guard is bitwise identity, so generator output is
/// **bit-identical** to direct construction — and therefore so is every
/// operator row built from it (fingerprints included). A change that
/// made clipping perturb valid layouts would silently re-key every
/// fleet cache and golden fixture; this test makes it loud.
#[test]
fn generator_plans_share_operator_rows_with_direct_construction() {
    let geometry = ChipGeometry::paper_1mm();
    let power = seeded_power(3);
    let plan = generator::tile_aligned(geometry, 4, 4, &power).expect("valid tiling");
    // Replicate tile_aligned's arithmetic directly, bypassing the
    // generator (and its clip guard) entirely.
    let (nx, ny) = (4usize, 4usize);
    let pitch_x = geometry.width / nx as f64;
    let pitch_y = geometry.length / ny as f64;
    let shrink = 1.0 - 1e-9;
    let blocks: Vec<Block> = (0..nx * ny)
        .map(|i| {
            let (ix, iy) = (i % nx, i / nx);
            Block::new(
                format!("t{ix}-{iy}"),
                (ix as f64 + 0.5) * pitch_x,
                (iy as f64 + 0.5) * pitch_y,
                pitch_x * shrink,
                pitch_y * shrink,
                power(i),
            )
        })
        .collect();
    let direct = Floorplan::new(geometry, blocks).expect("direct construction is valid");
    for (g, d) in plan.blocks().iter().zip(direct.blocks()) {
        assert_eq!(
            (g.cx, g.cy, g.w, g.l, g.power),
            (d.cx, d.cy, d.w, d.l, d.power),
            "clip guard perturbed an in-die block"
        );
    }
    // Same blocks ⇒ same dense operator rows, bitwise.
    let probe: Vec<f64> = plan.blocks().iter().map(|b| b.power).collect();
    let mut via_generator = vec![0.0; probe.len()];
    let mut via_direct = vec![0.0; probe.len()];
    ThermalOperator::with_image_orders(&plan, 2, 9)
        .temperature_rises_into(&probe, &mut via_generator);
    ThermalOperator::with_image_orders(&direct, 2, 9)
        .temperature_rises_into(&probe, &mut via_direct);
    assert_eq!(via_generator, via_direct, "operator rows diverged");
}

/// Boundary-clip regression pin, protruding side: a block that sticks
/// out past the die edge is clamped (not rejected, not passed through
/// to the image sum with an out-of-range source) and the resulting
/// floorplan feeds the operator finite, physical rows.
#[test]
fn clipped_protruding_blocks_yield_finite_operator_rows() {
    let geometry = ChipGeometry::paper_1mm();
    // Centred on the left edge: half its width lies off-die.
    let wild = Block::new("edge", 0.0, 0.5e-3, 0.4e-3, 0.3e-3, 0.05);
    let clipped = generator::clip_to_die(&geometry, wild).expect("still intersects the die");
    assert_eq!(clipped.bounds().0, 0.0, "left bound clamps to the die edge");
    assert!((clipped.cx - 0.1e-3).abs() < 1e-18 && (clipped.w - 0.2e-3).abs() < 1e-18);
    assert_eq!(clipped.power, 0.05, "clipping preserves power");
    let plan = Floorplan::new(geometry, vec![clipped]).expect("clipped block is in-die");
    let mut rise = vec![0.0; 1];
    ThermalOperator::with_image_orders(&plan, 2, 9).temperature_rises_into(&[0.05], &mut rise);
    assert!(rise[0].is_finite() && rise[0] > 0.0, "rise {}", rise[0]);
}
