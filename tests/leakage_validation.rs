//! Cross-crate validation of the leakage path: the paper's analytical
//! model (`ptherm-core`) against the exact solvers (`ptherm-spice`) over
//! the standard-cell library, input vectors, widths and temperatures.

use ptherm::model::leakage::baselines::{chen98_stack_current, naive_stack_current};
use ptherm::model::leakage::GateLeakageModel;
use ptherm::netlist::cells;
use ptherm::netlist::vectors::all_vectors;
use ptherm::spice::network::solve_network;
use ptherm::spice::stack::Stack;
use ptherm::tech::Technology;

fn tech() -> Technology {
    Technology::cmos_120nm()
}

/// The headline accuracy claim (Fig. 8): the proposed model tracks the
/// exact stack current within a few percent for all depths.
#[test]
fn stack_model_tracks_exact_solver_within_5_percent() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    for n in 1..=6 {
        for t in [273.15, 300.0, 358.15, 398.15] {
            let widths = vec![1e-6; n];
            let exact = Stack::off_current(&tech, &widths, t).expect("stack solves");
            let analytic = model.stack_off_current(&widths, t);
            let rel = (analytic - exact).abs() / exact;
            assert!(rel < 0.05, "N = {n}, T = {t}: rel error {rel:.4}");
        }
    }
}

#[test]
fn stack_model_handles_width_skew() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    for widths in [
        vec![0.16e-6, 4e-6],
        vec![4e-6, 0.16e-6],
        vec![1e-6, 8e-6, 0.3e-6],
        vec![0.3e-6, 0.3e-6, 8e-6, 8e-6],
    ] {
        let exact = Stack::off_current(&tech, &widths, 300.0).expect("stack solves");
        let analytic = model.stack_off_current(&widths, 300.0);
        let rel = (analytic - exact).abs() / exact;
        assert!(rel < 0.10, "widths {widths:?}: rel error {rel:.4}");
    }
}

/// Every cell in the library, every input vector, against the exact
/// network solve. Two regimes:
///
/// * **all-OFF blocking networks** — the collapsing approximation alone:
///   must be tight (< 15%),
/// * **mixed vectors** (ON devices inside the blocking network) — the
///   paper's "ON devices are transparent" rule ignores the pass-transistor
///   threshold drop the exact solver reproduces, so the model
///   *overestimates*; it must stay a bounded, conservative overestimate
///   (0.9x .. 2.5x of exact). This asymmetry is documented in
///   EXPERIMENTS.md as a known limitation of the paper's model.
#[test]
fn gate_model_tracks_exact_network_across_the_library() {
    fn has_on_device(node: &ptherm::netlist::BoundNode) -> bool {
        match node {
            ptherm::netlist::BoundNode::Device { gate_on, .. } => *gate_on,
            ptherm::netlist::BoundNode::Series(v) | ptherm::netlist::BoundNode::Parallel(v) => {
                v.iter().any(has_on_device)
            }
        }
    }

    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    let mut checked = 0;
    for cell in cells::standard_library(&tech) {
        for v in all_vectors(cell.inputs().len()) {
            let blocking = cell.bound_blocking(&v).expect("complementary cell");
            let exact = solve_network(&tech, &blocking, 300.0)
                .unwrap_or_else(|e| panic!("{} {v:?}: {e}", cell.name()))
                .current;
            let analytic = model
                .gate_off_current(&cell, &v, 300.0)
                .expect("blocking network exists");
            let ratio = analytic / exact;
            if has_on_device(blocking.root()) {
                assert!(
                    (0.9..2.5).contains(&ratio),
                    "{} {v:?} (mixed): ratio {ratio:.3}",
                    cell.name()
                );
            } else {
                assert!(
                    (ratio - 1.0).abs() < 0.15,
                    "{} {v:?} (all-OFF): ratio {ratio:.3}",
                    cell.name()
                );
            }
            checked += 1;
        }
    }
    assert!(
        checked > 80,
        "sweep should cover the whole library ({checked})"
    );
}

/// The error ordering of Fig. 8: proposed < Chen'98 << naive.
#[test]
fn error_ordering_matches_the_paper() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    for n in 2..=5 {
        let widths = vec![1e-6; n];
        let exact = Stack::off_current(&tech, &widths, 300.0).expect("stack solves");
        let e_model = (model.stack_off_current(&widths, 300.0) - exact).abs() / exact;
        let e_chen = (chen98_stack_current(&tech, &widths, 300.0) - exact).abs() / exact;
        let e_naive = (naive_stack_current(&tech, &widths, 300.0) - exact).abs() / exact;
        assert!(e_model < e_chen, "N = {n}: {e_model:.3} !< {e_chen:.3}");
        assert!(e_chen < e_naive, "N = {n}: {e_chen:.3} !< {e_naive:.3}");
    }
}

/// Leakage ordering across vectors must agree between model and exact
/// solver (the model is used to pick low-leakage standby vectors).
#[test]
fn vector_ranking_is_preserved() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    let nand4 = cells::nand(4, &tech);
    let mut exact_ranked: Vec<(Vec<bool>, f64)> = all_vectors(4)
        .map(|v| {
            let blocking = nand4.bound_blocking(&v).expect("complementary");
            let i = solve_network(&tech, &blocking, 300.0)
                .expect("solves")
                .current;
            (v, i)
        })
        .collect();
    exact_ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    // The model must agree on the minimum-leakage vector and keep the
    // all-OFF vector in the bottom two.
    let model_of = |v: &[bool]| model.gate_off_current(&nand4, v, 300.0).expect("blocking");
    let exact_min = &exact_ranked[0].0;
    let model_min = all_vectors(4)
        .min_by(|a, b| model_of(a).partial_cmp(&model_of(b)).expect("finite"))
        .expect("nonempty");
    assert_eq!(exact_min, &model_min);
    assert!(exact_ranked[..2].iter().any(|(v, _)| v == &vec![false; 4]));
}

/// Temperature scaling agreement: the exact and analytical currents grow
/// by the same large factor from 25 C to 125 C.
#[test]
fn temperature_scaling_agrees_with_exact() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    let widths = vec![1e-6; 3];
    let ratio_exact = Stack::off_current(&tech, &widths, 398.15).expect("solves")
        / Stack::off_current(&tech, &widths, 298.15).expect("solves");
    let ratio_model =
        model.stack_off_current(&widths, 398.15) / model.stack_off_current(&widths, 298.15);
    assert!(ratio_exact > 20.0, "leakage must explode with temperature");
    assert!(
        (ratio_model - ratio_exact).abs() / ratio_exact < 0.10,
        "model {ratio_model:.1} vs exact {ratio_exact:.1}"
    );
}

/// pMOS pull-up networks go through the same machinery mirrored; validate
/// against the exact solver on NOR stacks.
#[test]
fn pmos_pullup_stacks_validate() {
    let tech = tech();
    let model = GateLeakageModel::new(&tech);
    for n in 2..=4 {
        let nor = cells::nor(n, &tech);
        let v = vec![true; n]; // output low, pull-up blocks with an n-stack
        let blocking = nor.bound_blocking(&v).expect("complementary");
        let exact = solve_network(&tech, &blocking, 300.0)
            .expect("solves")
            .current;
        let analytic = model.gate_off_current(&nor, &v, 300.0).expect("blocking");
        let rel = (analytic - exact).abs() / exact;
        assert!(rel < 0.10, "nor{n}: rel {rel:.4}");
    }
}
