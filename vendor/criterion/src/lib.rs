//! Wall-clock stand-in for `criterion` in offline builds.
//!
//! Provides the macro and builder surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` and `bench_with_input` — timed
//! with `std::time::Instant`. Reporting is a single mean-ns/iter line per
//! benchmark; there is no statistics engine, HTML report or comparison
//! baseline.

use std::fmt::Display;
use std::time::Instant;

/// Opaque benchmark identifier, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `f`, running enough iterations for a stable mean.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        // Aim for ~100 ms of measurement, capped to keep suites quick.
        let iters = ((0.1 / once) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
        self.iters = iters;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed_ns: 0.0,
    };
    f(&mut b);
    if b.iters > 0 {
        println!(
            "{label:<40} {:>14.1} ns/iter ({} iters)",
            b.elapsed_ns / b.iters as f64,
            b.iters
        );
    } else {
        println!("{label:<40} (no measurement)");
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its own loops.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the stand-in).
    pub fn finish(self) {}
}

/// Re-export of the standard hint, mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group function running each listed bench in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
