//! Deterministic stand-in for the `rand` crate in offline builds.
//!
//! Provides the slice of the `rand` 0.8 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open numeric ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — high quality and fully
//! deterministic, but **not** bit-compatible with the real `StdRng`
//! stream (no test in this workspace asserts exact drawn values).

use std::ops::Range;

/// Seeding entry point, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by the workspace, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(self, range.start, range.end)
    }

    /// Uniform draw of a full-width value (`bool` and `f64` in `[0, 1)`
    /// are the variants the workspace needs).
    fn gen<T: SampleUniform>(&mut self) -> T {
        T::sample_any(self)
    }
}

/// Types [`Rng::gen_range`] can produce.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Full-range sample (unit interval for floats).
    fn sample_any<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u = Self::sample_any(rng);
        // `u < 1`, so the result stays strictly below `hi` for finite spans.
        lo + u * (hi - lo)
    }

    fn sample_any<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }

            fn sample_any<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend, so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10_000 {
                let x = rng.gen_range(0.25..0.75);
                assert!((0.25..0.75).contains(&x));
                let n = rng.gen_range(3usize..9);
                assert!((3..9).contains(&n));
            }
        }
    }
}
