//! Deterministic stand-in for `proptest` in offline builds.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: range and tuple strategies, `collection::vec`, `bool::ANY`,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` macros. Cases are drawn from a seeded generator — the
//! seed is derived from the test name, so runs are reproducible — and
//! assertion failures panic like ordinary `assert!`s (no shrinking).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;
use std::sync::Arc;

pub use rand::Rng as _;

/// The RNG handed to strategies while sampling a case.
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the RNG for one case of one property.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(
        seed_for(test_name) ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
    )
}

/// A source of random values of one type.
pub trait Strategy: Clone {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: `self` is the leaf; `branch` builds a compound
    /// level from the strategy for the level below. `depth` bounds the
    /// nesting; the size-control parameters of real proptest are accepted
    /// and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _max_size: u32,
        _items: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.clone().boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased arms (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy producing a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `proptest::bool`.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Mirrors `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a property-case condition (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-case equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts property-case inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines `#[test]` functions that run a body over sampled inputs.
///
/// Supports the subset of real-proptest syntax used in this workspace:
/// an optional `#![proptest_config(..)]` header and `name in strategy`
/// parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}
