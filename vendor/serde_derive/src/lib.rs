//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types so
//! downstream users can serialize floorplans and technology kits, but
//! nothing inside the workspace calls a serializer — so the offline
//! stand-in can expand to nothing and still compile every use site.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde::Serialize` marker trait has a blanket
/// implementation instead.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde::Deserialize` marker trait has a blanket
/// implementation instead.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
