//! Marker-trait stand-in for `serde` in offline builds.
//!
//! See `vendor/README.md`. The derive macros expand to nothing, so the
//! traits are blanket-implemented markers: `#[derive(Serialize)]` use
//! sites compile, and `T: Serialize` bounds are satisfied by every type.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
