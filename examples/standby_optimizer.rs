//! Standby-vector optimization: the "optimization" half of the paper's
//! "estimation and optimization" promise.
//!
//! For each cell of a logic block, find the input vector that leaves the
//! deepest OFF stacks, and report the block-level leakage savings of
//! parking idle logic there — at typical and fast process corners, cold
//! and hot.
//!
//! Run with `cargo run --release --example standby_optimizer`.

use ptherm::model::leakage::standby::{best_standby_vector, standby_report};
use ptherm::model::leakage::GateLeakageModel;
use ptherm::netlist::cells;
use ptherm::netlist::circuit::Circuit;
use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::{Corner, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);

    println!("== per-cell standby vectors (25 C, typical corner) ==");
    println!(
        "{:>7}  {:>10}  {:>12}  {:>12}  {:>10}",
        "cell", "vector", "best (W)", "worst (W)", "worst/best"
    );
    for cell in cells::standard_library(&tech) {
        let sv = best_standby_vector(&model, &cell, celsius_to_kelvin(25.0))?;
        let bits: String = sv
            .vector
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!(
            "{:>7}  {bits:>10}  {:>12.3e}  {:>12.3e}  {:>10.1}",
            cell.name(),
            sv.best_power,
            sv.worst_power,
            sv.worst_to_best_ratio()
        );
    }

    // Block-level audit across corners and temperatures.
    let circuit = Circuit::random("block", 17, 25_000, 1.5e9, &tech);
    println!("\n== block audit: 25k gates ==");
    println!(
        "{:>9}  {:>6}  {:>12}  {:>12}  {:>9}",
        "corner", "T (C)", "average (W)", "parked (W)", "saved (%)"
    );
    for corner in [Corner::Typical, Corner::Fast] {
        let kit = tech.at_corner(corner);
        let corner_model = GateLeakageModel::new(&kit);
        for t_c in [25.0, 110.0] {
            let report = standby_report(&corner_model, &circuit, celsius_to_kelvin(t_c))?;
            println!(
                "{:>9}  {t_c:>6.0}  {:>12.4e}  {:>12.4e}  {:>9.1}",
                corner.to_string(),
                report.average_power,
                report.parked_power,
                100.0 * report.savings()
            );
        }
    }

    println!(
        "\nthe fast corner is where vector control pays: leakage is decades higher\n\
         while the savings fraction stays in the same range."
    );
    Ok(())
}
