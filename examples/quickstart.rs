//! Quickstart: the paper's two models in twenty lines.
//!
//! Builds a NAND3 in the 0.12 µm kit, walks its leakage across input
//! vectors and temperatures, then closes the loop: a one-block chip whose
//! leakage heats the die which raises the leakage, solved to the
//! self-consistent operating point.
//!
//! Run with `cargo run --example quickstart`.

use ptherm::floorplan::{Block, ChipGeometry, Floorplan};
use ptherm::model::cosim::ElectroThermalSolver;
use ptherm::model::leakage::GateLeakageModel;
use ptherm::netlist::cells;
use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);
    let nand3 = cells::nand(3, &tech);

    println!("== NAND3 leakage by input vector ({}) ==", tech);
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}",
        "vector", "25C (A)", "85C (A)", "125C (A)"
    );
    for bits in 0..8u32 {
        let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let label: String = v.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let at = |c: f64| model.gate_off_current(&nand3, &v, celsius_to_kelvin(c));
        println!(
            "{label:>8}  {:>12.3e}  {:>12.3e}  {:>12.3e}",
            at(25.0)?,
            at(85.0)?,
            at(125.0)?
        );
    }

    // The stack effect in one line: vector 000 leaves a 3-deep OFF stack,
    // vector 110 a single OFF device.
    let i_stacked = model.gate_off_current(&nand3, &[false, false, false], 298.15)?;
    let i_single = model.gate_off_current(&nand3, &[true, true, false], 298.15)?;
    println!(
        "\nstack-effect suppression at 25C: {:.1}x",
        i_single / i_stacked
    );

    // Electro-thermal closure on a one-block chip: two million
    // NAND3-equivalents plus 0.3 W of dynamic power, in an 85 C environment
    // (where sub-100nm leakage starts to matter, per the paper's Fig. 1).
    let mut geometry = ChipGeometry::paper_1mm();
    geometry.sink_temperature = celsius_to_kelvin(85.0);
    let plan = Floorplan::new(
        geometry,
        vec![Block::new("core", 0.5e-3, 0.5e-3, 0.6e-3, 0.6e-3, 0.0)],
    )?;
    let solver = ElectroThermalSolver::new(plan);
    let gates = 2_000_000.0;
    let result = solver.solve(|_, t| {
        let leak = model
            .gate_average_static_power(&nand3, t)
            .expect("library cells are complementary");
        0.3 + gates * leak
    })?;
    println!(
        "\ncoupled operating point: T = {:.2} C, P = {:.3} W ({} iterations)",
        result.block_temperatures[0] - 273.15,
        result.total_power(),
        result.iterations
    );
    let static_w = result.total_power() - 0.3;
    println!(
        "static share at the operating point: {:.1}%",
        100.0 * static_w / result.total_power()
    );
    Ok(())
}
