//! Full-chip electro-thermal co-simulation: a 16-block die with real
//! gate-level circuits behind each block, solved to its coupled operating
//! point — plus a thermal-runaway corner.
//!
//! This is the workflow the paper positions its models for: closed-form
//! leakage (temperature-dependent) feeding a closed-form thermal solve,
//! iterated to a fixed point in milliseconds.
//!
//! Run with `cargo run --release --example chip_cosim`.

use ptherm::floorplan::{generator, ChipGeometry};
use ptherm::model::cosim::power_model::CircuitBlockPower;
use ptherm::model::cosim::{ElectroThermalSolver, SweepEngine, SweepOutcome};
use ptherm::netlist::circuit::Circuit;
use ptherm::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_120nm();

    // 16 tiles, each backed by a seeded random logic block of 20k gates.
    let plan = generator::tiled(ChipGeometry::paper_1mm(), 4, 4, 0.0, 0.0, 42)?;
    let blocks: Vec<CircuitBlockPower> = (0..plan.blocks().len())
        .map(|i| CircuitBlockPower {
            circuit: Circuit::random(format!("tile-{i}"), i as u64, 20_000, 1.5e9, &tech),
            tech: tech.clone(),
        })
        .collect();

    let solver = ElectroThermalSolver::new(plan);
    let result = solver.solve(|i, t| blocks[i].power(t))?;

    println!(
        "== coupled operating point ({} iterations) ==",
        result.iterations
    );
    println!(
        "{:>6}  {:>9}  {:>9}  {:>10}",
        "tile", "T (C)", "P (mW)", "static (%)"
    );
    for (i, (t, p)) in result
        .block_temperatures
        .iter()
        .zip(&result.block_powers)
        .enumerate()
    {
        println!(
            "{i:>6}  {:>9.3}  {:>9.2}  {:>10.1}",
            t - 273.15,
            p * 1e3,
            100.0 * blocks[i].static_fraction(*t)
        );
    }
    println!(
        "\ntotal {:.3} W, peak {:.2} C",
        result.total_power(),
        result.peak_temperature().expect("non-empty floorplan") - 273.15
    );

    // Convergence trace: the damped Picard iteration is geometric.
    println!("\nconvergence (max block dT per iteration, K):");
    for (k, d) in result.history.iter().enumerate() {
        println!("  iter {k:>2}: {d:.2e}");
    }

    // Runaway corner, swept through the batched engine: one shared
    // thermal operator, all gain scenarios fanned out together. The
    // engine must report runaway corners rather than oscillate or abort
    // the rest of the sweep.
    println!("\n== thermal-runaway corner (sweep engine) ==");
    let mut hot = ElectroThermalSolver::new(solver.floorplan().clone());
    hot.ceiling_k = 450.0;
    let engine = SweepEngine::with_solver(hot);
    let gains = [50.0, 200.0, 1000.0];
    let sweep = engine.run_scenarios(
        &gains,
        |_| 300.0,
        |&gain, _, t| 0.02 + 0.002 * gain * ((t - 300.0) / 12.0).exp2(),
    );
    for (gain, outcome) in gains.iter().zip(&sweep.outcomes) {
        match outcome {
            SweepOutcome::Converged { .. } => println!(
                "  gain {gain:>5}: stable at {:.2} C",
                outcome.peak_temperature().expect("converged") - 273.15
            ),
            SweepOutcome::Runaway {
                iteration,
                temperature,
            } => println!(
                "  gain {gain:>5}: RUNAWAY detected at iteration {iteration} ({temperature:.0} K)"
            ),
            other => println!("  gain {gain:>5}: {other}"),
        }
    }
    Ok(())
}
