//! The virtual self-heating laboratory (Figs. 9–10): pulse a device,
//! watch its drain current sag on the synthetic oscilloscope, calibrate
//! against ambient sweeps and extract the thermal resistance — then
//! compare with the paper's Eq. 18 prediction.
//!
//! Run with `cargo run --release --example selfheating_lab`.

use ptherm::device::on_current::OnCurrentModel;
use ptherm::model::thermal::resistance::self_heating_resistance;
use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::Technology;
use ptherm::thermal_num::rect_integral::rect_unit_integral;
use ptherm::thermal_num::transient::ThermalRc;
use ptherm::thermal_num::SelfHeatingRig;

/// Source-averaged exact thermal resistance (the rig's ground truth).
fn physical_rth(k: f64, w: f64, l: f64) -> f64 {
    let n = 15;
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            let x = w * ((i as f64 + 0.5) / n as f64 - 0.5);
            let y = l * ((j as f64 + 0.5) / n as f64 - 0.5);
            acc += rect_unit_integral(w, l, x, y, 0.0);
        }
    }
    acc / (n * n) as f64 / (2.0 * std::f64::consts::PI * k * w * l)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_350nm();
    let w = 12e-6;
    let l = tech.nmos.l;
    let k_si = 148.0;

    let rth_true = physical_rth(k_si, w, l);
    let rig = SelfHeatingRig {
        dut_current: move |t| {
            OnCurrentModel::new(&Technology::cmos_350nm().nmos, 300.0).current(w, 3.3, t)
        },
        supply: 3.3,
        sense_resistance: 15.0,
        thermal: ThermalRc {
            rth: rth_true,
            cth: 25e-3 / rth_true,
        },
        gate_frequency: 3.0,
        noise_rms: 0.4e-3,
        seed: 0xBEEF,
    };

    // Step 1: capture traces at three chuck temperatures.
    let ambients = [30.0, 35.0, 40.0].map(celsius_to_kelvin);
    println!("== scope traces (sense voltage, mV) ==");
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}",
        "t (ms)", "30 C", "35 C", "40 C"
    );
    let traces: Vec<_> = ambients
        .iter()
        .map(|&a| rig.capture(a, 512).expect("rig is configured"))
        .collect();
    for i in (0..512).step_by(64) {
        println!(
            "{:>8.1}  {:>9.3}  {:>9.3}  {:>9.3}",
            traces[0].time[i] * 1e3,
            traces[0].voltage[i] * 1e3,
            traces[1].voltage[i] * 1e3,
            traces[2].voltage[i] * 1e3
        );
    }

    // Step 2: calibrate dV/dT from the trace heads.
    let cal = rig.calibrate(&ambients, 1024)?;
    println!(
        "\ncalibration: dV/dT = {:.3} mV/K at {:.1} C",
        cal.dv_dt * 1e3,
        cal.t_ref - 273.15
    );

    // Step 3: extract the thermal quantities.
    let m = rig.measure(ambients[0], cal, 2048)?;
    println!("\n== extraction ==");
    println!("  power        {:.2} mW", m.power * 1e3);
    println!("  dT steady    {:.2} K", m.delta_t);
    println!("  tau          {:.1} ms", m.tau * 1e3);
    println!(
        "  Rth measured {:.0} K/W (rig truth {:.0})",
        m.rth, rth_true
    );
    println!("  Cth measured {:.2e} J/K", m.cth);

    // Step 4: the paper's model line.
    let rth_model = self_heating_resistance(k_si, w, l);
    println!("\n== model vs measurement ==");
    println!("  Eq. 18 model Rth  {rth_model:.0} K/W");
    println!("  measured Rth      {:.0} K/W", m.rth);
    println!(
        "  ratio             {:.2} (Eq. 18 is the channel-centre peak; the \n                     measurement averages over the channel)",
        rth_model / m.rth
    );
    Ok(())
}
