//! The paper's 3-block 1 mm² IC (Figs. 6–7) as a library user would run
//! it: ASCII isotherm map, mid-chip cross-section, the edge-flux
//! property of the method of images, and the FFT map engine rendering
//! the same field at high resolution in one convolution.
//!
//! Run with `cargo run --release --example thermal_map`.

use ptherm::floorplan::Floorplan;
use ptherm::model::thermal::map::{MapOperator, MapWorkspace};
use ptherm::model::thermal::ThermalModel;

const SHADES: &[u8] = b" .:-=+*#%@";

fn main() {
    let plan = Floorplan::paper_three_blocks();
    let model = ThermalModel::new(&plan);
    let g = *plan.geometry();

    println!(
        "floorplan: {} blocks, {:.2} W total",
        plan.blocks().len(),
        plan.total_power()
    );
    for b in plan.blocks() {
        println!(
            "  {:6}  centre ({:.2}, {:.2}) mm, {:.2} x {:.2} mm, {:.2} W",
            b.name,
            b.cx * 1e3,
            b.cy * 1e3,
            b.w * 1e3,
            b.l * 1e3,
            b.power
        );
    }

    // Isotherm map.
    let n = 40;
    let grid = model.surface_grid(n, n);
    let (lo, hi) = grid
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    println!("\nsurface temperature map ({lo:.2} K .. {hi:.2} K):");
    for iy in (0..n).rev() {
        let row: String = (0..n)
            .map(|ix| {
                let t = (grid[ix + n * iy] - lo) / (hi - lo).max(1e-30);
                SHADES[((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
                    as char
            })
            .collect();
        println!("  {row}");
    }

    // Mid-chip cross-section (Fig. 7).
    println!("\ncross-section T(x) at y = 0.55 mm:");
    for (x, t) in model.cross_section(0.55e-3, 20) {
        let bar = "#".repeat(((t - g.sink_temperature) * 12.0) as usize);
        println!("  x = {:.3} mm  {t:7.3} K  {bar}", x * 1e3);
    }

    // The paper's boundary-condition claim: zero edge flux.
    let h = 1e-6;
    let y = 0.55e-3;
    let d_left = (model.temperature(h, y) - model.temperature(0.0, y)) / h;
    let d_right = (model.temperature(g.width, y) - model.temperature(g.width - h, y)) / h;
    println!("\nedge temperature gradients (should be ~0):");
    println!("  left  {d_left:9.1} K/m");
    println!("  right {d_right:9.1} K/m");

    // Where is the hottest spot?
    let mut best = (0.0, 0.0, f64::MIN);
    for iy in 0..n {
        for ix in 0..n {
            let t = grid[ix + n * iy];
            if t > best.2 {
                best = (
                    (ix as f64 + 0.5) * g.width / n as f64,
                    (iy as f64 + 0.5) * g.length / n as f64,
                    t,
                );
            }
        }
    }
    println!(
        "\nhottest spot: ({:.2}, {:.2}) mm at {:.2} K (+{:.2} K above the sink)",
        best.0 * 1e3,
        best.1 * 1e3,
        best.2,
        best.2 - g.sink_temperature
    );

    // The same field through the FFT map engine: one convolution renders
    // a 128x128 map (16384 tiles) instead of 16384 pointwise image sums.
    let (nx, ny) = (128, 128);
    let op = MapOperator::new(&plan, nx, ny);
    let powers: Vec<f64> = plan.blocks().iter().map(|b| b.power).collect();
    let mut ws = MapWorkspace::new();
    let mut map = vec![0.0; op.tiles()];
    op.temperature_map_into(&powers, g.sink_temperature, &mut ws, &mut map);
    let (tile, peak) = map
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty map");
    let (px, py) = op.tile_center(tile % nx, tile / nx);
    println!(
        "FFT map engine ({nx}x{ny} tiles): hotspot tile at ({:.3}, {:.3}) mm, {peak:.2} K",
        px * 1e3,
        py * 1e3,
    );
}
