//! The Fig. 1 story from the library API: dynamic vs static power across
//! technology generations at three junction temperatures.
//!
//! Run with `cargo run --release --example tech_scaling`.

use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::ScalingTable;

fn main() {
    let table = ScalingTable::itrs_like();
    let temps: Vec<f64> = [25.0, 100.0, 150.0]
        .iter()
        .map(|&c| celsius_to_kelvin(c))
        .collect();

    println!(
        "{:>8}  {:>6}  {:>9}  {:>12}  {:>12}  {:>12}",
        "node", "VDD", "P_dyn (W)", "P_st@25 (W)", "P_st@100 (W)", "P_st@150 (W)"
    );
    for node in &table.nodes {
        println!(
            "{:>6.3}um  {:>6.2}  {:>9.2}  {:>12.4e}  {:>12.4e}  {:>12.4e}",
            node.node * 1e6,
            node.vdd,
            node.dynamic_power(),
            node.static_power(temps[0]),
            node.static_power(temps[1]),
            node.static_power(temps[2]),
        );
    }

    for (label, &t) in ["25 C", "100 C", "150 C"].iter().zip(&temps) {
        let crossing = table
            .nodes
            .iter()
            .find(|n| n.static_power(t) > n.dynamic_power());
        match crossing {
            Some(n) => println!(
                "static power at {label} overtakes dynamic at the {:.3} um node",
                n.node * 1e6
            ),
            None => println!("static power at {label} never overtakes dynamic in this table"),
        }
    }

    // The paper's conclusion in one number: how much total power estimation
    // misses when it ignores the junction temperature at the last node.
    let last = table.nodes.last().expect("table is non-empty");
    let cold = last.dynamic_power() + last.static_power(temps[0]);
    let hot = last.dynamic_power() + last.static_power(temps[2]);
    println!(
        "\nat {:.3} um, assuming 25 C instead of 150 C under-reports total power by {:.1}x",
        last.node * 1e6,
        hot / cold
    );
}
