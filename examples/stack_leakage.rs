//! Stack-leakage study (the Fig. 8 scenario as a library user would run it).
//!
//! Sweeps stack depth, width skew and temperature; prints the proposed
//! model against the exact solver and the reconstructed prior-work
//! baselines.
//!
//! Run with `cargo run --release --example stack_leakage`.

use ptherm::model::leakage::baselines::{chen98_stack_current, naive_stack_current};
use ptherm::model::leakage::GateLeakageModel;
use ptherm::spice::stack::Stack;
use ptherm::tech::constants::celsius_to_kelvin;
use ptherm::tech::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_120nm();
    let model = GateLeakageModel::new(&tech);

    println!("== equal-width stacks, W = 1 um, 25 C ==");
    println!(
        "{:>2}  {:>12}  {:>12}  {:>10}  {:>12}  {:>12}",
        "N", "exact (A)", "model (A)", "err (%)", "chen98 (A)", "naive (A)"
    );
    for n in 1..=6 {
        let widths = vec![1e-6; n];
        let exact = Stack::off_current(&tech, &widths, 298.15)?;
        let proposed = model.stack_off_current(&widths, 298.15);
        let chen = chen98_stack_current(&tech, &widths, 298.15);
        let naive = naive_stack_current(&tech, &widths, 298.15);
        println!(
            "{n:>2}  {exact:>12.3e}  {proposed:>12.3e}  {:>10.2}  {chen:>12.3e}  {naive:>12.3e}",
            100.0 * (proposed - exact).abs() / exact
        );
    }

    println!("\n== width skew: bottom device narrow vs wide (3-stack, 25 C) ==");
    println!(
        "{:>18}  {:>12}  {:>12}  {:>8}",
        "widths (um)", "exact (A)", "model (A)", "err (%)"
    );
    for widths in [
        vec![0.25e-6, 1e-6, 1e-6],
        vec![1e-6, 1e-6, 1e-6],
        vec![4e-6, 1e-6, 1e-6],
        vec![1e-6, 4e-6, 0.25e-6],
    ] {
        let exact = Stack::off_current(&tech, &widths, 298.15)?;
        let proposed = model.stack_off_current(&widths, 298.15);
        let label = widths
            .iter()
            .map(|w| format!("{:.2}", w * 1e6))
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{label:>18}  {exact:>12.3e}  {proposed:>12.3e}  {:>8.2}",
            100.0 * (proposed - exact).abs() / exact
        );
    }

    println!("\n== temperature sweep (2-stack, W = 1 um) ==");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "T (C)", "exact (A)", "model (A)", "err (%)"
    );
    for c in [0.0, 25.0, 50.0, 85.0, 110.0, 125.0] {
        let t = celsius_to_kelvin(c);
        let widths = [1e-6, 1e-6];
        let exact = Stack::off_current(&tech, &widths, t)?;
        let proposed = model.stack_off_current(&widths, t);
        println!(
            "{c:>6.0}  {exact:>12.3e}  {proposed:>12.3e}  {:>8.2}",
            100.0 * (proposed - exact).abs() / exact
        );
    }

    println!("\nnode voltages of the exact solver (4-stack, bottom -> top):");
    let sol = Stack::all_off(&tech, &[1e-6; 4]).solve(298.15)?;
    for (i, v) in sol.node_voltages.iter().enumerate() {
        println!("  V{} = {:.1} mV", i + 1, v * 1e3);
    }
    println!("  I = {:.3e} A", sol.current);
    Ok(())
}
