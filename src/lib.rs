//! # ptherm — a fast concurrent power-thermal model for sub-100nm digital ICs
//!
//! Facade crate for the `ptherm` workspace, a from-scratch Rust reproduction
//! of Rosselló et al., *"A Fast Concurrent Power-Thermal Model for Sub-100nm
//! Digital ICs"*, DATE 2005.
//!
//! The paper couples two closed-form models — a stack-collapsing subthreshold
//! leakage model and an analytical thermal-profile model with method of
//! images — into a fast electro-thermal fixed point. This crate re-exports
//! every sub-crate under a stable set of module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `ptherm-core` | the paper: leakage, thermal, co-simulation |
//! | [`fleet`] | `ptherm-fleet` | multi-floorplan serving: operator cache, job scheduler |
//! | [`tech`] | `ptherm-tech` | technology kits, constants, scaling table |
//! | [`device`] | `ptherm-device` | compact MOSFET models |
//! | [`netlist`] | `ptherm-netlist` | gate topologies, cells, circuits |
//! | [`floorplan`] | `ptherm-floorplan` | chip geometry and power maps |
//! | [`spice`] | `ptherm-spice` | exact DC reference solver |
//! | [`thermal_num`] | `ptherm-thermal-num` | numerical thermal references |
//! | [`math`] | `ptherm-math` | numerical toolbox |
//!
//! # Quickstart
//!
//! ```
//! use ptherm::tech::Technology;
//! use ptherm::netlist::cells;
//! use ptherm::model::leakage::GateLeakageModel;
//!
//! let tech = Technology::cmos_120nm();
//! let nand3 = cells::nand(3, &tech);
//! let model = GateLeakageModel::new(&tech);
//! // Leakage of the all-zero input vector at 25 °C and 125 °C: the paper's
//! // central point is the strong temperature dependence of this number.
//! let cold = model.gate_off_current(&nand3, &[false; 3], 298.15).unwrap();
//! let hot = model.gate_off_current(&nand3, &[false; 3], 398.15).unwrap();
//! assert!(hot > 10.0 * cold);
//! ```

pub use ptherm_core as model;
pub use ptherm_device as device;
pub use ptherm_fleet as fleet;
pub use ptherm_floorplan as floorplan;
pub use ptherm_math as math;
pub use ptherm_netlist as netlist;
pub use ptherm_spice as spice;
pub use ptherm_tech as tech;
pub use ptherm_thermal_num as thermal_num;
