//! Chaos suite: the fleet's fault-tolerance invariants under the
//! deterministic fault-injection harness ([`FaultPlan`]).
//!
//! The gated invariant: injecting a panic into 1 of N mixed jobs must
//! (1) yield a typed worker-panic result line for that job, (2) leave
//! every other job's result line **bitwise identical** to the
//! fault-free run (wall time normalized), and (3) leave the engine —
//! including its operator caches — serving a subsequent fault-free
//! queue with zero residual poisoning. Also here: retry budgets,
//! deadline enforcement, cache reservation recovery and the
//! cancellation-checkpoint proptests.

use proptest::prelude::*;
use ptherm_core::cosim::sweep::ScaledTechPower;
use ptherm_core::cosim::{
    ScenarioGrid, SweepBackend, SweepEngine, SweepOutcome, TransientConfig, TransientOutcome,
};
use ptherm_fleet::{
    parse_jsonl, Fault, FaultPlan, FleetConfig, FleetEngine, FleetEngineBuilder, FleetReport,
    FleetRequest, JobError, JobSpec, OperatorCache, RetryPolicy,
};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_tech::Technology;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A validated engine over `request`'s floorplans (shared by every
/// chaos scenario so construction goes through the one builder path).
fn engine_for(config: &FleetConfig, request: &FleetRequest) -> FleetEngine {
    FleetEngineBuilder::new()
        .config(config.clone())
        .request(request)
        .build()
        .expect("valid configuration")
}

fn tiled(rows: usize, cols: usize, seed: u64) -> Floorplan {
    generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.01, 0.05, seed).expect("valid tiling")
}

/// A mixed queue over three floorplans: dense + spectral steadies,
/// transients and maps, `rounds` rounds of 5 jobs. Budgets vary per
/// round so every job is distinct and line aliasing cannot mask a
/// cross-contamination bug.
fn chaos_request_jsonl(rounds: usize) -> String {
    let mut src = String::from(concat!(
        r#"{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}"#,
        "\n",
        r#"{"type": "floorplan", "name": "g", "tiles": {"rows": 4, "cols": 4, "p_min": 0.01, "p_max": 0.05, "seed": 2}}"#,
        "\n",
        r#"{"type": "floorplan", "name": "c", "blocks": [{"name": "hot", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.3e-3, "l": 0.3e-3, "power": 0.2}]}"#,
        "\n",
    ));
    for round in 0..rounds {
        let d = 0.25 + 0.01 * round as f64;
        src.push_str(&format!(
            "{{\"type\": \"steady\", \"floorplan\": \"a\", \"dynamic_w\": {d}, \"leakage_w\": 0.03, \"vdd_scales\": [0.9, 1.0, 1.1]}}\n"
        ));
        src.push_str(&format!(
            "{{\"type\": \"transient\", \"floorplan\": \"a\", \"dynamic_w\": {d}, \"leakage_w\": 0.02, \"dt_s\": 2e-4, \"steps\": 25}}\n"
        ));
        src.push_str(&format!(
            "{{\"type\": \"map\", \"floorplan\": \"c\", \"dynamic_w\": {d}, \"leakage_w\": 0.01, \"grid\": {{\"nx\": 8, \"ny\": 8}}}}\n"
        ));
        src.push_str(&format!(
            "{{\"type\": \"steady\", \"floorplan\": \"g\", \"dynamic_w\": {d}, \"leakage_w\": 0.03, \"backend\": \"spectral\"}}\n"
        ));
        src.push_str(&format!(
            "{{\"type\": \"steady\", \"floorplan\": \"c\", \"dynamic_w\": {d}, \"leakage_w\": 0.01, \"activities\": [0.5, 1.0]}}\n"
        ));
    }
    src
}

/// Result lines with `wall_ns` normalized to 0 — the bitwise-identity
/// currency of this suite (wall time is the one legitimately
/// nondeterministic field).
fn normalized_lines(report: &FleetReport, jobs: &[JobSpec]) -> Vec<String> {
    report
        .jobs
        .iter()
        .map(|record| {
            let mut normalized = record.clone();
            normalized.wall_ns = 0;
            normalized.to_json(&jobs[record.index]).render()
        })
        .collect()
}

#[test]
fn one_panicking_job_is_isolated_and_every_other_line_is_bitwise_identical() {
    let src = chaos_request_jsonl(2);
    let request = parse_jsonl(&src).expect("valid request");
    let config = FleetConfig::default();
    let engine = engine_for(&config, &request);
    let baseline = normalized_lines(&engine.run(&request.jobs), &request.jobs);

    // Targets cover a dense steady, a spectral steady, a transient and
    // a map job; faults cover both panic sites (operator build under
    // the cache's single-flight reservation, and mid-solve in the
    // power model).
    for (target, fault) in [
        (0, Fault::SolverPanic { iteration: 1 }),
        (1, Fault::SolverPanic { iteration: 2 }),
        (2, Fault::BuilderPanic),
        (3, Fault::BuilderPanic),
    ] {
        let mut chaotic = engine_for(&config, &request);
        chaotic.set_faults(Some(FaultPlan::new().inject(target, fault.clone())));
        let report = chaotic.run(&request.jobs);
        assert_eq!(report.panic_count(), 1, "{fault:?} on job {target}");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.ok_count(), request.jobs.len() - 1);
        let lines = normalized_lines(&report, &request.jobs);
        for (j, (line, base)) in lines.iter().zip(&baseline).enumerate() {
            if j == target {
                assert!(line.contains("\"ok\":false"), "{line}");
                assert!(line.contains("worker panic: injected fault"), "{line}");
                let Err(JobError::WorkerPanic { payload }) = &report.jobs[j].outcome else {
                    panic!("job {j} should be a typed worker panic");
                };
                assert!(payload.contains("injected fault"), "{payload}");
                assert_eq!(report.jobs[j].attempts, 1, "panics never retry");
            } else {
                assert_eq!(line, base, "non-faulted job {j} diverged under {fault:?}");
            }
        }
        // Zero residual cache poisoning: the same engine (same caches)
        // serves a fault-free queue bitwise identically to a cold run.
        chaotic.set_faults(None);
        let after = chaotic.run(&request.jobs);
        assert_eq!(after.ok_count(), request.jobs.len());
        assert_eq!(normalized_lines(&after, &request.jobs), baseline);
    }
}

#[test]
fn seeded_fault_plans_scatter_mixed_faults_and_the_fleet_recovers() {
    let src = chaos_request_jsonl(8); // 40 jobs -> 5 scheduled faults
    let request = parse_jsonl(&src).expect("valid request");
    let plan = FaultPlan::seeded(0xC0FFEE, request.jobs.len());
    let scheduled: Vec<&Fault> = (0..request.jobs.len())
        .filter_map(|j| plan.fault_for(j, 1))
        .collect();
    assert!(
        scheduled
            .iter()
            .any(|f| matches!(f, Fault::SolverPanic { .. } | Fault::BuilderPanic)),
        "seed must schedule at least one panic: {scheduled:?}"
    );
    assert!(
        scheduled.iter().any(|f| matches!(f, Fault::TransientFault)),
        "seed must schedule at least one retryable fault: {scheduled:?}"
    );

    let config = FleetConfig::default();
    let engine = engine_for(&config, &request);
    let baseline = normalized_lines(&engine.run(&request.jobs), &request.jobs);

    let mut chaotic = engine_for(&config, &request);
    chaotic.set_faults(Some(plan.clone()));
    let report = chaotic.run(&request.jobs);
    let lines = normalized_lines(&report, &request.jobs);
    let mut expected_retries = 0;
    let mut expected_panics = 0;
    for (j, (line, base)) in lines.iter().zip(&baseline).enumerate() {
        match plan.fault_for(j, 1) {
            // Delays and evictions perturb timing and cache state but
            // never results.
            None | Some(Fault::Delay { .. }) | Some(Fault::EvictCaches) => {
                assert_eq!(line, base, "job {j}");
            }
            // A seeded TransientFault covers attempt 1 only: one retry,
            // then a result whose only difference is the attempts field.
            Some(Fault::TransientFault) => {
                expected_retries += 1;
                assert!(report.jobs[j].outcome.is_ok(), "job {j} retried to ok");
                assert_eq!(report.jobs[j].attempts, 2, "job {j}");
                assert!(line.contains("\"attempts\":2"), "{line}");
                assert_eq!(&line.replace(",\"attempts\":2", ""), base, "job {j}");
            }
            Some(Fault::SolverPanic { .. }) | Some(Fault::BuilderPanic) => {
                expected_panics += 1;
                assert!(line.contains("worker panic: injected fault"), "{line}");
                assert_eq!(report.jobs[j].attempts, 1, "job {j}: panics never retry");
            }
        }
    }
    assert_eq!(report.retry_count(), expected_retries);
    assert_eq!(report.panic_count(), expected_panics);
    assert_eq!(report.error_count(), expected_panics);

    // Recovery: the faulted engine drains a fault-free queue bitwise
    // identically to a cold engine.
    chaotic.set_faults(None);
    assert_eq!(
        normalized_lines(&chaotic.run(&request.jobs), &request.jobs),
        baseline
    );
}

#[test]
fn transient_faults_retry_within_budget_and_record_attempts() {
    let src = chaos_request_jsonl(1);
    let request = parse_jsonl(&src).expect("valid request");
    let config = FleetConfig {
        // Zero backoff keeps the test instant; the schedule itself is
        // covered by `backoff_is_deterministic_bounded_and_exponential`.
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 0,
            max_delay_ms: 0,
            ..RetryPolicy::default()
        },
        ..FleetConfig::default()
    };
    let engine = engine_for(&config, &request);
    let baseline = normalized_lines(&engine.run(&request.jobs), &request.jobs);

    // Job 0 fails twice then succeeds within the 3-attempt budget; job
    // 1 fails every attempt and exhausts it.
    let plan = FaultPlan::new()
        .inject_for(0, Fault::TransientFault, 2)
        .inject_for(1, Fault::TransientFault, usize::MAX);
    let report = {
        let mut engine = engine_for(&config, &request);
        engine.set_faults(Some(plan));
        engine.run(&request.jobs)
    };
    let lines = normalized_lines(&report, &request.jobs);

    assert!(report.jobs[0].outcome.is_ok());
    assert_eq!(report.jobs[0].attempts, 3);
    assert!(lines[0].contains("\"attempts\":3"), "{}", lines[0]);
    assert_eq!(&lines[0].replace(",\"attempts\":3", ""), &baseline[0]);

    assert!(
        matches!(
            report.jobs[1].outcome,
            Err(JobError::Injected { attempt: 3 })
        ),
        "budget exhausted on the last attempt: {:?}",
        report.jobs[1].outcome
    );
    assert_eq!(report.jobs[1].attempts, 3);
    assert!(
        lines[1].contains("injected transient fault (attempt 3)"),
        "{}",
        lines[1]
    );
    assert_eq!(report.retry_count(), 4);

    // Every other job is untouched.
    for j in 2..request.jobs.len() {
        assert_eq!(&lines[j], &baseline[j], "job {j}");
    }
}

#[test]
fn permanent_errors_never_retry() {
    let src = chaos_request_jsonl(1);
    let request = parse_jsonl(&src).expect("valid request");
    // Even with the fault armed for 5 attempts, a panic is permanent:
    // one attempt, one typed error.
    let plan = FaultPlan::new().inject_for(0, Fault::BuilderPanic, 5);
    let report = {
        let mut engine = engine_for(&FleetConfig::default(), &request);
        engine.set_faults(Some(plan));
        engine.run(&request.jobs)
    };
    assert!(matches!(
        report.jobs[0].outcome,
        Err(JobError::WorkerPanic { .. })
    ));
    assert_eq!(report.jobs[0].attempts, 1);
    assert_eq!(report.retry_count(), 0);

    // Schema-level failures are permanent too.
    let engine = FleetEngineBuilder::new()
        .build()
        .expect("valid configuration");
    let report = engine.run(&request.jobs);
    assert!(report.jobs.iter().all(|j| j.attempts == 1));
    assert_eq!(report.retry_count(), 0);
}

#[test]
fn backoff_is_deterministic_bounded_and_exponential() {
    let policy = RetryPolicy::default();
    for job in 0..16 {
        let mut previous_base = 0;
        for attempt in 1..12 {
            let a = policy.backoff_delay_ms(job, attempt);
            let b = policy.backoff_delay_ms(job, attempt);
            assert_eq!(a, b, "deterministic for (job {job}, attempt {attempt})");
            assert!(a <= policy.max_delay_ms, "capped");
            let base = policy
                .base_delay_ms
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(policy.max_delay_ms);
            assert!(a >= base, "at least the exponential base");
            assert!(base >= previous_base, "base is monotone in the attempt");
            previous_base = base;
        }
    }
    // Different jitter seeds reschedule; same seed replays.
    let other = RetryPolicy {
        jitter_seed: 7,
        ..RetryPolicy::default()
    };
    let schedule = |p: &RetryPolicy| -> Vec<u64> {
        (1..8)
            .map(|attempt| p.backoff_delay_ms(3, attempt))
            .collect()
    };
    assert_eq!(schedule(&policy), schedule(&policy.clone()));
    assert_ne!(schedule(&policy), schedule(&other));
}

#[test]
fn a_blown_deadline_is_a_typed_error_with_partial_progress_not_a_killed_thread() {
    // An injected 50 ms stall against a 5 ms budget deterministically
    // blows the deadline before the first solver checkpoint.
    let src = concat!(
        r#"{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}"#,
        "\n",
        r#"{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0, 1.1], "deadline_ms": 5}"#,
        "\n",
        r#"{"type": "transient", "floorplan": "a", "dynamic_w": 0.25, "leakage_w": 0.02, "dt_s": 2e-4, "steps": 25, "deadline_ms": 5}"#,
        "\n",
        r#"{"type": "map", "floorplan": "a", "dynamic_w": 0.2, "leakage_w": 0.02, "grid": {"nx": 8, "ny": 8}, "deadline_ms": 5}"#,
        "\n",
        r#"{"type": "steady", "floorplan": "a", "dynamic_w": 0.35, "leakage_w": 0.03}"#,
        "\n",
    );
    let request = parse_jsonl(src).expect("valid request");
    let no_deadline = {
        // The same queue without budgets: generous deadlines must be
        // invisible in the results.
        let relaxed = src.replace("\"deadline_ms\": 5", "\"deadline_ms\": 600000");
        let request = parse_jsonl(&relaxed).expect("valid request");
        let engine = engine_for(&FleetConfig::default(), &request);
        normalized_lines(&engine.run(&request.jobs), &request.jobs)
    };

    let plan = FaultPlan::new()
        .inject(0, Fault::Delay { ms: 50 })
        .inject(1, Fault::Delay { ms: 50 })
        .inject(2, Fault::Delay { ms: 50 });
    let mut engine = engine_for(&FleetConfig::default(), &request);
    engine.set_faults(Some(plan));
    let report = engine.run(&request.jobs);
    for j in 0..3 {
        let Err(JobError::DeadlineExceeded {
            elapsed_ms,
            resolved,
            total,
        }) = report.jobs[j].outcome
        else {
            panic!(
                "job {j} should be deadline-exceeded: {:?}",
                report.jobs[j].outcome
            );
        };
        assert!(
            elapsed_ms >= 50,
            "job {j}: the stall counts ({elapsed_ms} ms)"
        );
        assert_eq!(resolved, 0, "job {j}: nothing resolved before the stall");
        assert!(total > 0, "job {j} reports its requested workload");
        assert_eq!(report.jobs[j].attempts, 1, "deadlines never retry");
        let mut normalized = report.jobs[j].clone();
        normalized.wall_ns = 0;
        let line = normalized.to_json(&request.jobs[j]).render();
        assert!(line.contains("deadline exceeded after"), "{line}");
    }
    // The undeadlined job is untouched, and the engine stays reusable:
    // clearing the plan reproduces the relaxed-budget lines exactly.
    assert!(report.jobs[3].outcome.is_ok());
    engine.set_faults(None);
    assert_eq!(
        normalized_lines(&engine.run(&request.jobs), &request.jobs),
        no_deadline
    );
}

#[test]
fn deadline_ms_must_be_a_positive_integer() {
    for bad in ["0", "-5", "2.5", "\"soon\""] {
        let src = format!(
            concat!(
                r#"{{"type": "floorplan", "name": "a", "tiles": {{"rows": 1, "cols": 2}}}}"#,
                "\n",
                r#"{{"type": "steady", "floorplan": "a", "dynamic_w": 0.1, "leakage_w": 0.01, "deadline_ms": {bad}}}"#,
                "\n",
            ),
            bad = bad
        );
        let err = parse_jsonl(&src).expect_err(bad);
        assert!(err.to_string().contains("deadline_ms"), "{err}");
    }
}

#[test]
fn a_panicked_build_releases_its_reservation_and_every_waiter_recovers() {
    // Regression for the leaked-reservation hazard: the first builder
    // panics inside the single-flight reservation; all 8 concurrent
    // waiters (including the panicked caller, retrying as the fleet
    // would) must still obtain the operator — no deadlock, no poisoned
    // entry, exactly one successful rebuild.
    let plan = tiled(3, 3, 7);
    let cache = OperatorCache::new(4);
    let panic_once = AtomicBool::new(true);
    let build_attempts = AtomicUsize::new(0);
    let operators = ptherm_par::par_workers(8, |_| {
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.steady_operator_hooked(&plan, 2, 9, || {
                build_attempts.fetch_add(1, Ordering::Relaxed);
                if panic_once.swap(false, Ordering::Relaxed) {
                    panic!("injected fault: builder panic");
                }
            })
        }));
        match first {
            Ok(op) => op,
            Err(_) => cache.steady_operator_hooked(&plan, 2, 9, || {
                build_attempts.fetch_add(1, Ordering::Relaxed);
            }),
        }
    });
    let reference = &operators[0];
    for op in &operators {
        assert!(Arc::ptr_eq(op, reference), "all waiters share one rebuild");
    }
    assert_eq!(
        build_attempts.load(Ordering::Relaxed),
        2,
        "one panicked build attempt + exactly one successful rebuild"
    );
    // Both reservations count as misses (the panicked one cached
    // nothing); the 6 remaining waiters and the panicked caller's
    // retry all hit the rebuilt entry.
    let stats = cache.steady_stats();
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 7);
}

// ---------------------------------------------------------------------
// Cancellation checkpoints (proptest satellite): a token fired at any
// Picard iteration / transient step / map render leaves the engine
// reusable — the next fault-free run is bitwise identical to a cold
// engine's — across the dense, spectral and map paths.
// ---------------------------------------------------------------------

fn scenario_grid() -> ScenarioGrid {
    ScenarioGrid::new(vec![Technology::cmos_120nm()])
        .vdd_scales(vec![0.9, 1.0, 1.1])
        .activities(vec![0.5, 1.0])
}

fn steady_engine(plan: &Floorplan, backend: SweepBackend) -> SweepEngine {
    SweepEngine::new(plan.clone())
        .backend(backend)
        .threads(1)
        .batch_lanes(8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cancellation_at_any_picard_checkpoint_leaves_the_engine_reusable(
        checks in 0u64..24,
        spectral in 0usize..2,
    ) {
        let plan = tiled(4, 4, 2);
        let backend = if spectral == 1 { SweepBackend::Spectral } else { SweepBackend::Dense };
        let grid = scenario_grid();
        let model = ScaledTechPower::area_weighted(&plan, 0.3, 0.03).prepared_for(&grid);

        let cold = steady_engine(&plan, backend).run(&grid, &model);
        let engine = steady_engine(&plan, backend);
        let token = ptherm_par::CancelToken::after_checks(checks);
        let cancelled = engine.run_with_cancel(&grid, &model, Some(&token));
        prop_assert_eq!(cancelled.len(), grid.len(), "every scenario is accounted for");
        for (outcome, reference) in cancelled.outcomes.iter().zip(&cold.outcomes) {
            match outcome {
                SweepOutcome::Cancelled { iterations } => {
                    prop_assert!(*iterations as u64 <= checks);
                }
                resolved => prop_assert_eq!(resolved, reference),
            }
        }
        if checks == 0 {
            prop_assert!(cancelled
                .outcomes
                .iter()
                .all(|o| matches!(o, SweepOutcome::Cancelled { iterations: 0 })));
        }
        // Reusability: the cancelled engine's next fault-free run is
        // bitwise identical to the cold engine's.
        prop_assert_eq!(&engine.run(&grid, &model).outcomes, &cold.outcomes);
    }

    #[test]
    fn cancellation_at_any_transient_step_leaves_the_engine_reusable(checks in 0u64..40) {
        let plan = tiled(3, 3, 5);
        let grid = scenario_grid();
        let model = ScaledTechPower::area_weighted(&plan, 0.3, 0.03).prepared_for(&grid);
        let cfg = TransientConfig::new(2e-4, 30);

        let cold_engine = steady_engine(&plan, SweepBackend::Dense);
        let top = cold_engine.transient_operator(&cfg).expect("factorable");
        let cold = cold_engine
            .run_transient_with(&grid, &model, &cfg, &top)
            .expect("valid config");

        let engine = steady_engine(&plan, SweepBackend::Dense);
        let token = ptherm_par::CancelToken::after_checks(checks);
        let cancelled = engine
            .run_transient_with_cancel(&grid, &model, &cfg, &top, Some(&token))
            .expect("valid config");
        prop_assert_eq!(cancelled.len(), grid.len());
        for (outcome, reference) in cancelled.outcomes.iter().zip(&cold.outcomes) {
            match outcome {
                TransientOutcome::Cancelled { step } => {
                    prop_assert!(*step as u64 <= checks);
                }
                finished => prop_assert_eq!(finished, reference),
            }
        }
        let warm = engine
            .run_transient_with(&grid, &model, &cfg, &top)
            .expect("valid config");
        prop_assert_eq!(&warm.outcomes, &cold.outcomes);
    }

    #[test]
    fn cancellation_at_any_map_render_leaves_the_engine_reusable(checks in 0u64..20) {
        let plan = tiled(3, 3, 9);
        let grid = scenario_grid();
        let model = ScaledTechPower::area_weighted(&plan, 0.3, 0.03).prepared_for(&grid);

        let cold_engine = steady_engine(&plan, SweepBackend::Dense);
        let map_op = cold_engine.map_operator(8, 8);
        let cold = cold_engine.run_map_with(&grid, &model, &map_op);

        let engine = steady_engine(&plan, SweepBackend::Dense);
        let token = ptherm_par::CancelToken::after_checks(checks);
        let cancelled = engine.run_map_with_cancel(&grid, &model, &map_op, Some(&token));
        prop_assert_eq!(cancelled.len(), grid.len());
        for (outcome, reference) in cancelled.outcomes.iter().zip(&cold.outcomes) {
            match (&outcome.map_k, &reference.map_k) {
                // A cancelled render (or a sweep cancelled before it)
                // reports no map; anything rendered must be bitwise the
                // cold render.
                (None, _) => {}
                (Some(map), Some(reference_map)) => prop_assert_eq!(map, reference_map),
                (rendered, missing) => {
                    prop_assert!(false, "rendered {rendered:?} vs {missing:?}");
                }
            }
        }
        let warm = engine.run_map_with(&grid, &model, &map_op);
        prop_assert_eq!(warm.outcomes.len(), cold.outcomes.len());
        for (w, c) in warm.outcomes.iter().zip(&cold.outcomes) {
            prop_assert_eq!(&w.outcome, &c.outcome);
            prop_assert_eq!(&w.map_k, &c.map_k);
        }
    }
}
