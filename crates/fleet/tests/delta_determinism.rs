//! Determinism contract of the incremental `delta` path and the
//! `envelope` job: the fingerprint-keyed result cache, retry jitter,
//! eviction faults, and amortization toggles are all **bitwise
//! invisible** in results. A cache miss falls back to a cold base
//! solve whose fixed points — and therefore whose warm seeds — are
//! identical to the cached ones, so hit, miss, eviction-mid-queue and
//! cache-off runs all emit the same bytes.

use ptherm_core::cosim::SweepOutcome;
use ptherm_fleet::{
    parse_jsonl, Fault, FaultPlan, FleetConfig, FleetEngineBuilder, FleetReport, JobReport,
    RetryPolicy,
};

/// A named steady base plus two identical `delta` re-solves against
/// it, then an `envelope` bisection: with a single worker the first
/// delta (job 1) always misses the result cache and the second (job 2)
/// always hits it.
const DELTA_REQUEST: &str = r#"
{"type": "floorplan", "name": "quad", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 7}}
{"type": "steady", "floorplan": "quad", "name": "base", "dynamic_w": 0.25, "leakage_w": 0.02, "vdd_scales": [0.9, 1.0, 1.1], "ambients_k": [300, 320]}
{"type": "delta", "base": "base", "vdd_scales": [0.95, 1.05], "activities": [0.6, 1.0]}
{"type": "delta", "base": "base", "vdd_scales": [0.95, 1.05], "activities": [0.6, 1.0]}
{"type": "envelope", "floorplan": "quad", "dynamic_w": 0.25, "leakage_w": 0.02, "axis": "vdd_scale", "lo": 0.5, "hi": 1.5, "tolerance": 0.01, "ambients_k": [300, 320]}
"#;

fn run(amortize: bool, faults: Option<FaultPlan>, retry: RetryPolicy) -> FleetReport {
    let request = parse_jsonl(DELTA_REQUEST).expect("valid request");
    let config = FleetConfig {
        threads: 1,
        amortize,
        retry,
        ..FleetConfig::default()
    };
    let mut builder = FleetEngineBuilder::new().config(config).request(&request);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let engine = builder.build().expect("valid configuration");
    engine.run(&request.jobs)
}

fn delta_outcomes(report: &FleetReport, index: usize) -> (&[SweepOutcome], usize) {
    match &report.jobs[index].outcome {
        Ok(JobReport::Delta { report, seeded }) => (&report.outcomes, *seeded),
        other => panic!("job {index} is not a delta report: {other:?}"),
    }
}

/// The whole queue succeeds and the delta lanes genuinely warm-start:
/// every scenario has a converged same-tech base neighbor, so every
/// lane is seeded, and the seeded solve still converges everywhere.
#[test]
fn delta_jobs_run_end_to_end_and_seed_every_lane_from_the_base() {
    let report = run(true, None, RetryPolicy::default());
    assert_eq!(report.ok_count(), 4);
    for index in [1, 2] {
        let (outcomes, seeded) = delta_outcomes(&report, index);
        assert_eq!(outcomes.len(), 8, "2 vdd x 2 act x 2 ambient");
        assert_eq!(seeded, outcomes.len(), "every lane found a base seed");
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, SweepOutcome::Converged { .. })),
            "seeded lanes all converge: {outcomes:?}"
        );
    }
}

/// Hit vs miss: job 1 populates the result cache cold, job 2 reuses
/// the cached base fixed points — and both deltas emit bitwise
/// identical outcomes, while the cache counters prove the paths
/// actually diverged underneath.
#[test]
fn result_cache_hit_and_miss_are_bitwise_identical() {
    let report = run(true, None, RetryPolicy::default());
    let (miss, seeded_miss) = delta_outcomes(&report, 1);
    let (hit, seeded_hit) = delta_outcomes(&report, 2);
    assert_eq!(miss, hit, "hit and miss emit the same bytes");
    assert_eq!(seeded_miss, seeded_hit);
    assert_eq!(report.result_cache.misses, 1, "job 1 solves the base cold");
    assert_eq!(report.result_cache.hits, 1, "job 2 reuses the cached base");
}

/// An eviction fault between the two deltas forces job 2 back onto the
/// cold-solve path; the fallback is bitwise identical to the cached
/// result, so eviction can never change what a client reads.
#[test]
fn eviction_mid_queue_falls_back_to_a_bitwise_identical_cold_solve() {
    let clean = run(true, None, RetryPolicy::default());
    let faults = FaultPlan::new().inject(2, Fault::EvictCaches);
    let evicted = run(true, Some(faults), RetryPolicy::default());
    assert_eq!(evicted.ok_count(), 4);
    assert_eq!(
        delta_outcomes(&clean, 2),
        delta_outcomes(&evicted, 2),
        "post-eviction delta matches the cached-path bytes"
    );
    assert_eq!(
        evicted.result_cache.misses, 2,
        "the eviction turned job 2's hit into a second cold solve"
    );
    assert_eq!(evicted.result_cache.hits, 0);
}

/// `amortize(false)` disables the result cache entirely — every delta
/// solves its base cold — and the outputs still match the amortized
/// run byte for byte.
#[test]
fn cache_off_runs_match_the_amortized_bytes() {
    let amortized = run(true, None, RetryPolicy::default());
    let cold = run(false, None, RetryPolicy::default());
    for index in [1, 2] {
        assert_eq!(
            delta_outcomes(&amortized, index),
            delta_outcomes(&cold, index),
            "job {index}"
        );
    }
    assert_eq!(amortized.result_cache.misses, 1);
    assert_eq!(cold.result_cache.misses, 0, "cache never consulted");
    assert_eq!(cold.result_cache.hits, 0);
}

/// Retry jitter is timing, not physics: a delta that fails its first
/// attempt with an injected transient fault succeeds on retry with
/// bitwise the same outcomes, under wildly different jitter seeds.
#[test]
fn retry_jitter_never_perturbs_delta_results() {
    let clean = run(true, None, RetryPolicy::default());
    for jitter_seed in [1, 0xDEAD_BEEF] {
        let retry = RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 4,
            jitter_seed,
        };
        let faults = FaultPlan::new().inject(1, Fault::TransientFault);
        let retried = run(true, Some(faults), retry);
        assert_eq!(retried.ok_count(), 4, "the fault is absorbed by retry");
        assert_eq!(retried.retry_count(), 1);
        for index in [1, 2] {
            assert_eq!(
                delta_outcomes(&clean, index),
                delta_outcomes(&retried, index),
                "seed {jitter_seed:#x}, job {index}"
            );
        }
    }
}

/// The `envelope` job runs end to end: every fiber resolves to a typed
/// boundary, and bisection provably spends fewer solves than the
/// exhaustive march the report also prices.
#[test]
fn envelope_jobs_resolve_every_fiber_with_fewer_solves_than_exhaustive() {
    let report = run(true, None, RetryPolicy::default());
    let envelope = match &report.jobs[3].outcome {
        Ok(JobReport::Envelope(e)) => e,
        other => panic!("job 3 is not an envelope report: {other:?}"),
    };
    assert_eq!(envelope.len(), 2, "one fiber per ambient");
    assert_eq!(envelope.resolved_count(), envelope.len());
    assert!(envelope.solves > 0);
    assert!(
        envelope.solves < envelope.exhaustive_solves / 4,
        "bisection beats the exhaustive march 4x: {} vs {}",
        envelope.solves,
        envelope.exhaustive_solves
    );
}
