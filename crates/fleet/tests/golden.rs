//! Golden-file tests for the fleet's JSONL protocol: checked-in
//! request/response fixture pairs under `tests/golden/`, exercised
//! end-to-end (parse → engine → result-line render, including error
//! lines) and compared **bitwise** against the expected files.
//!
//! Two kinds of fixtures:
//!
//! * `NAME.request.jsonl` + `NAME.expected.jsonl` — a request that
//!   parses; the expected file holds the exact result lines the `fleet`
//!   binary would print (with `wall_ns` normalized to 0, the one
//!   timing-dependent field).
//! * `NAME.request.jsonl` + `NAME.expected.txt` — a request that is
//!   refused at parse time; the expected file holds the exact
//!   [`RequestError`] rendering the binary puts on stderr.
//!
//! Fixture workloads are built from exact-arithmetic cases (zero power
//! ⇒ every temperature is bitwise the 300 K ambient on any ISA, since
//! the GEMM tiers multiply by exact zeros), so the goldens are stable
//! across machines; numerical accuracy has its own suites. Regenerate
//! after an intentional protocol change with
//! `GOLDEN_UPDATE=1 cargo test -p ptherm-fleet --test golden`.

use ptherm_fleet::{parse_jsonl, FleetConfig, FleetEngineBuilder};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The serve path of the `fleet` binary, with `wall_ns` pinned to 0:
/// `Ok(result lines)` or `Err(the parse-refusal line)`.
fn serve_normalized(request_text: &str) -> Result<String, String> {
    let request = parse_jsonl(request_text).map_err(|e| format!("invalid request: {e}\n"))?;
    let config = FleetConfig {
        threads: 2,
        ..FleetConfig::default()
    };
    let engine = FleetEngineBuilder::new()
        .config(config)
        .request(&request)
        .build()
        .expect("valid configuration");
    let report = engine.run(&request.jobs);
    let mut out = String::new();
    for record in &report.jobs {
        let mut normalized = record.clone();
        normalized.wall_ns = 0;
        out.push_str(&normalized.to_json(&request.jobs[record.index]).render());
        out.push('\n');
    }
    Ok(out)
}

fn check_fixture(name: &str) {
    let dir = golden_dir();
    let request =
        std::fs::read_to_string(dir.join(format!("{name}.request.jsonl"))).expect("request file");
    let (expected_path, actual) = match serve_normalized(&request) {
        Ok(lines) => (dir.join(format!("{name}.expected.jsonl")), lines),
        Err(error) => (dir.join(format!("{name}.expected.txt")), error),
    };
    if std::env::var("GOLDEN_UPDATE").is_ok() {
        std::fs::write(&expected_path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("missing golden {expected_path:?}: {e}"));
    assert_eq!(
        actual, expected,
        "{name}: output diverged from the checked-in golden \
         (GOLDEN_UPDATE=1 regenerates after intentional changes)"
    );
}

/// A mixed request over every job kind — steady, transient, map — plus
/// a job that fails at run time (negative dt), so the golden covers
/// ok:true lines of each shape and an ok:false error line.
#[test]
fn mixed_request_matches_the_golden_line_for_line() {
    check_fixture("mixed");
}

/// Backend selection over the wire: explicit spectral and dense jobs on
/// a uniform-grid floorplan pin the `"backend"` result field, an
/// implicit job pins the auto resolution, and a spectral request on an
/// off-grid floorplan pins the typed `ok:false` refusal line.
#[test]
fn backend_selection_matches_the_golden_line_for_line() {
    check_fixture("spectral");
}

/// A request refused by the JSON layer: the expected text pins the
/// line number and byte offset of the diagnostic.
#[test]
fn malformed_json_matches_the_golden_refusal() {
    check_fixture("bad_json");
}

/// A request refused by the schema layer (undefined floorplan
/// reference): line-pinned schema diagnostic.
#[test]
fn schema_refusal_matches_the_golden() {
    check_fixture("bad_schema");
}

/// A request refused by floorplan validation (overlapping blocks).
#[test]
fn floorplan_refusal_matches_the_golden() {
    check_fixture("bad_floorplan");
}

/// Protocol versioning over the wire: a line pinning `"v": 1` gets the
/// field echoed on its result line; a version-silent line stays
/// byte-stable with pre-versioning output (no `"v"` field at all).
#[test]
fn versioned_request_matches_the_golden_line_for_line() {
    check_fixture("versioned");
}

/// A request pinning a protocol version this build does not speak is a
/// typed refusal naming both the requested and the supported version.
#[test]
fn unknown_version_refusal_matches_the_golden() {
    check_fixture("bad_version");
}

/// A named steady base plus two `delta` re-solves referencing it: the
/// result lines echo `"base"` and report the warm-`"seeded"` lane count.
/// Zero-power workload keeps every output bitwise 300/320 K on any ISA.
#[test]
fn delta_request_matches_the_golden_line_for_line() {
    check_fixture("delta");
}

/// Runaway-envelope bisection over the wire: zero power never runs
/// away, so every fiber classifies `all_converged` from its endpoint
/// probes and the solve counts are exact arithmetic.
#[test]
fn envelope_request_matches_the_golden_line_for_line() {
    check_fixture("envelope");
}

/// Power-law selection over the wire: `"scaled"`, `"biased"` with the
/// default theta, and `"biased"` with an explicit `theta_k`. Zero
/// budgets multiply the bias term by an exact zero, so all three lines
/// stay bitwise identical to the scaled law.
#[test]
fn power_request_matches_the_golden_line_for_line() {
    check_fixture("power");
}

/// A `delta` referencing a name no earlier steady line registered is a
/// line-pinned schema refusal, not a silent cold solve.
#[test]
fn dangling_delta_base_matches_the_golden_refusal() {
    check_fixture("bad_delta");
}

/// An unknown `"power"` law is a line-pinned schema refusal naming the
/// supported laws.
#[test]
fn unknown_power_law_matches_the_golden_refusal() {
    check_fixture("bad_power");
}

/// Every `*.request.jsonl` fixture has its expected pair — no orphaned
/// fixtures that silently test nothing.
#[test]
fn every_fixture_is_paired() {
    let dir = golden_dir();
    let mut requests = 0;
    for entry in std::fs::read_dir(&dir).expect("golden dir") {
        let name = entry.expect("entry").file_name().into_string().unwrap();
        if let Some(stem) = name.strip_suffix(".request.jsonl") {
            requests += 1;
            let jsonl = dir.join(format!("{stem}.expected.jsonl"));
            let txt = dir.join(format!("{stem}.expected.txt"));
            assert!(
                jsonl.exists() ^ txt.exists(),
                "{stem} needs exactly one expected file"
            );
        }
    }
    assert_eq!(requests, 12, "fixture inventory drifted");
}
