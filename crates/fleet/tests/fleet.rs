//! Fleet-layer correctness: cache semantics (LRU, single-flight,
//! counters), fingerprint keying, cross-thread bit-identity of cached
//! operators, and scheduler determinism across thread counts and cache
//! states.

use proptest::prelude::*;
use ptherm_core::cosim::{ThermalOperator, TransientError};
use ptherm_fleet::{
    parse_jsonl, CacheStats, FleetConfig, FleetEngineBuilder, JobReport, Lru, OperatorCache,
};
use ptherm_floorplan::{generator, ChipGeometry, Floorplan};
use ptherm_math::ode::ImplicitScheme;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn tiled(rows: usize, cols: usize, seed: u64) -> Floorplan {
    generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.01, 0.05, seed).expect("valid tiling")
}

#[test]
fn lru_evicts_the_least_recently_used_under_a_tiny_capacity() {
    let cache: Lru<u64, u64> = Lru::new(2);
    let builds = AtomicUsize::new(0);
    let get = |key: u64| {
        let v: Result<Arc<u64>, std::convert::Infallible> = cache.get_or_build(key, || {
            builds.fetch_add(1, Ordering::Relaxed);
            Ok(key * 10)
        });
        *v.unwrap()
    };
    assert_eq!(get(1), 10);
    assert_eq!(get(2), 20);
    assert_eq!(get(1), 10); // hit: 1 becomes most recent
    assert_eq!(get(3), 30); // evicts 2, the least recently used
    assert_eq!(
        cache.stats(),
        CacheStats {
            hits: 1,
            misses: 3,
            evictions: 1
        }
    );
    assert_eq!(cache.len(), 2);
    // 2 was evicted: getting it again rebuilds (and evicts 1, since the
    // get(3) touch made 3 more recent).
    assert_eq!(get(2), 20);
    assert_eq!(builds.load(Ordering::Relaxed), 4);
    assert_eq!(get(3), 30);
    assert_eq!(cache.stats().hits, 2);
    assert_eq!(cache.stats().evictions, 2);
}

#[test]
fn single_flight_builds_once_under_concurrent_misses() {
    let cache: Lru<u64, u64> = Lru::new(4);
    let builds = AtomicUsize::new(0);
    let values = ptherm_par::par_workers(8, |_| {
        let v: Result<Arc<u64>, std::convert::Infallible> = cache.get_or_build(7, || {
            builds.fetch_add(1, Ordering::Relaxed);
            // Widen the race window so concurrent misses actually pile
            // up on the in-flight build.
            std::thread::sleep(std::time::Duration::from_millis(20));
            Ok(42)
        });
        *v.unwrap()
    });
    assert!(values.iter().all(|&v| v == 42));
    assert_eq!(builds.load(Ordering::Relaxed), 1, "exactly one build");
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 8);
    assert_eq!(stats.misses, 1, "waiters hit the freshly built entry");
}

#[test]
fn failed_builds_cache_nothing_and_release_waiters() {
    let cache: Lru<u64, u64> = Lru::new(4);
    let attempts = AtomicUsize::new(0);
    let outcomes = ptherm_par::par_workers(4, |_| {
        cache.get_or_build(1, || {
            attempts.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(5));
            Err::<u64, &str>("nope")
        })
    });
    // Every caller eventually gets an answer (no deadlock); every
    // answer is the error; nothing is cached.
    assert!(outcomes.iter().all(|o| o.is_err()));
    assert_eq!(cache.len(), 0);
    assert_eq!(attempts.load(Ordering::Relaxed), 4, "each waiter retried");
    // A later successful build works.
    let v: Result<Arc<u64>, &str> = cache.get_or_build(1, || Ok(5));
    assert_eq!(*v.unwrap(), 5);
}

#[test]
fn cross_thread_cache_hits_are_bit_identical_to_a_cold_factorization() {
    let plan = tiled(3, 3, 11);
    let cache = OperatorCache::new(8);
    let caps = ptherm_core::thermal::capacitance::silicon_block_capacitances(&plan);
    let dt = 1e-4;

    let results = ptherm_par::par_workers(8, |_| {
        let op = cache.steady_operator(&plan, 2, 9);
        let top = cache
            .transient_operator(&op, &caps, dt, ImplicitScheme::Trapezoidal)
            .expect("factorable");
        (op, top)
    });

    // Cold references, built with no cache involved.
    let cold_op = ThermalOperator::with_image_orders_threaded(&plan, 2, 9, 1);
    let cold_top = ptherm_core::cosim::TransientOperator::new(
        &cold_op,
        &caps,
        dt,
        ImplicitScheme::Trapezoidal,
    )
    .expect("factorable");

    let (first_op, first_top) = &results[0];
    for (op, top) in &results {
        // All workers share the same Arc (single-flight), and the shared
        // value is bitwise the cold build.
        assert!(Arc::ptr_eq(op, first_op));
        assert!(Arc::ptr_eq(top, first_top));
        assert_eq!(op.influence().as_slice(), cold_op.influence().as_slice());
        assert_eq!(
            top.propagator().as_slice(),
            cold_top.propagator().as_slice()
        );
        assert_eq!(top.injection().as_slice(), cold_top.injection().as_slice());
    }
    let stats = cache.steady_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 7);
}

#[test]
fn steady_cache_keys_on_geometry_so_power_edits_still_hit() {
    let plan = tiled(2, 2, 3);
    let mut repowered = plan.clone();
    repowered.set_power(0, 7.0);
    // The full content fingerprint changes with power...
    assert_ne!(plan.fingerprint(), repowered.fingerprint());
    // ...but the operator reads only geometry, so the cache shares one
    // entry between the two (a hit, same Arc).
    let cache = OperatorCache::new(4);
    let a = cache.steady_operator(&plan, 2, 9);
    let b = cache.steady_operator(&repowered, 2, 9);
    assert!(Arc::ptr_eq(&a, &b));
    assert_eq!(cache.steady_stats().hits, 1);
    // Different image orders are different keys.
    let c = cache.steady_operator(&plan, 2, 5);
    assert!(!Arc::ptr_eq(&a, &c));
    assert_eq!(cache.steady_stats().misses, 2);
}

#[test]
fn transient_cache_misses_on_dt_scheme_and_capacitance_changes() {
    let plan = tiled(2, 2, 5);
    let cache = OperatorCache::new(8);
    let op = cache.steady_operator(&plan, 2, 9);
    let caps = ptherm_core::thermal::capacitance::silicon_block_capacitances(&plan);
    let a = cache
        .transient_operator(&op, &caps, 1e-4, ImplicitScheme::Trapezoidal)
        .unwrap();
    for (dt, scheme, caps_scale) in [
        (2e-4, ImplicitScheme::Trapezoidal, 1.0),
        (1e-4, ImplicitScheme::BackwardEuler, 1.0),
        (1e-4, ImplicitScheme::Trapezoidal, 2.0),
    ] {
        let scaled: Vec<f64> = caps.iter().map(|c| c * caps_scale).collect();
        let other = cache.transient_operator(&op, &scaled, dt, scheme).unwrap();
        assert!(!Arc::ptr_eq(&a, &other));
    }
    // Identical inputs hit.
    let again = cache
        .transient_operator(&op, &caps, 1e-4, ImplicitScheme::Trapezoidal)
        .unwrap();
    assert!(Arc::ptr_eq(&a, &again));
    let stats = cache.transient_stats();
    assert_eq!(stats.misses, 4);
    assert_eq!(stats.hits, 1);
}

#[test]
fn transient_factorization_errors_are_typed_not_cached() {
    let plan = tiled(2, 2, 5);
    let cache = OperatorCache::new(8);
    let op = cache.steady_operator(&plan, 2, 9);
    let bad_caps = vec![1.0; op.len() + 1];
    let err = cache
        .transient_operator(&op, &bad_caps, 1e-4, ImplicitScheme::Trapezoidal)
        .unwrap_err();
    assert!(matches!(err, TransientError::DimensionMismatch { .. }));
    let err = cache
        .transient_operator(&op, &vec![0.0; op.len()], 1e-4, ImplicitScheme::Trapezoidal)
        .unwrap_err();
    assert!(matches!(err, TransientError::BadCapacitance { .. }));
}

const FLEET_REQUEST: &str = r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "floorplan", "name": "b", "tiles": {"rows": 3, "cols": 2, "p_min": 0.01, "p_max": 0.04, "seed": 2}}
{"type": "floorplan", "name": "c", "blocks": [{"name": "hot", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.3e-3, "l": 0.3e-3, "power": 0.2}]}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0, 1.1], "ambients_k": [300, 330]}
{"type": "transient", "floorplan": "b", "dynamic_w": 0.25, "leakage_w": 0.02, "dt_s": 2e-4, "steps": 40, "waveforms": ["step", {"square": {"frequency": 3, "duty": 0.5}}]}
{"type": "steady", "floorplan": "b", "dynamic_w": 0.2, "leakage_w": 0.02}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.35, "leakage_w": 0.03}
{"type": "transient", "floorplan": "c", "dynamic_w": 0.15, "leakage_w": 0.01, "dt_s": 1e-4, "steps": 30, "scheme": "backward_euler"}
{"type": "transient", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "dt_s": 2e-4, "steps": 25}
{"type": "steady", "floorplan": "c", "dynamic_w": 0.1, "leakage_w": 0.01, "activities": [0.5, 1.0]}
"#;

fn run_fleet(threads: usize, amortize: bool) -> ptherm_fleet::FleetReport {
    let request = parse_jsonl(FLEET_REQUEST).expect("valid request");
    let config = FleetConfig {
        threads,
        amortize,
        ..FleetConfig::default()
    };
    let engine = FleetEngineBuilder::new()
        .config(config)
        .request(&request)
        .build()
        .expect("valid configuration");
    engine.run(&request.jobs)
}

fn assert_reports_bit_identical(a: &ptherm_fleet::FleetReport, b: &ptherm_fleet::FleetReport) {
    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.index, y.index);
        match (&x.outcome, &y.outcome) {
            (Ok(JobReport::Steady(p)), Ok(JobReport::Steady(q))) => {
                assert_eq!(p.outcomes, q.outcomes, "job {}", x.index);
            }
            (Ok(JobReport::Transient(p)), Ok(JobReport::Transient(q))) => {
                assert_eq!(p.outcomes, q.outcomes, "job {}", x.index);
            }
            (Ok(JobReport::Map(p)), Ok(JobReport::Map(q))) => {
                assert_eq!((p.nx, p.ny), (q.nx, q.ny), "job {}", x.index);
                for (mo, qo) in p.outcomes.iter().zip(&q.outcomes) {
                    assert_eq!(mo.outcome, qo.outcome, "job {}", x.index);
                    assert_eq!(mo.map_k, qo.map_k, "job {}", x.index);
                }
            }
            (p, q) => panic!("job {} outcome kinds diverged: {p:?} vs {q:?}", x.index),
        }
    }
}

#[test]
fn fleet_results_are_independent_of_thread_count() {
    let serial = run_fleet(1, true);
    assert_eq!(serial.jobs.len(), 7);
    assert_eq!(serial.ok_count(), 7);
    for threads in [2, 8] {
        let parallel = run_fleet(threads, true);
        assert_reports_bit_identical(&serial, &parallel);
    }
}

#[test]
fn cache_amortization_is_bitwise_invisible_in_results() {
    let amortized = run_fleet(4, true);
    let factor_per_job = run_fleet(4, false);
    assert_reports_bit_identical(&amortized, &factor_per_job);
    // But very visible in the counters: 3 distinct floorplans at one
    // image-order config = 3 steady builds; 4 steady-operator lookups
    // come from the 4 steady jobs and 3 more from the transient jobs
    // (each transient needs the floorplan operator too) = 7 lookups.
    let stats = amortized.steady_cache;
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.hits + stats.misses, 7);
    // Transients: 3 distinct (floorplan, caps, dt, scheme) keys.
    assert_eq!(amortized.transient_cache.misses, 3);
    // The cold run caches nothing.
    assert_eq!(factor_per_job.steady_cache.hits, 0);
    assert_eq!(factor_per_job.steady_cache.misses, 0);
}

#[test]
fn unknown_floorplan_is_a_per_job_error_not_a_panic() {
    let request = parse_jsonl(
        r#"
{"type": "floorplan", "name": "real", "tiles": {"rows": 1, "cols": 2}}
{"type": "steady", "floorplan": "real", "dynamic_w": 0.1, "leakage_w": 0.01}
"#,
    )
    .unwrap();
    // Build an engine *without* the floorplan to simulate a stale
    // reference (the parser catches this for well-formed requests).
    let engine = FleetEngineBuilder::new()
        .build()
        .expect("valid configuration");
    let report = engine.run(&request.jobs);
    assert_eq!(report.ok_count(), 0);
    let err = report.jobs[0].outcome.as_ref().unwrap_err();
    assert!(err.to_string().contains("real"));
    // The record still renders a result line.
    let line = report.jobs[0].to_json(&request.jobs[0]).render();
    assert!(line.contains("\"ok\":false"));
}

#[test]
fn result_lines_render_valid_json() {
    let report = run_fleet(2, true);
    let request = parse_jsonl(FLEET_REQUEST).unwrap();
    for record in &report.jobs {
        let line = record.to_json(&request.jobs[record.index]).render();
        let parsed = ptherm_fleet::Json::parse(&line).expect("valid JSON");
        assert_eq!(parsed.get("ok").and_then(|j| j.as_bool()), Some(true));
        assert!(parsed.get("max_peak_k").and_then(|j| j.as_f64()).unwrap() > 300.0);
    }
}

const MAP_REQUEST: &str = r#"
{"type": "floorplan", "name": "a", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.05, "seed": 1}}
{"type": "floorplan", "name": "b", "blocks": [{"name": "hot", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.3e-3, "l": 0.3e-3, "power": 0.2}]}
{"type": "map", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03, "grid": {"nx": 16, "ny": 16}, "vdd_scales": [0.9, 1.1]}
{"type": "map", "floorplan": "a", "dynamic_w": 0.25, "leakage_w": 0.02, "grid": {"nx": 16, "ny": 16}}
{"type": "map", "floorplan": "b", "dynamic_w": 0.2, "leakage_w": 0.02, "grid": {"nx": 12, "ny": 10}}
{"type": "steady", "floorplan": "a", "dynamic_w": 0.3, "leakage_w": 0.03}
"#;

fn run_map_fleet(threads: usize, amortize: bool) -> ptherm_fleet::FleetReport {
    let request = parse_jsonl(MAP_REQUEST).expect("valid request");
    let config = FleetConfig {
        threads,
        amortize,
        ..FleetConfig::default()
    };
    let engine = FleetEngineBuilder::new()
        .config(config)
        .request(&request)
        .build()
        .expect("valid configuration");
    engine.run(&request.jobs)
}

#[test]
fn map_jobs_run_end_to_end_and_amortize_the_kernel_cache() {
    let amortized = run_map_fleet(4, true);
    assert_eq!(amortized.ok_count(), 4);
    // Two map jobs share floorplan "a" at the same 16x16 grid: one
    // kernel build, one hit; floorplan "b" at 12x10 is its own build.
    let stats = amortized.map_cache;
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 1);
    // Every map job's result carries rendered maps for its converged
    // scenarios, at the requested resolution.
    let request = parse_jsonl(MAP_REQUEST).unwrap();
    for record in &amortized.jobs {
        let Ok(JobReport::Map(report)) = &record.outcome else {
            continue;
        };
        let ptherm_fleet::JobSpec::Map(spec) = &request.jobs[record.index] else {
            panic!("kind mismatch")
        };
        assert_eq!((report.nx, report.ny), (spec.nx, spec.ny));
        assert_eq!(report.converged_count(), report.len());
        for outcome in &report.outcomes {
            let map = outcome.map_k.as_deref().expect("converged scenario maps");
            assert_eq!(map.len(), spec.nx * spec.ny);
            assert!(map.iter().all(|&t| t > 300.0));
        }
    }
    // Amortization is bitwise invisible in the results themselves.
    let cold = run_map_fleet(4, false);
    assert_reports_bit_identical(&amortized, &cold);
    assert_eq!(cold.map_cache, CacheStats::default());
}

#[test]
fn map_fleet_results_are_independent_of_thread_count() {
    let serial = run_map_fleet(1, true);
    for threads in [2, 8] {
        assert_reports_bit_identical(&serial, &run_map_fleet(threads, true));
    }
}

#[test]
fn map_result_lines_carry_the_grid() {
    let report = run_map_fleet(2, true);
    let request = parse_jsonl(MAP_REQUEST).unwrap();
    for record in &report.jobs {
        let line = record.to_json(&request.jobs[record.index]).render();
        let parsed = ptherm_fleet::Json::parse(&line).expect("valid JSON");
        let kind = parsed.get("kind").and_then(|j| j.as_str()).unwrap();
        let grid = parsed.get("grid").and_then(|j| j.as_array());
        if kind == "map" {
            let dims: Vec<usize> = grid
                .unwrap()
                .iter()
                .map(|d| d.as_usize().unwrap())
                .collect();
            assert!(dims == [16, 16] || dims == [12, 10]);
            assert!(parsed.get("max_peak_k").and_then(|j| j.as_f64()).unwrap() > 300.0);
        } else {
            assert!(grid.is_none(), "non-map jobs carry no grid field");
        }
    }
}

#[test]
fn map_cache_keys_on_geometry_grid_and_orders() {
    let plan = tiled(2, 2, 3);
    let cache = OperatorCache::new(8);
    let a = cache.map_operator(&plan, 2, 9, 8, 8);
    // Power edits still hit (the kernel is power-blind).
    let mut repowered = plan.clone();
    repowered.set_power(0, 7.0);
    let b = cache.map_operator(&repowered, 2, 9, 8, 8);
    assert!(Arc::ptr_eq(&a, &b));
    // Grid dims and image orders are part of the key.
    for (lat, z, nx, ny) in [(2, 9, 8, 16), (2, 9, 16, 8), (1, 9, 8, 8), (2, 5, 8, 8)] {
        let other = cache.map_operator(&plan, lat, z, nx, ny);
        assert!(!Arc::ptr_eq(&a, &other), "({lat},{z},{nx},{ny})");
    }
    let stats = cache.map_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 5);
}

const SPECTRAL_REQUEST: &str = r#"
{"type": "floorplan", "name": "g", "tiles": {"rows": 4, "cols": 4, "p_min": 0.01, "p_max": 0.05, "seed": 2}}
{"type": "steady", "floorplan": "g", "dynamic_w": 0.3, "leakage_w": 0.03, "backend": "spectral", "vdd_scales": [0.9, 1.0, 1.1]}
{"type": "steady", "floorplan": "g", "dynamic_w": 0.3, "leakage_w": 0.03, "backend": "spectral", "vdd_scales": [0.9, 1.0, 1.1]}
{"type": "steady", "floorplan": "g", "dynamic_w": 0.3, "leakage_w": 0.03, "backend": "dense", "vdd_scales": [0.9, 1.0, 1.1]}
"#;

fn run_spectral_fleet(threads: usize, amortize: bool) -> ptherm_fleet::FleetReport {
    let request = parse_jsonl(SPECTRAL_REQUEST).expect("valid request");
    let config = FleetConfig {
        threads,
        amortize,
        ..FleetConfig::default()
    };
    let engine = FleetEngineBuilder::new()
        .config(config)
        .request(&request)
        .build()
        .expect("valid configuration");
    engine.run(&request.jobs)
}

#[test]
fn spectral_jobs_are_bitwise_invariant_across_cache_state_and_threads() {
    use ptherm_core::cosim::SweepBackend;
    let cached = run_spectral_fleet(1, true);
    assert_eq!(cached.ok_count(), 3);
    // The two identical spectral jobs share one cached build; the dense
    // job never touches the spectral cache.
    assert_eq!(cached.spectral_cache.misses, 1);
    assert_eq!(cached.spectral_cache.hits, 1);
    assert_eq!(cached.jobs[0].backend, Some(SweepBackend::Spectral));
    assert_eq!(cached.jobs[1].backend, Some(SweepBackend::Spectral));
    assert_eq!(cached.jobs[2].backend, Some(SweepBackend::Dense));
    // Identical spectral jobs are bitwise equal to each other...
    let (Ok(JobReport::Steady(a)), Ok(JobReport::Steady(b))) =
        (&cached.jobs[0].outcome, &cached.jobs[1].outcome)
    else {
        panic!("steady spectral jobs")
    };
    assert_eq!(a.outcomes, b.outcomes);
    // ...and cold (per-job build) and threaded runs are bitwise equal
    // to the cached serial run.
    for report in [
        run_spectral_fleet(1, false),
        run_spectral_fleet(4, true),
        run_spectral_fleet(4, false),
    ] {
        assert_reports_bit_identical(&cached, &report);
    }
    assert_eq!(run_spectral_fleet(1, false).spectral_cache.misses, 0);
    // Result lines carry the backend that actually ran.
    let request = parse_jsonl(SPECTRAL_REQUEST).unwrap();
    let line = cached.jobs[0].to_json(&request.jobs[0]).render();
    assert!(line.contains("\"backend\":\"spectral\""), "{line}");
    let line = cached.jobs[2].to_json(&request.jobs[2]).render();
    assert!(line.contains("\"backend\":\"dense\""), "{line}");
}

#[test]
fn spectral_cache_keys_on_grid_orders_and_tolerance() {
    let plan = tiled(4, 4, 2);
    let cache = OperatorCache::new(8);
    let a = cache.spectral_operator(&plan, 2, 9, 1e-6).expect("on grid");
    // Power edits still hit (rasterization and refinement are per-watt).
    let mut repowered = plan.clone();
    repowered.set_power(0, 7.0);
    let b = cache
        .spectral_operator(&repowered, 2, 9, 1e-6)
        .expect("on grid");
    assert!(Arc::ptr_eq(&a, &b));
    // Image orders and the refinement tolerance are part of the key.
    for (lat, z, tol) in [(1, 9, 1e-6), (2, 5, 1e-6), (2, 9, 1e-3)] {
        let other = cache
            .spectral_operator(&plan, lat, z, tol)
            .expect("on grid");
        assert!(!Arc::ptr_eq(&a, &other), "({lat},{z},{tol})");
    }
    let stats = cache.spectral_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 4);
    // An off-grid floorplan is a typed error and caches nothing.
    let offgrid = Floorplan::paper_three_blocks();
    assert!(cache.spectral_operator(&offgrid, 2, 9, 1e-6).is_err());
    assert_eq!(cache.spectral_stats().misses, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fingerprint equality ⇒ bit-identical operator entries: floorplans
    /// built from the same generator parameters fingerprint equal and
    /// must produce byte-equal influence matrices; a perturbed die
    /// geometry must change the fingerprint.
    #[test]
    fn fingerprint_equality_implies_identical_operators(
        rows in 1usize..4,
        cols in 1usize..4,
        seed in 0u64..32,
        z_order in 1usize..6,
        thickness_scale in 1.0f64..1.5,
    ) {
        let a = generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.01, 0.06, seed).unwrap();
        let b = generator::tiled(ChipGeometry::paper_1mm(), rows, cols, 0.01, 0.06, seed).unwrap();
        prop_assert_eq!(a.geometry_fingerprint(), b.geometry_fingerprint());
        let op_a = ThermalOperator::with_image_orders(&a, 2, z_order);
        let op_b = ThermalOperator::with_image_orders(&b, 2, z_order);
        prop_assert_eq!(op_a.fingerprint(), op_b.fingerprint());
        prop_assert_eq!(op_a.influence().as_slice(), op_b.influence().as_slice());

        // Any geometry perturbation must separate the fingerprints (the
        // converse direction: unequal inputs never alias a cache key).
        let geometry = ChipGeometry {
            thickness: ChipGeometry::paper_1mm().thickness * thickness_scale,
            ..ChipGeometry::paper_1mm()
        };
        let c = generator::tiled(geometry, rows, cols, 0.01, 0.06, seed).unwrap();
        if thickness_scale != 1.0 {
            prop_assert_ne!(a.geometry_fingerprint(), c.geometry_fingerprint());
            prop_assert_ne!(
                op_a.fingerprint(),
                ThermalOperator::with_image_orders(&c, 2, z_order).fingerprint()
            );
        }
    }
}
