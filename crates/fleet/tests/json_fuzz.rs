//! Byte-level hardening suite for the hand-rolled JSON parser
//! (`ptherm_fleet::json`): a malformed-input corpus asserting **typed
//! errors with exact byte offsets** (truncated escapes, lone
//! surrogates, pathological numbers, the depth bound, raw NUL bytes),
//! plus a render→parse roundtrip property over generated values.
//!
//! The parser fronts the fleet's JSONL job protocol, so every
//! diagnostic here is one an operator may actually see — the corpus
//! pins both the wording and the offset, making any accidental
//! behavior change in the parser a loud test failure.

use proptest::prelude::*;
use ptherm_fleet::{Json, JsonError};

/// Asserts one malformed input fails with exactly this diagnostic at
/// exactly this byte offset.
fn assert_fails(input: &str, detail: &str, offset: usize) {
    match Json::parse(input) {
        Err(JsonError {
            detail: got_detail,
            offset: got_offset,
        }) => {
            assert_eq!(got_detail, detail, "detail for {input:?}");
            assert_eq!(got_offset, offset, "offset for {input:?}");
        }
        Ok(v) => panic!("{input:?} unexpectedly parsed to {v:?}"),
    }
}

#[test]
fn truncated_escapes_fail_at_the_escape() {
    // \u with fewer than four hex digits left, at end of input.
    assert_fails(r#""\u00"#, "truncated \\u escape", 3);
    assert_fails(r#""\u"#, "truncated \\u escape", 3);
    // Four characters present but not hex.
    assert_fails(r#""\uzzzz""#, "invalid \\u escape", 3);
    // Backslash at end of input.
    assert_fails("\"\\", "invalid escape", 2);
    // Unknown escape letter.
    assert_fails(r#""\q""#, "invalid escape", 2);
    // Unterminated string reports the end of input.
    assert_fails("\"abc", "unterminated string", 4);
}

#[test]
fn lone_and_malformed_surrogates_are_rejected() {
    // High surrogate followed by a plain character: the parser demands
    // a \uXXXX low surrogate immediately after.
    assert_fails(r#""\ud800""#, "unpaired high surrogate", 7);
    assert_fails(r#""\ud800A""#, "unpaired high surrogate", 7);
    // High surrogate followed by a \u escape outside the low range.
    assert_fails(r#""\ud800\u0041""#, "invalid low surrogate", 13);
    // Two high surrogates in a row.
    assert_fails(r#""\ud800\ud800""#, "invalid low surrogate", 13);
    // A low surrogate with no preceding high one.
    assert_fails(r#""\ude00""#, "unpaired low surrogate", 7);
    // A valid pair round-trips to the astral character.
    assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::String("😀".into()));
}

#[test]
fn pathological_numbers_fail_with_offsets_or_pin_their_value() {
    // A bare sign, and an exponent with no digits, are invalid numbers
    // reported at the number's start.
    assert_fails("-", "invalid number", 0);
    assert_fails("1e+", "invalid number", 0);
    assert_fails("[1, -]", "invalid number", 4);
    // Overlong digit strings do not error: they saturate to infinity
    // (Rust's f64 parser), which the renderer then nulls — pinned here
    // so a change in either half is visible.
    let overlong = format!("1{}", "0".repeat(400));
    let v = Json::parse(&overlong).unwrap();
    assert_eq!(v, Json::Number(f64::INFINITY));
    assert_eq!(v.render(), "null");
    // Huge negative exponents underflow to zero quietly.
    assert_eq!(Json::parse("1e-999").unwrap(), Json::Number(0.0));
    // Leading zeros are accepted leniently (the digit scanner takes the
    // whole run; strict JSON would reject "01") — pinned, not endorsed.
    assert_eq!(Json::parse("01").unwrap(), Json::Number(1.0));
    // A second decimal point ends the number; the tail is rejected.
    assert_fails("1.2.3", "trailing characters after JSON value", 3);
}

#[test]
fn nesting_depth_is_bounded_on_both_sides() {
    // 65 levels (root at depth 0, innermost empty array at depth 64)
    // still parse...
    let deep_ok = format!("{}{}", "[".repeat(65), "]".repeat(65));
    assert!(Json::parse(&deep_ok).is_ok());
    // ...one more level trips the bound, reported at the offending
    // opening bracket.
    let too_deep = format!("{}{}", "[".repeat(66), "]".repeat(66));
    assert_fails(&too_deep, "nesting too deep", 65);
    // Objects count against the same bound.
    let nested_obj = "{\"k\":".repeat(66) + "null" + &"}".repeat(66);
    match Json::parse(&nested_obj) {
        Err(e) => assert_eq!(e.detail, "nesting too deep"),
        Ok(_) => panic!("66-deep object should exceed the bound"),
    }
}

#[test]
fn nul_and_control_bytes_are_escape_only() {
    // A raw NUL byte inside a string is rejected where it sits.
    assert_fails("\"a\u{0}b\"", "unescaped control character", 2);
    // A raw newline likewise.
    assert_fails("\"a\nb\"", "unescaped control character", 2);
    // The escaped forms are fine and render back escaped.
    let v = Json::parse(r#""a\u0000b""#).unwrap();
    assert_eq!(v, Json::String("a\u{0}b".into()));
    assert_eq!(v.render(), r#""a\u0000b""#);
    // A NUL outside any string is not a value.
    assert_fails("\u{0}", "expected a JSON value", 0);
}

#[test]
fn offsets_are_byte_offsets_not_character_offsets() {
    // 'é' is two bytes: the error after it must land at byte 7, not
    // character 6 — the offsets operators see must match what their
    // editors show for raw bytes.
    assert_fails("[\"é\", ]", "expected a JSON value", 7);
}

#[test]
fn structural_errors_carry_exact_offsets() {
    assert_fails("", "expected a JSON value", 0);
    assert_fails("   ", "expected a JSON value", 3);
    assert_fails("nul", "invalid literal", 0);
    assert_fails("truE", "invalid literal", 0);
    assert_fails("[1 2]", "expected ',' or ']' in array", 3);
    assert_fails(r#"{"a" 1}"#, "expected ':' after object key", 5);
    assert_fails(r#"{"a": 1 "b": 2}"#, "expected ',' or '}' in object", 8);
    assert_fails(r#"{"a": 1,}"#, "expected '\"'", 8);
    assert_fails("12 34", "trailing characters after JSON value", 3);
}

/// Character palette for generated strings: ASCII, escapes, control
/// characters (including NUL), multibyte and astral code points.
const PALETTE: [char; 12] = [
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\t', '\u{1}', '\u{0}', 'é', '😀',
];

fn string_strategy() -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..8)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
        .boxed()
}

fn json_strategy() -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        proptest::bool::ANY.prop_map(Json::Bool),
        (-1.0e9..1.0e9).prop_map(Json::Number),
        (0u64..1_000_000).prop_map(|n| Json::Number(n as f64)),
        string_strategy().prop_map(Json::String),
    ]
    .boxed();
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            proptest::collection::vec((string_strategy(), inner), 0..4).prop_map(Json::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Render → parse is the identity on generated values: every escape
    /// class, every finite number (shortest-roundtrip Display), every
    /// nesting shape, duplicate object keys included.
    #[test]
    fn render_parse_round_trips(value in json_strategy()) {
        let rendered = value.render();
        let reparsed = Json::parse(&rendered);
        prop_assert!(reparsed.is_ok(), "rendered {rendered:?} failed to reparse");
        prop_assert_eq!(reparsed.unwrap(), value);
    }

    /// The parser never panics on arbitrary byte soup built from JSON
    /// fragments — it either parses or returns an offset inside the
    /// input (or one past it, for end-of-input diagnoses).
    #[test]
    fn parser_total_on_fragment_soup(idxs in proptest::collection::vec(0usize..16, 0..24)) {
        const FRAGMENTS: [&str; 16] = [
            "{", "}", "[", "]", ",", ":", "\"", "\\u", "\\", "null",
            "1e", "-", "tru", "\u{0}", "é", "\"a\"",
        ];
        let soup: String = idxs.into_iter().map(|i| FRAGMENTS[i]).collect();
        match Json::parse(&soup) {
            Ok(_) => {}
            Err(e) => prop_assert!(
                e.offset <= soup.len(),
                "offset {} beyond input length {}",
                e.offset,
                soup.len()
            ),
        }
    }
}
