//! Integration tests for the persistent fleet service
//! ([`ptherm_fleet::server`]): real TCP connections against a live
//! [`FleetServer`], exercising the serve-mode guarantees the module
//! docs promise — batch/serve bitwise identity, graceful drain with
//! zero lost jobs, typed backpressure refusals, line-isolated protocol
//! errors, live stats, and cache persist/warm across restarts.

use ptherm_fleet::{
    parse_jsonl, Fault, FaultPlan, FleetEngine, FleetEngineBuilder, FleetServer, Json, ServeConfig,
    ServeListener, ServeSummary,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::thread::{self, JoinHandle};

/// A mixed request both floorplan kinds, every job kind — including a
/// named steady base, a `delta` re-solve referencing it, an `envelope`
/// bisection, and a biased-power steady — a `"v": 1` pin and a
/// run-time failure: the same shapes the golden suite pins for batch
/// mode.
const MIXED_REQUEST: &str = r#"{"type": "floorplan", "name": "quad", "tiles": {"rows": 2, "cols": 2, "p_min": 0.0, "p_max": 0.0, "seed": 7}}
{"type": "floorplan", "name": "solo", "blocks": [{"name": "blk", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.4e-3, "l": 0.4e-3}]}
{"type": "steady", "floorplan": "quad", "dynamic_w": 0.0, "leakage_w": 0.0, "vdd_scales": [0.9, 1.0, 1.1], "v": 1}
{"type": "transient", "floorplan": "solo", "dynamic_w": 0.0, "leakage_w": 0.0, "dt_s": 1e-4, "steps": 10}
{"type": "map", "floorplan": "quad", "dynamic_w": 0.0, "leakage_w": 0.0, "grid": {"nx": 8, "ny": 8}, "ambients_k": [300, 320]}
{"type": "transient", "floorplan": "quad", "dynamic_w": 0.0, "leakage_w": 0.0, "dt_s": -1e-4, "steps": 5}
{"type": "steady", "floorplan": "quad", "name": "base", "dynamic_w": 0.0, "leakage_w": 0.0, "vdd_scales": [0.9, 1.1], "power": "biased"}
{"type": "delta", "base": "base", "vdd_scales": [0.95, 1.05]}
{"type": "envelope", "floorplan": "quad", "dynamic_w": 0.0, "leakage_w": 0.0, "axis": "vdd_scale", "lo": 0.5, "hi": 1.5, "tolerance": 0.25}
"#;

fn engine(threads: usize) -> FleetEngine {
    FleetEngineBuilder::new()
        .threads(threads)
        .build()
        .expect("valid configuration")
}

/// Binds an ephemeral TCP port, starts serving on a background thread,
/// and returns the address plus the join handle yielding the
/// [`ServeSummary`].
fn start(engine: FleetEngine, config: ServeConfig) -> (SocketAddr, JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = FleetServer::new(engine, config);
    let handle = thread::spawn(move || {
        server
            .serve(vec![ServeListener::Tcp(listener)])
            .expect("serve")
    });
    (addr, handle)
}

/// One full client exchange: stream `request`, half-close the write
/// side, collect every response line until the server closes.
fn roundtrip(addr: SocketAddr, request: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|line| line.expect("response line"))
        .collect()
}

/// Pins the one timing-dependent field so lines compare bitwise.
fn normalize(line: &str) -> String {
    let Some(at) = line.find("\"wall_ns\":") else {
        return line.to_string();
    };
    let digits_start = at + "\"wall_ns\":".len();
    let digits_end = line[digits_start..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |off| digits_start + off);
    format!("{}0{}", &line[..digits_start], &line[digits_end..])
}

fn job_index(line: &str) -> Option<usize> {
    Json::parse(line).ok()?.get("job")?.as_usize()
}

/// The batch baseline: `parse_jsonl` → [`FleetEngine::run`] →
/// normalized result lines in job order.
fn batch_lines(request_text: &str, threads: usize) -> Vec<String> {
    let request = parse_jsonl(request_text).expect("valid request");
    let engine = FleetEngineBuilder::new()
        .threads(threads)
        .request(&request)
        .build()
        .expect("valid configuration");
    let report = engine.run(&request.jobs);
    let mut lines = vec![String::new(); report.jobs.len()];
    for record in &report.jobs {
        lines[record.index] = normalize(&record.to_json(&request.jobs[record.index]).render());
    }
    lines
}

/// Result lines from a serve exchange, sorted into job order and
/// normalized; panics on refusal or control lines.
fn served_in_job_order(lines: &[String]) -> Vec<String> {
    let mut indexed: Vec<(usize, String)> = lines
        .iter()
        .map(|line| {
            assert!(
                line.contains("\"ok\":"),
                "expected a result line, got: {line}"
            );
            (job_index(line).expect("job index"), normalize(line))
        })
        .collect();
    indexed.sort_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, line)| line).collect()
}

fn stat(summary: &ServeSummary, key: &str) -> f64 {
    summary
        .stats
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("stats field {key}"))
}

/// Two concurrent connections stream the same mixed request — both
/// defining the same floorplan names, proving admission-time binding
/// keeps registries connection-local — and each gets back exactly the
/// lines a batch run of that request produces, bitwise (wall-ns
/// normalized), including the `"v": 1` echo and the `ok:false` line.
#[test]
fn concurrent_connections_match_batch_bitwise() {
    let expected = batch_lines(MIXED_REQUEST, 2);
    let (addr, handle) = start(engine(2), ServeConfig::default());

    let clients: Vec<JoinHandle<Vec<String>>> = (0..2)
        .map(|_| thread::spawn(move || roundtrip(addr, MIXED_REQUEST)))
        .collect();
    for client in clients {
        let lines = client.join().expect("client thread");
        assert_eq!(served_in_job_order(&lines), expected);
    }

    // Drain and check the books: 2 connections, 14 jobs, 2 failures
    // (the negative-dt transient per connection).
    let shutdown = roundtrip(addr, "{\"type\": \"shutdown\"}\n");
    assert_eq!(shutdown.len(), 1, "shutdown ack only: {shutdown:?}");
    let summary = handle.join().expect("server thread");
    assert_eq!(stat(&summary, "connections_opened"), 3.0);
    assert_eq!(stat(&summary, "connections_closed"), 3.0);
    assert_eq!(stat(&summary, "jobs_admitted"), 14.0);
    assert_eq!(stat(&summary, "jobs_ok"), 12.0);
    assert_eq!(stat(&summary, "jobs_failed"), 2.0);
    assert_eq!(stat(&summary, "refused_backpressure"), 0.0);
    assert_eq!(stat(&summary, "refused_protocol"), 0.0);
    assert!(stat(&summary, "latency_p50_ns") > 0.0);
    assert!(stat(&summary, "latency_p99_ns") >= stat(&summary, "latency_p50_ns"));
}

/// A shutdown control record mid-stream drains every admitted job to
/// its result line before the connection closes: delay faults keep the
/// single worker busy so the queue is genuinely non-empty when the
/// drain starts, and still zero jobs are lost.
#[test]
fn graceful_shutdown_drains_every_admitted_job() {
    let mut faults = FaultPlan::new();
    for job in 0..3 {
        faults = faults.inject(job, Fault::Delay { ms: 40 });
    }
    let engine = FleetEngineBuilder::new()
        .threads(1)
        .faults(faults)
        .build()
        .expect("valid configuration");
    let (addr, handle) = start(engine, ServeConfig::default());

    let mut request = String::from(
        "{\"type\": \"floorplan\", \"name\": \"quad\", \"tiles\": \
         {\"rows\": 2, \"cols\": 2, \"p_min\": 0.0, \"p_max\": 0.0, \"seed\": 7}}\n",
    );
    let jobs = 8;
    for _ in 0..jobs {
        request.push_str(
            "{\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
             \"leakage_w\": 0.0, \"vdd_scales\": [1.0]}\n",
        );
    }
    request.push_str("{\"type\": \"shutdown\"}\n");

    let lines = roundtrip(addr, &request);
    let acks: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"shutdown\""))
        .collect();
    assert_eq!(acks.len(), 1, "one shutdown ack: {lines:?}");
    let mut answered: Vec<usize> = lines
        .iter()
        .filter(|l| l.contains("\"ok\":"))
        .map(|l| job_index(l).expect("job index"))
        .collect();
    answered.sort_unstable();
    assert_eq!(answered, (0..jobs).collect::<Vec<_>>(), "zero lost jobs");

    let summary = handle.join().expect("server thread");
    assert_eq!(stat(&summary, "jobs_admitted"), jobs as f64);
    assert_eq!(stat(&summary, "jobs_ok"), jobs as f64);
    assert_eq!(stat(&summary, "jobs_failed"), 0.0);
    assert_eq!(stat(&summary, "queue_depth"), 0.0);
}

/// At queue capacity, admission refuses with a typed
/// `"refused": "backpressure"` line naming the depth instead of
/// buffering without bound; every job is either answered or refused,
/// never dropped silently.
#[test]
fn backpressure_refuses_at_capacity_with_a_typed_line() {
    // Job 0 stalls the only worker for 400 ms, so the burst behind it
    // must overflow a capacity-1 queue.
    let faults = FaultPlan::new().inject(0, Fault::Delay { ms: 400 });
    let engine = FleetEngineBuilder::new()
        .threads(1)
        .faults(faults)
        .build()
        .expect("valid configuration");
    let config = ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start(engine, config);

    let mut request = String::from(
        "{\"type\": \"floorplan\", \"name\": \"quad\", \"tiles\": \
         {\"rows\": 2, \"cols\": 2, \"p_min\": 0.0, \"p_max\": 0.0, \"seed\": 7}}\n",
    );
    let jobs = 8;
    for _ in 0..jobs {
        request.push_str(
            "{\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
             \"leakage_w\": 0.0, \"vdd_scales\": [1.0]}\n",
        );
    }
    request.push_str("{\"type\": \"shutdown\"}\n");

    let lines = roundtrip(addr, &request);
    let refused: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"refused\":\"backpressure\""))
        .collect();
    let answered = lines.iter().filter(|l| l.contains("\"ok\":")).count();
    assert!(
        !refused.is_empty(),
        "a capacity-1 queue behind a stalled worker must refuse: {lines:?}"
    );
    assert!(
        refused[0].contains("queue full (depth"),
        "refusal names the depth: {}",
        refused[0]
    );
    assert_eq!(
        answered + refused.len(),
        jobs,
        "every job answered or refused, never dropped: {lines:?}"
    );

    let summary = handle.join().expect("server thread");
    assert_eq!(stat(&summary, "jobs_admitted"), answered as f64);
    assert_eq!(stat(&summary, "refused_backpressure"), refused.len() as f64);
    assert_eq!(stat(&summary, "queue_capacity"), 1.0);
}

/// Serve-mode protocol errors are line-isolated: malformed JSON and an
/// unknown protocol version each yield a typed refusal line, and the
/// connection keeps serving the valid jobs around them (batch mode, by
/// contrast, refuses the whole file).
#[test]
fn protocol_errors_are_line_isolated() {
    let (addr, handle) = start(engine(1), ServeConfig::default());

    let request = "this is not json\n\
        {\"type\": \"floorplan\", \"name\": \"quad\", \"tiles\": \
        {\"rows\": 2, \"cols\": 2, \"p_min\": 0.0, \"p_max\": 0.0, \"seed\": 7}}\n\
        {\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
        \"leakage_w\": 0.0, \"vdd_scales\": [1.0], \"v\": 99}\n\
        {\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
        \"leakage_w\": 0.0, \"vdd_scales\": [1.0]}\n";
    let lines = roundtrip(addr, request);

    let refusals: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"refused\":\"protocol\""))
        .collect();
    assert_eq!(refusals.len(), 2, "two protocol refusals: {lines:?}");
    assert!(
        refusals
            .iter()
            .any(|l| l.contains("unsupported protocol version 99")),
        "version refusal is typed: {refusals:?}"
    );
    let results: Vec<&String> = lines.iter().filter(|l| l.contains("\"ok\":true")).collect();
    assert_eq!(results.len(), 1, "the valid job still ran: {lines:?}");
    assert_eq!(
        job_index(results[0]),
        Some(0),
        "job numbering skips refusals"
    );

    let _ = roundtrip(addr, "{\"type\": \"shutdown\"}\n");
    let summary = handle.join().expect("server thread");
    assert_eq!(stat(&summary, "refused_protocol"), 2.0);
    assert_eq!(stat(&summary, "jobs_ok"), 1.0);
}

/// The `{"type": "stats"}` control record answers mid-connection with
/// live counters and cache hit rates, interleaved with job results on
/// the same stream.
#[test]
fn stats_control_record_reports_live_counters() {
    let (addr, handle) = start(engine(1), ServeConfig::default());

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("read half"));
    let mut line = String::new();

    stream
        .write_all(
            b"{\"type\": \"floorplan\", \"name\": \"quad\", \"tiles\": \
              {\"rows\": 2, \"cols\": 2, \"p_min\": 0.0, \"p_max\": 0.0, \"seed\": 7}}\n\
              {\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
              \"leakage_w\": 0.0, \"vdd_scales\": [1.0]}\n",
        )
        .expect("send job");
    reader.read_line(&mut line).expect("result line");
    assert!(line.contains("\"ok\":true"), "job result first: {line}");

    stream
        .write_all(b"{\"type\": \"stats\"}\n")
        .expect("send stats");
    line.clear();
    reader.read_line(&mut line).expect("stats line");
    let stats = Json::parse(&line).expect("stats json");
    assert_eq!(
        stats.get("type").and_then(Json::as_str),
        Some("stats"),
        "typed stats line: {line}"
    );
    assert_eq!(stats.get("jobs_ok").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    let steady = stats
        .get("caches")
        .and_then(|c| c.get("steady"))
        .expect("steady cache stats");
    assert_eq!(steady.get("misses").and_then(Json::as_f64), Some(1.0));

    stream
        .write_all(b"{\"type\": \"shutdown\"}\n")
        .expect("send shutdown");
    line.clear();
    reader.read_line(&mut line).expect("shutdown ack");
    assert!(line.contains("\"type\":\"shutdown\""), "ack: {line}");

    let _ = handle.join().expect("server thread");
}

/// Cache persistence across restarts: the first serve lifecycle saves
/// a fingerprint-keyed manifest on drain; a second lifecycle with a
/// fresh engine warms from it (every recipe rebuilt, none stale),
/// serves the same request entirely from cache hits, and produces
/// bitwise-identical result lines.
#[test]
fn manifest_round_trip_warms_a_restarted_server() {
    let manifest: PathBuf =
        std::env::temp_dir().join(format!("ptherm-serve-manifest-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&manifest);
    let config = ServeConfig {
        manifest_path: Some(manifest.clone()),
        ..ServeConfig::default()
    };
    let request = "{\"type\": \"floorplan\", \"name\": \"quad\", \"tiles\": \
        {\"rows\": 2, \"cols\": 2, \"p_min\": 0.0, \"p_max\": 0.0, \"seed\": 7}}\n\
        {\"type\": \"steady\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
        \"leakage_w\": 0.0, \"vdd_scales\": [0.9, 1.0]}\n\
        {\"type\": \"transient\", \"floorplan\": \"quad\", \"dynamic_w\": 0.0, \
        \"leakage_w\": 0.0, \"dt_s\": 1e-4, \"steps\": 5}\n\
        {\"type\": \"shutdown\"}\n";

    let (addr, handle) = start(engine(1), config.clone());
    let first: Vec<String> = roundtrip(addr, request)
        .into_iter()
        .filter(|l| l.contains("\"ok\":"))
        .collect();
    let summary = handle.join().expect("server thread");
    assert!(summary.warm.is_none(), "no manifest to warm from yet");
    assert!(summary.manifest_saved, "drain saves the manifest");

    let (addr, handle) = start(engine(1), config);
    let second: Vec<String> = roundtrip(addr, request)
        .into_iter()
        .filter(|l| l.contains("\"ok\":"))
        .collect();
    let summary = handle.join().expect("server thread");
    let warm = summary.warm.expect("warmed from the saved manifest");
    assert_eq!(warm.rebuilt, 2, "steady operator + transient propagator");
    assert_eq!(warm.skipped, 0, "nothing stale");

    // The warm pass itself pays the build (the miss); the served jobs
    // are then pure hits — a restarted service is warm from job one.
    let caches = summary.stats.get("caches").expect("cache stats");
    for cache in ["steady", "transient"] {
        let stats = caches.get(cache).expect("cache entry");
        assert_eq!(
            stats.get("misses").and_then(Json::as_f64),
            Some(1.0),
            "{cache}: only the warm pass misses"
        );
        assert!(
            stats.get("hits").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
            "{cache}: served jobs hit the warmed cache"
        );
    }

    let normalize_all = |lines: &[String]| lines.iter().map(|l| normalize(l)).collect::<Vec<_>>();
    assert_eq!(
        normalize_all(&first),
        normalize_all(&second),
        "restart is bitwise-invisible to clients"
    );
    let _ = std::fs::remove_file(&manifest);
}
