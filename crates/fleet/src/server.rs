//! The persistent fleet service: a long-running socket front-end over
//! [`FleetEngine`].
//!
//! Batch mode (`parse_jsonl` → [`FleetEngine::run`]) reads a whole
//! request, runs it, exits. This module keeps the engine — and, more
//! importantly, its warmed operator caches — alive across requests:
//! clients connect over TCP (or a Unix socket), stream JSONL job lines,
//! and read JSONL result lines back on the same connection, while the
//! engine's work-stealing workers serve every connection off one shared
//! cache.
//!
//! Design, front to back:
//!
//! * **Admission** — each connection gets a reader thread running a
//!   streaming [`RequestParser`]: floorplan definitions build a
//!   *connection-local* registry, and each job line is bound to its
//!   `Arc<Floorplan>` at admission. Workers then run jobs via
//!   [`FleetEngine::run_resolved`], never consulting a shared name
//!   table — two connections may both define `"chip"` without
//!   colliding, and a served job takes the exact solve path (and bit
//!   pattern) of the same job in a batch run.
//! * **Scheduling** — admitted jobs push into a *bounded*
//!   [`StealQueues`] in streaming mode; the engine's workers
//!   `pop_wait` and steal exactly as in batch mode.
//! * **Backpressure** — when the queue is at capacity the job is
//!   refused at admission with a typed `"refused": "backpressure"`
//!   line naming the depth, rather than buffered without bound. The
//!   client retries; the server's memory stays flat.
//! * **Results** — each job carries an `mpsc` handle to its
//!   connection's writer thread; result lines stream back as jobs
//!   complete (tagged `"job": n` in per-connection admission order,
//!   matching the line numbering a batch run of the same request would
//!   use).
//! * **Control** — `{"type": "stats"}` answers with a metrics line
//!   ([`ServeMetrics::stats_json`]: cache hit rates, queue depth, jobs
//!   served, retries/panics, p50/p99 job latency); `{"type":
//!   "shutdown"}` initiates graceful drain.
//! * **Graceful shutdown** — on a shutdown record, or whenever the
//!   [`FleetServer::shutdown_handle`] flag is raised (the `fleet serve`
//!   binary wires SIGTERM and stdin-close to it), the server stops
//!   accepting, closes the queue, drains every admitted job to its
//!   result line, flushes and closes connections. Zero admitted jobs
//!   are lost.
//! * **Persistence** — with a manifest path configured, startup warms
//!   the caches from the previous run's manifest
//!   ([`crate::persist::warm`]) and drain saves the current recipes
//!   back ([`crate::persist::manifest`]), so a restarted service is
//!   serving cache hits from its first job.

use crate::engine::FleetEngine;
use crate::jobs::{ControlRecord, JobSpec, ParsedLine, RequestParser};
use crate::json::Json;
use crate::metrics::ServeMetrics;
use crate::persist::{self, WarmReport};
use ptherm_floorplan::Floorplan;
use ptherm_par::steal::{PushError, StealQueues};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How often blocking-free loops (accept, drain supervisor) re-check
/// the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Serve-mode configuration (engine configuration lives in
/// [`crate::engine::FleetConfig`]; this is only the front-end).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: jobs queued but not yet claimed by a worker.
    /// At capacity, new jobs are refused with a typed backpressure
    /// line instead of buffered.
    pub queue_capacity: usize,
    /// Cache manifest to warm from at startup and save on drain
    /// (`None`: no persistence).
    pub manifest_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    /// A 256-job admission bound, no persistence.
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            manifest_path: None,
        }
    }
}

/// A bound accept socket the server serves on.
#[derive(Debug)]
pub enum ServeListener {
    /// A bound TCP listener.
    Tcp(TcpListener),
    /// A bound Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl ServeListener {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            ServeListener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            ServeListener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            ServeListener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            ServeListener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(Conn::Unix(stream))
            }
        }
    }
}

/// One accepted connection, TCP or Unix, with uniform clone/shutdown.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }

    fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(how),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(how),
        }
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// One admitted job: its spec, the floorplan bound at admission, its
/// per-connection sequence number, and the way home.
struct Admitted {
    seq: usize,
    spec: JobSpec,
    plan: Arc<Floorplan>,
    reply: mpsc::Sender<String>,
}

/// What a completed [`FleetServer::serve`] did.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Cache warm-up outcome (`None`: no manifest configured or none
    /// existed yet).
    pub warm: Option<WarmReport>,
    /// Whether a manifest was saved on drain.
    pub manifest_saved: bool,
    /// The final stats line (same shape the `{"type": "stats"}`
    /// control record answers with).
    pub stats: Json,
}

/// Everything the per-connection and worker threads share.
struct Shared<'e> {
    engine: &'e FleetEngine,
    queue: StealQueues<Admitted>,
    metrics: &'e ServeMetrics,
    shutdown: &'e AtomicBool,
    /// Read-half clones of every live connection, nudged
    /// (`Shutdown::Read`) at drain time to unblock reader threads.
    conns: Mutex<Vec<Conn>>,
}

impl Shared<'_> {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<Conn>> {
        match self.conns.lock() {
            Ok(guard) => guard,
            // Registry operations (push / shutdown-nudge) cannot leave
            // the Vec inconsistent mid-panic.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stats_line(&self) -> String {
        self.metrics
            .stats_json(
                self.queue.depth(),
                self.queue.capacity(),
                &[
                    ("steady", self.engine.cache().steady_stats()),
                    ("transient", self.engine.cache().transient_stats()),
                    ("map", self.engine.cache().map_stats()),
                    ("spectral", self.engine.cache().spectral_stats()),
                    ("results", self.engine.cache().result_stats()),
                ],
            )
            .render()
    }
}

/// The persistent fleet service (see the [module docs](self)).
#[derive(Debug)]
pub struct FleetServer {
    engine: FleetEngine,
    config: ServeConfig,
    metrics: Arc<ServeMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl FleetServer {
    /// A server over a (typically builder-constructed) engine.
    pub fn new(engine: FleetEngine, config: ServeConfig) -> Self {
        FleetServer {
            engine,
            config,
            metrics: Arc::new(ServeMetrics::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The flag that initiates graceful drain when set: share it with a
    /// signal handler (the `fleet serve` binary raises it on SIGTERM)
    /// or a watchdog thread. Also raised internally by a
    /// `{"type": "shutdown"}` control record.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live serve counters (shared; readable while serving).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &FleetEngine {
        &self.engine
    }

    /// Serves connections from `listeners` until the shutdown flag is
    /// raised, then drains: stops accepting, closes the admission
    /// queue, runs every already-admitted job to its result line,
    /// flushes and closes every connection, and (if configured) saves
    /// the cache manifest. Every admitted job is either answered with
    /// a result line or — never silently — refused at admission.
    ///
    /// # Errors
    ///
    /// Only setup I/O failures (putting a listener into non-blocking
    /// mode). Per-connection I/O errors close that connection and are
    /// otherwise absorbed.
    pub fn serve(&self, listeners: Vec<ServeListener>) -> io::Result<ServeSummary> {
        let warm = self.warm_from_manifest();
        let workers = self.engine.config().threads.max(1);
        let shared = Shared {
            engine: &self.engine,
            queue: StealQueues::bounded(workers, self.config.queue_capacity),
            metrics: &self.metrics,
            shutdown: &self.shutdown,
            conns: Mutex::new(Vec::new()),
        };
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }
        thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                scope.spawn(move || worker_loop(w, shared));
            }
            for listener in listeners {
                let shared = &shared;
                scope.spawn(move || accept_loop(scope, listener, shared));
            }
            // Supervise: wait for the flag, then drain. Workers finish
            // the queue and exit on `pop_wait → None`; the read-side
            // nudge unblocks reader threads so they drop their reply
            // handles; writers then drain their channels and close.
            while !self.shutdown.load(Ordering::SeqCst) {
                thread::park_timeout(POLL_INTERVAL);
            }
            shared.queue.close();
            for conn in shared.lock_conns().iter() {
                let _ = conn.shutdown(Shutdown::Read);
            }
        });
        let manifest_saved = self.save_manifest();
        Ok(ServeSummary {
            warm,
            manifest_saved,
            stats: self.metrics.stats_json(
                0,
                self.config.queue_capacity,
                &[
                    ("steady", self.engine.cache().steady_stats()),
                    ("transient", self.engine.cache().transient_stats()),
                    ("map", self.engine.cache().map_stats()),
                    ("spectral", self.engine.cache().spectral_stats()),
                    ("results", self.engine.cache().result_stats()),
                ],
            ),
        })
    }

    /// Warms the engine's caches from the configured manifest, if one
    /// exists and parses. A missing or stale manifest is not an error —
    /// the service starts cold, exactly as if no manifest were
    /// configured.
    fn warm_from_manifest(&self) -> Option<WarmReport> {
        let path = self.config.manifest_path.as_ref()?;
        let text = std::fs::read_to_string(path).ok()?;
        let manifest = persist::parse_manifest(&text).ok()?;
        Some(persist::warm(&self.engine, &manifest))
    }

    /// Saves the current cache recipes to the configured manifest
    /// (write-then-rename, so a crash mid-save never truncates the
    /// previous manifest). Returns whether a manifest was written.
    fn save_manifest(&self) -> bool {
        let Some(path) = self.config.manifest_path.as_ref() else {
            return false;
        };
        let manifest = persist::manifest(&self.engine).render();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        if std::fs::write(&tmp, manifest).is_err() {
            return false;
        }
        std::fs::rename(&tmp, path).is_ok()
    }
}

/// Claims admitted jobs (own queue first, then steals) until the queue
/// is closed *and* drained, running each with its admission-time
/// floorplan and streaming the result line back to its connection.
fn worker_loop(worker: usize, shared: &Shared<'_>) {
    while let Some(job) = shared.queue.pop_wait(worker) {
        let record = shared.engine.run_resolved(&job.spec, &job.plan, job.seq);
        shared.metrics.job_done(&record);
        let line = record.to_json(&job.spec).render();
        // A vanished connection only loses delivery of this line, not
        // the job: it ran, and its cache effects persist.
        let _ = job.reply.send(line);
    }
}

/// Accepts connections (non-blocking + poll, so shutdown is prompt)
/// and spawns each connection's reader and writer threads.
fn accept_loop<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    listener: ServeListener,
    shared: &'scope Shared<'env>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok(conn) => {
                if conn.set_nonblocking(false).is_err() {
                    continue;
                }
                spawn_connection(scope, conn, shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            // Transient accept failures (e.g. aborted handshakes):
            // back off briefly and keep serving.
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn spawn_connection<'scope, 'env>(
    scope: &'scope thread::Scope<'scope, 'env>,
    conn: Conn,
    shared: &'scope Shared<'env>,
) {
    let write_half = match conn.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    if let Ok(nudge) = conn.try_clone() {
        shared.lock_conns().push(nudge);
    }
    shared.metrics.connection_opened();
    let (tx, rx) = mpsc::channel::<String>();
    scope.spawn(move || writer_loop(write_half, rx, shared));
    scope.spawn(move || reader_loop(conn, tx, shared));
}

/// Streams the connection's output lines until every reply handle —
/// the reader's own and one per in-flight job — is gone and the
/// channel is drained, then closes the socket for good.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<String>, shared: &Shared<'_>) {
    for line in rx {
        if writeln!(conn, "{line}").is_err() {
            break;
        }
        if conn.flush().is_err() {
            break;
        }
    }
    let _ = conn.shutdown(Shutdown::Both);
    shared.metrics.connection_closed();
}

/// Parses the connection's request lines and admits jobs into the
/// queue. Errors are line-isolated: a malformed line yields a typed
/// refusal and the connection keeps serving (unlike batch mode, where
/// one bad line fails the whole request file).
fn reader_loop(conn: Conn, tx: mpsc::Sender<String>, shared: &Shared<'_>) {
    let mut parser = RequestParser::new();
    let mut jobs_seen = 0usize;
    for raw in BufReader::new(conn).lines() {
        let Ok(raw) = raw else { break };
        match parser.parse_line(&raw) {
            Ok(ParsedLine::Empty) | Ok(ParsedLine::Floorplan(_)) => {}
            Ok(ParsedLine::Job { spec, plan }) => {
                let seq = jobs_seen;
                jobs_seen += 1;
                let admitted = Admitted {
                    seq,
                    spec: *spec,
                    plan,
                    reply: tx.clone(),
                };
                match shared.queue.push(admitted) {
                    Ok(()) => shared.metrics.job_admitted(),
                    Err(e @ PushError::Full { .. }) => {
                        shared.metrics.refused_backpressure();
                        let _ = tx.send(refusal_line(Some(seq), "backpressure", &e.to_string()));
                    }
                    Err(e @ PushError::Closed) => {
                        let _ = tx.send(refusal_line(Some(seq), "shutdown", &e.to_string()));
                    }
                }
            }
            Ok(ParsedLine::Control(ControlRecord::Stats)) => {
                let _ = tx.send(shared.stats_line());
            }
            Ok(ParsedLine::Control(ControlRecord::Shutdown)) => {
                let ack = Json::Object(vec![
                    ("type".into(), Json::String("shutdown".into())),
                    ("draining".into(), Json::Number(shared.queue.depth() as f64)),
                ]);
                let _ = tx.send(ack.render());
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unpark the supervisor promptly? It polls; 10 ms is
                // prompt enough and keeps this handler trivial.
                break;
            }
            Err(e) => {
                shared.metrics.refused_protocol();
                let _ = tx.send(refusal_line(None, "protocol", &e.to_string()));
            }
        }
    }
    // Dropping `tx` lets the writer finish once in-flight jobs land.
}

/// A typed refusal line: `{"job": n, "refused": kind, "error": why}`.
fn refusal_line(job: Option<usize>, kind: &str, error: &str) -> String {
    let mut fields = Vec::new();
    if let Some(job) = job {
        fields.push(("job".into(), Json::Number(job as f64)));
    }
    fields.push(("refused".into(), Json::String(kind.into())));
    fields.push(("error".into(), Json::String(error.into())));
    Json::Object(fields).render()
}
