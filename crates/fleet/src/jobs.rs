//! The fleet's line-delimited JSON job protocol.
//!
//! One request is a stream of JSONL records, one JSON object per line
//! (blank lines and `#`-prefixed comment lines are skipped). Records
//! are discriminated by their `"type"` field:
//!
//! * `floorplan` — registers a named floorplan, either generated
//!   (`"tiles": {"rows", "cols", "p_min", "p_max", "seed"}`) or
//!   explicit (`"blocks": [{"name", "cx", "cy", "w", "l", "power"}]`),
//!   with an optional `"geometry"` object (`width`, `length`,
//!   `thickness`, `conductivity`, `sink_k`; defaults: the paper's 1 mm
//!   die). Floorplans must be defined before any job references them.
//! * `steady` — a steady-state sweep job: `"floorplan"` (name),
//!   `"dynamic_w"`/`"leakage_w"` chip budgets, and optional axes
//!   `"vdd_scales"`, `"activities"`, `"ambients_k"`. An optional
//!   `"name"` registers the job for later `delta` references; an
//!   optional `"power"` selects the power law (`"scaled"` default, or
//!   `"biased"` with an optional positive `"theta_k"` bias
//!   temperature — the De Vogeleer exponential temperature-bias law).
//! * `delta` — an incremental re-solve: `"base"` names an earlier
//!   **named** steady job and the record overrides any of
//!   `dynamic_w`, `leakage_w`, `vdd_scales`, `activities`,
//!   `ambients_k`, `backend` or `deadline_ms`. The engine warm-starts
//!   each delta scenario from the cached base fixed point; output is
//!   bitwise identical whether the base is cached or re-solved.
//!   `"floorplan"`, `"power"` and `"name"` are refused: a delta runs
//!   on its base's floorplan and power law, and cannot itself be a
//!   base.
//! * `envelope` — runaway-envelope bisection: the steady fields plus
//!   `"axis"` (`"vdd_scale"`, `"activity"` or `"ambient_k"`), finite
//!   `"lo"`/`"hi"` interval endpoints and a positive `"tolerance"`.
//!   Each fiber of the remaining axes is bisected to bracket the
//!   converged/runaway boundary.
//! * `transient` — a transient job: the steady fields plus `"dt_s"`,
//!   `"steps"`, optional `"scheme"` (`"trapezoidal"` default, or
//!   `"backward_euler"`) and `"waveforms"` (list of `"step"`,
//!   `{"square": {"frequency", "duty"}}` or
//!   `{"trace": {"times": [...], "scales": [...]}}`).
//! * `map` — a high-resolution spatial map job: the steady fields plus
//!   `"grid": {"nx", "ny"}` (positive tile counts, product bounded so a
//!   hostile request cannot allocate unbounded kernels). Each converged
//!   scenario renders an `nx × ny` FFT temperature map.
//!
//! Every record may carry an optional `"v"` protocol-version field
//! (default [`PROTOCOL_VERSION`]). Lines requesting an unknown version
//! are refused with a typed [`RequestError::Version`]; job result
//! lines echo `"v"` back **only when the request line carried it
//! explicitly**, so version-silent clients see byte-stable output.
//!
//! Serve mode additionally accepts two **control records**:
//! `{"type": "stats"}` (one stats line back on the requesting
//! connection) and `{"type": "shutdown"}` (graceful drain); batch mode
//! refuses them, since a file has no connection to answer on.
//!
//! The full schema with examples is documented in
//! `docs/ARCHITECTURE.md`. Everything parses into typed specs here;
//! malformed input is a [`RequestError`] naming the offending line —
//! never a panic inside a fleet worker.

use crate::json::{Json, JsonError};
use ptherm_core::cosim::{DriveWaveform, EnvelopeAxis, SweepBackend, DEFAULT_BIAS_THETA_K};
use ptherm_floorplan::fingerprint::Fingerprinter;
use ptherm_floorplan::{generator, Block, BuildFloorplanError, ChipGeometry, Floorplan};
use ptherm_math::ode::ImplicitScheme;
use std::fmt;
use std::sync::Arc;

/// The protocol version this build speaks. Request lines may pin it
/// with `"v": 1`; any other value is a typed per-line refusal
/// ([`RequestError::Version`]), so old clients fail loudly against a
/// future incompatible server instead of silently misparsing.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parse/validation failure, pinned to a 1-based request line.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line is not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Parser diagnosis.
        error: JsonError,
    },
    /// The line is valid JSON but not a valid record.
    Schema {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        detail: String,
    },
    /// A floorplan record failed geometric validation.
    Floorplan {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        error: BuildFloorplanError,
    },
    /// The line requested a protocol version this build does not speak.
    Version {
        /// 1-based line number.
        line: usize,
        /// The unsupported version the line asked for.
        requested: u64,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Json { line, error } => write!(f, "line {line}: {error}"),
            RequestError::Schema { line, detail } => write!(f, "line {line}: {detail}"),
            RequestError::Floorplan { line, error } => {
                write!(f, "line {line}: invalid floorplan: {error}")
            }
            RequestError::Version { line, requested } => write!(
                f,
                "line {line}: unsupported protocol version {requested} (this build speaks {PROTOCOL_VERSION})"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// The power law a job solves under, selected by the record's
/// optional `"power"` field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerSpec {
    /// The paper's flat scaled-technology law (default):
    /// temperature-dependent leakage, temperature-flat dynamic power.
    Scaled,
    /// The De Vogeleer temperature-bias dynamic-power law
    /// ([`ptherm_core::cosim::BiasedTechPower`]): dynamic power grows
    /// as `e^{(T − T_ref)/θ}` on top of the scaled law.
    Biased {
        /// Bias temperature θ, K (finite and positive — the parser
        /// refuses anything else, so the core clamp never fires on
        /// fleet input).
        theta_k: f64,
    },
}

impl PowerSpec {
    /// The record tag (`"scaled"` / `"biased"`).
    pub fn name(self) -> &'static str {
        match self {
            PowerSpec::Scaled => "scaled",
            PowerSpec::Biased { .. } => "biased",
        }
    }
}

/// A steady-state sweep job.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyJob {
    /// Name of a previously defined floorplan.
    pub floorplan: String,
    /// Optional job name registering this steady job as a `delta`
    /// base on later lines. Names are per-request/per-connection,
    /// like floorplan names, and must be unique.
    pub name: Option<String>,
    /// The power law to solve under (`"power"` field; scaled default).
    pub power: PowerSpec,
    /// Chip dynamic-power budget at activity 1 / nominal Vdd, W.
    pub dynamic_w: f64,
    /// Chip leakage budget at `T_ref` / nominal Vdd, W.
    pub leakage_w: f64,
    /// Supply-scale axis (default `[1.0]`).
    pub vdd_scales: Vec<f64>,
    /// Activity axis (default `[1.0]`).
    pub activities: Vec<f64>,
    /// Ambient axis, K; `None` = the floorplan's sink temperature.
    pub ambients_k: Option<Vec<f64>>,
    /// Requested sweep backend (`"auto"` unless the record says
    /// otherwise). Only steady jobs honour it — map and transient jobs
    /// always run the dense operator.
    pub backend: SweepBackend,
    /// Optional per-job wall-clock budget, ms. When the budget runs
    /// out mid-solve the job retires cooperatively with a typed
    /// deadline-exceeded error carrying its partial-progress stats —
    /// no thread is ever killed. `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// The protocol version the request line pinned explicitly, if
    /// any. `Some` makes the result line echo `"v"` back; `None`
    /// (version-silent, the common case) keeps the line byte-stable
    /// with pre-versioning output.
    pub v: Option<u64>,
}

/// A transient (time-stepped) job.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientJob {
    /// The steady-state fields (floorplan, budgets, scenario axes).
    pub base: SteadyJob,
    /// Time step, s.
    pub dt_s: f64,
    /// Step count.
    pub steps: usize,
    /// Implicit scheme.
    pub scheme: ImplicitScheme,
    /// Drive waveforms (empty = single step drive).
    pub waveforms: Vec<DriveWaveform>,
}

/// A high-resolution spatial map job.
#[derive(Debug, Clone, PartialEq)]
pub struct MapJob {
    /// The steady-state fields (floorplan, budgets, scenario axes).
    pub base: SteadyJob,
    /// Map grid width in tiles.
    pub nx: usize,
    /// Map grid height in tiles.
    pub ny: usize,
}

/// An incremental delta re-solve: a steady job warm-started from the
/// fixed points of an earlier **named** steady job.
///
/// Resolution happens at parse time: the `"base"` reference is looked
/// up in the request's (or connection's) named-steady registry and
/// cloned in, so the spec is self-contained — serve-mode results
/// cannot depend on later redefinitions, mirroring how floorplan
/// references bind at admission.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaJob {
    /// The referenced base steady job, resolved at parse time.
    pub base: SteadyJob,
    /// The delta job itself: the base with this record's overrides
    /// applied (same floorplan and power law by construction).
    pub job: SteadyJob,
}

/// A runaway-envelope bisection job: bracket the converged/runaway
/// boundary along one scenario axis per fiber of the remaining axes
/// (see [`ptherm_core::cosim::envelope`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeJob {
    /// The steady-state fields (floorplan, budgets, fiber axes; the
    /// swept axis's own values are ignored).
    pub base: SteadyJob,
    /// The axis bisected along each fiber.
    pub axis: EnvelopeAxis,
    /// Low end of the searched interval (inclusive).
    pub lo: f64,
    /// High end of the searched interval (inclusive).
    pub hi: f64,
    /// Maximum final bracket width.
    pub tolerance: f64,
}

/// One job of a fleet request.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Steady-state sweep.
    Steady(SteadyJob),
    /// Implicit transient.
    Transient(TransientJob),
    /// High-resolution spatial map sweep.
    Map(MapJob),
    /// Incremental delta re-solve against a named steady base.
    Delta(DeltaJob),
    /// Runaway-envelope bisection.
    Envelope(EnvelopeJob),
}

impl JobSpec {
    /// The referenced floorplan name.
    pub fn floorplan(&self) -> &str {
        match self {
            JobSpec::Steady(j) => &j.floorplan,
            JobSpec::Transient(j) => &j.base.floorplan,
            JobSpec::Map(j) => &j.base.floorplan,
            JobSpec::Delta(j) => &j.job.floorplan,
            JobSpec::Envelope(j) => &j.base.floorplan,
        }
    }

    /// Short kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Steady(_) => "steady",
            JobSpec::Transient(_) => "transient",
            JobSpec::Map(_) => "map",
            JobSpec::Delta(_) => "delta",
            JobSpec::Envelope(_) => "envelope",
        }
    }

    /// The job's wall-clock budget, ms, if one was requested.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            JobSpec::Steady(j) => j.deadline_ms,
            JobSpec::Transient(j) => j.base.deadline_ms,
            JobSpec::Map(j) => j.base.deadline_ms,
            JobSpec::Delta(j) => j.job.deadline_ms,
            JobSpec::Envelope(j) => j.base.deadline_ms,
        }
    }

    /// The protocol version the request line pinned explicitly, if any
    /// (see [`SteadyJob::v`]).
    pub fn version(&self) -> Option<u64> {
        match self {
            JobSpec::Steady(j) => j.v,
            JobSpec::Transient(j) => j.base.v,
            JobSpec::Map(j) => j.base.v,
            JobSpec::Delta(j) => j.job.v,
            JobSpec::Envelope(j) => j.base.v,
        }
    }
}

/// The result-cache key of one resolved steady job: what the fleet's
/// delta path uses to look up (or single-flight build) the base
/// job's **cold** [`SweepReport`](ptherm_core::cosim::SweepReport) in
/// [`OperatorCache`](crate::cache::OperatorCache).
///
/// Keying rules (documented contract, pinned by
/// `tests/delta_determinism.rs`):
///
/// * **Included** — the floorplan's content fingerprint (not its
///   name: same die, same results), both power budgets, the power law
///   and its θ, all three scenario axes, and the **resolved** backend
///   (dense and spectral fixed points differ at the ULP level).
/// * **Excluded** — the job/floorplan *names*, `deadline_ms`, the
///   protocol-version echo, and retry/fault state: none of them
///   change the fixed points. Engine-fixed configuration (technology
///   kits, image orders, batch width) is also excluded — the cache
///   lives and dies with one validated engine configuration, so those
///   inputs cannot vary across entries.
///
/// A cache miss (or eviction) re-solves the base cold and
/// deterministically reproduces the evicted entry bit for bit, so
/// delta output never depends on cache state.
pub fn steady_result_fingerprint(job: &SteadyJob, plan_fingerprint: u64, spectral: bool) -> u64 {
    let mut f = Fingerprinter::new("ptherm.fleet.steady-result.v1");
    f.write_u64(plan_fingerprint);
    f.write_u64(u64::from(spectral));
    f.write_f64(job.dynamic_w);
    f.write_f64(job.leakage_w);
    match job.power {
        PowerSpec::Scaled => f.write_str("scaled"),
        PowerSpec::Biased { theta_k } => {
            f.write_str("biased");
            f.write_f64(theta_k);
        }
    }
    f.write_f64_slice(&job.vdd_scales);
    f.write_f64_slice(&job.activities);
    match &job.ambients_k {
        None => f.write_str("sink"),
        Some(ambients) => {
            f.write_str("ambients");
            f.write_f64_slice(ambients);
        }
    }
    f.finish()
}

/// A parsed request: named floorplans (in definition order) and jobs
/// (in submission order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetRequest {
    /// Defined floorplans.
    pub floorplans: Vec<(String, Floorplan)>,
    /// Submitted jobs.
    pub jobs: Vec<JobSpec>,
}

/// A serve-mode control record (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlRecord {
    /// `{"type": "stats"}` — answer with one stats line on the
    /// requesting connection.
    Stats,
    /// `{"type": "shutdown"}` — begin a graceful drain: refuse new
    /// admissions, finish queued and in-flight jobs, then exit.
    Shutdown,
}

impl ControlRecord {
    /// The record's `"type"` tag.
    pub fn name(self) -> &'static str {
        match self {
            ControlRecord::Stats => "stats",
            ControlRecord::Shutdown => "shutdown",
        }
    }
}

/// One classified request line: what both the batch parser and the
/// serve-mode [`RequestParser`] produce per JSONL record.
#[derive(Debug, Clone, PartialEq)]
enum Record {
    /// A floorplan definition.
    Floorplan(String, Floorplan),
    /// A job spec (with the pinned protocol version, if any, inside).
    Job(Box<JobSpec>),
    /// A serve-mode control record.
    Control(ControlRecord),
}

/// Validates the optional `"v"` field: absent or
/// [`PROTOCOL_VERSION`] is fine, a non-integer is a schema error, any
/// other integer is a typed version refusal. Returns the explicitly
/// pinned version, if any.
fn validate_version(record: &Json, line: usize) -> Result<Option<u64>, RequestError> {
    match record.get("v") {
        None => Ok(None),
        Some(v) => {
            let requested = v.as_usize().ok_or_else(|| RequestError::Schema {
                line,
                detail: "\"v\" must be a non-negative integer protocol version".into(),
            })? as u64;
            if requested != PROTOCOL_VERSION {
                return Err(RequestError::Version { line, requested });
            }
            Ok(Some(requested))
        }
    }
}

/// Classifies one parsed JSON record. `exists` answers whether a
/// floorplan name has been defined earlier in this
/// request/connection; `steady_of` resolves a named steady job for
/// `delta` references the same way.
fn classify_record(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    steady_of: &dyn Fn(&str) -> Option<SteadyJob>,
) -> Result<Record, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let v = validate_version(record, line)?;
    let kind = record
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("record needs a string \"type\" field".into()))?;
    match kind {
        "floorplan" => {
            let (name, plan) = parse_floorplan(record, line)?;
            Ok(Record::Floorplan(name, plan))
        }
        "steady" => Ok(Record::Job(Box::new(JobSpec::Steady(parse_steady(
            record, line, exists, v,
        )?)))),
        "transient" => Ok(Record::Job(Box::new(JobSpec::Transient(parse_transient(
            record, line, exists, v,
        )?)))),
        "map" => Ok(Record::Job(Box::new(JobSpec::Map(parse_map(
            record, line, exists, v,
        )?)))),
        "delta" => Ok(Record::Job(Box::new(JobSpec::Delta(parse_delta(
            record, line, steady_of, v,
        )?)))),
        "envelope" => Ok(Record::Job(Box::new(JobSpec::Envelope(parse_envelope(
            record, line, exists, v,
        )?)))),
        "stats" => Ok(Record::Control(ControlRecord::Stats)),
        "shutdown" => Ok(Record::Control(ControlRecord::Shutdown)),
        other => Err(schema(format!("unknown record type {other:?}"))),
    }
}

/// Parses a whole JSONL request (see the [module docs](self)).
///
/// Control records (`stats` / `shutdown`) are refused here: they only
/// make sense on a live serve-mode connection.
///
/// # Errors
///
/// The first offending line as a [`RequestError`].
pub fn parse_jsonl(text: &str) -> Result<FleetRequest, RequestError> {
    let mut request = FleetRequest::default();
    let mut named: Vec<(String, SteadyJob)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let record = Json::parse(trimmed).map_err(|error| RequestError::Json { line, error })?;
        let exists = |name: &str| request.floorplans.iter().any(|(n, _)| n == name);
        let steady_of = |name: &str| {
            named
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, job)| job.clone())
        };
        match classify_record(&record, line, &exists, &steady_of)? {
            Record::Floorplan(name, plan) => {
                if request.floorplans.iter().any(|(n, _)| *n == name) {
                    return Err(RequestError::Schema {
                        line,
                        detail: format!("floorplan {name:?} defined twice"),
                    });
                }
                request.floorplans.push((name, plan));
            }
            Record::Job(spec) => {
                if let JobSpec::Steady(job) = &*spec {
                    if let Some(name) = &job.name {
                        if named.iter().any(|(n, _)| n == name) {
                            return Err(RequestError::Schema {
                                line,
                                detail: format!("steady job {name:?} named twice"),
                            });
                        }
                        named.push((name.clone(), job.clone()));
                    }
                }
                request.jobs.push(*spec);
            }
            Record::Control(ctl) => {
                return Err(RequestError::Schema {
                    line,
                    detail: format!(
                        "control record \"{}\" is only valid on a serve-mode connection",
                        ctl.name()
                    ),
                })
            }
        }
    }
    Ok(request)
}

/// One line's outcome from the streaming [`RequestParser`].
#[derive(Debug, Clone)]
pub enum ParsedLine {
    /// Blank or comment line — nothing to do.
    Empty,
    /// A floorplan was defined and registered under this name.
    Floorplan(String),
    /// A job, with its floorplan resolved **at admission time** against
    /// this parser's registry. Carrying the resolved handle (rather
    /// than re-resolving by name at run time) is what makes serve-mode
    /// results independent of later floorplan definitions on other
    /// connections — and therefore bitwise identical to batch mode.
    Job {
        /// The parsed job spec (boxed: a spec is an order of magnitude
        /// larger than the other variants).
        spec: Box<JobSpec>,
        /// The referenced floorplan, resolved on this connection.
        plan: Arc<Floorplan>,
    },
    /// A serve-mode control record.
    Control(ControlRecord),
}

/// Incremental per-connection parser for serve mode.
///
/// Unlike [`parse_jsonl`] (whole request, first-error refusal), a
/// `RequestParser` consumes one line at a time and keeps the
/// connection's floorplan registry across lines, so a long-lived
/// client can interleave definitions and jobs. Errors are per-line:
/// the caller reports the refusal and keeps the connection open.
///
/// Each connection gets its own parser; floorplans defined on one
/// connection are invisible to every other, which keeps result lines
/// free of cross-client interference.
#[derive(Debug, Default)]
pub struct RequestParser {
    floorplans: Vec<(String, Arc<Floorplan>)>,
    named_steady: Vec<(String, SteadyJob)>,
    line: usize,
}

impl RequestParser {
    /// A parser with an empty floorplan registry, at line 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines consumed so far (including blank/comment/refused lines).
    pub fn lines_seen(&self) -> usize {
        self.line
    }

    /// Looks up a floorplan defined earlier on this connection.
    pub fn floorplan(&self, name: &str) -> Option<&Arc<Floorplan>> {
        self.floorplans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, plan)| plan)
    }

    /// Consumes one raw request line.
    ///
    /// # Errors
    ///
    /// A [`RequestError`] pinned to this connection's 1-based line
    /// count. The parser stays usable: a refused line consumes its
    /// line number and nothing else.
    pub fn parse_line(&mut self, raw: &str) -> Result<ParsedLine, RequestError> {
        self.line += 1;
        let line = self.line;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(ParsedLine::Empty);
        }
        let record = Json::parse(trimmed).map_err(|error| RequestError::Json { line, error })?;
        let exists = |name: &str| self.floorplans.iter().any(|(n, _)| n == name);
        let steady_of = |name: &str| {
            self.named_steady
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, job)| job.clone())
        };
        match classify_record(&record, line, &exists, &steady_of)? {
            Record::Floorplan(name, plan) => {
                if self.floorplans.iter().any(|(n, _)| *n == name) {
                    return Err(RequestError::Schema {
                        line,
                        detail: format!("floorplan {name:?} defined twice"),
                    });
                }
                self.floorplans.push((name.clone(), Arc::new(plan)));
                Ok(ParsedLine::Floorplan(name))
            }
            Record::Job(spec) => {
                if let JobSpec::Steady(job) = &*spec {
                    if let Some(name) = &job.name {
                        if self.named_steady.iter().any(|(n, _)| n == name) {
                            return Err(RequestError::Schema {
                                line,
                                detail: format!("steady job {name:?} named twice"),
                            });
                        }
                        self.named_steady.push((name.clone(), job.clone()));
                    }
                }
                // classify_record validated the reference, so the
                // lookup cannot miss; still, fail typed rather than
                // unwrap if the invariant ever breaks.
                let plan = self.floorplan(spec.floorplan()).cloned().ok_or_else(|| {
                    RequestError::Schema {
                        line,
                        detail: format!(
                            "job references undefined floorplan {:?}",
                            spec.floorplan()
                        ),
                    }
                })?;
                Ok(ParsedLine::Job { spec, plan })
            }
            Record::Control(ctl) => Ok(ParsedLine::Control(ctl)),
        }
    }
}

fn field_f64(record: &Json, key: &str, line: usize) -> Result<f64, RequestError> {
    record
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| RequestError::Schema {
            line,
            detail: format!("missing or non-numeric \"{key}\""),
        })
}

fn optional_f64(record: &Json, key: &str, default: f64, line: usize) -> Result<f64, RequestError> {
    match record.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| RequestError::Schema {
            line,
            detail: format!("\"{key}\" must be a number"),
        }),
    }
}

fn optional_f64_list(
    record: &Json,
    key: &str,
    line: usize,
) -> Result<Option<Vec<f64>>, RequestError> {
    let bad = || RequestError::Schema {
        line,
        detail: format!("\"{key}\" must be an array of numbers"),
    };
    match record.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(bad)?;
            items
                .iter()
                .map(|x| x.as_f64().ok_or_else(bad))
                .collect::<Result<Vec<f64>, _>>()
                .map(Some)
        }
    }
}

fn parse_geometry(record: &Json, line: usize) -> Result<ChipGeometry, RequestError> {
    let defaults = ChipGeometry::paper_1mm();
    let Some(g) = record.get("geometry") else {
        return Ok(defaults);
    };
    // A non-object "geometry" must be an error: Json::get on it would
    // return None for every field and silently serve the default die.
    if !matches!(g, Json::Object(_)) {
        return Err(RequestError::Schema {
            line,
            detail: "\"geometry\" must be an object".into(),
        });
    }
    Ok(ChipGeometry {
        width: optional_f64(g, "width", defaults.width, line)?,
        length: optional_f64(g, "length", defaults.length, line)?,
        thickness: optional_f64(g, "thickness", defaults.thickness, line)?,
        conductivity: optional_f64(g, "conductivity", defaults.conductivity, line)?,
        sink_temperature: optional_f64(g, "sink_k", defaults.sink_temperature, line)?,
    })
}

fn parse_floorplan(record: &Json, line: usize) -> Result<(String, Floorplan), RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let name = record
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("floorplan record needs a string \"name\"".into()))?
        .to_string();
    let geometry = parse_geometry(record, line)?;
    let plan = match (record.get("tiles"), record.get("blocks")) {
        (Some(tiles), None) => {
            let dim = |key: &str| -> Result<usize, RequestError> {
                tiles
                    .get(key)
                    .and_then(Json::as_usize)
                    .filter(|&n| n > 0)
                    .ok_or_else(|| RequestError::Schema {
                        line,
                        detail: format!("\"tiles\" needs a positive integer \"{key}\""),
                    })
            };
            let rows = dim("rows")?;
            let cols = dim("cols")?;
            let p_min = optional_f64(tiles, "p_min", 0.0, line)?;
            let p_max = optional_f64(tiles, "p_max", p_min, line)?;
            let seed = tiles
                .get("seed")
                .map(|s| {
                    s.as_usize().ok_or_else(|| RequestError::Schema {
                        line,
                        detail: "\"seed\" must be a non-negative integer".into(),
                    })
                })
                .transpose()?
                .unwrap_or(0) as u64;
            if !(0.0..=f64::INFINITY).contains(&p_min) || p_max < p_min {
                return Err(schema(
                    "\"tiles\" power range must satisfy 0 <= p_min <= p_max".into(),
                ));
            }
            generator::tiled(geometry, rows, cols, p_min, p_max, seed)
                .map_err(|error| RequestError::Floorplan { line, error })?
        }
        (None, Some(blocks)) => {
            let items = blocks
                .as_array()
                .ok_or_else(|| schema("\"blocks\" must be an array".into()))?;
            let parsed: Result<Vec<Block>, RequestError> = items
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let name = b
                        .get("name")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("blk-{i}"));
                    Ok(Block::new(
                        name,
                        field_f64(b, "cx", line)?,
                        field_f64(b, "cy", line)?,
                        field_f64(b, "w", line)?,
                        field_f64(b, "l", line)?,
                        optional_f64(b, "power", 0.0, line)?,
                    ))
                })
                .collect();
            Floorplan::new(geometry, parsed?)
                .map_err(|error| RequestError::Floorplan { line, error })?
        }
        _ => {
            return Err(schema(
                "floorplan record needs exactly one of \"tiles\" or \"blocks\"".into(),
            ))
        }
    };
    Ok((name, plan))
}

/// Parses the optional `"backend"` field, falling back to `default`
/// when the record is silent.
fn parse_backend(
    record: &Json,
    default: SweepBackend,
    line: usize,
) -> Result<SweepBackend, RequestError> {
    match record.get("backend").map(|b| b.as_str()) {
        None => Ok(default),
        Some(Some("auto")) => Ok(SweepBackend::Auto),
        Some(Some("dense")) => Ok(SweepBackend::Dense),
        Some(Some("spectral")) => Ok(SweepBackend::Spectral),
        Some(other) => Err(RequestError::Schema {
            line,
            detail: format!("unknown backend {other:?} (use \"auto\", \"dense\" or \"spectral\")"),
        }),
    }
}

/// Parses the optional `"deadline_ms"` field, falling back to
/// `default` when the record is silent.
fn parse_deadline(
    record: &Json,
    default: Option<u64>,
    line: usize,
) -> Result<Option<u64>, RequestError> {
    match record.get("deadline_ms") {
        None => Ok(default),
        Some(v) => Ok(Some(
            v.as_usize()
                .filter(|&ms| ms > 0)
                .map(|ms| ms as u64)
                .ok_or_else(|| RequestError::Schema {
                    line,
                    detail: "\"deadline_ms\" must be a positive integer of milliseconds".into(),
                })?,
        )),
    }
}

/// Parses the optional `"power"` / `"theta_k"` pair into a
/// [`PowerSpec`]. Unknown laws, a `theta_k` without `"power":
/// "biased"`, and a non-finite or non-positive θ are all typed
/// refusals — the core's defensive clamp never fires on fleet input.
fn parse_power(record: &Json, line: usize) -> Result<PowerSpec, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let power = match record.get("power").map(|p| p.as_str()) {
        None => None,
        Some(Some(name)) => Some(name),
        Some(None) => return Err(schema("\"power\" must be a string".into())),
    };
    match power {
        None | Some("scaled") => {
            if record.get("theta_k").is_some() {
                return Err(schema(
                    "\"theta_k\" only applies to the biased power law (add \"power\": \"biased\")"
                        .into(),
                ));
            }
            Ok(PowerSpec::Scaled)
        }
        Some("biased") => {
            let theta_k = optional_f64(record, "theta_k", DEFAULT_BIAS_THETA_K, line)?;
            if !theta_k.is_finite() || theta_k <= 0.0 {
                return Err(schema(format!(
                    "\"theta_k\" must be a finite positive bias temperature, got {theta_k}"
                )));
            }
            Ok(PowerSpec::Biased { theta_k })
        }
        Some(other) => Err(schema(format!(
            "unknown power law {other:?} (use \"scaled\" or \"biased\")"
        ))),
    }
}

fn parse_steady(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<SteadyJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let floorplan = record
        .get("floorplan")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("job needs a string \"floorplan\" reference".into()))?
        .to_string();
    if !exists(&floorplan) {
        return Err(schema(format!(
            "job references undefined floorplan {floorplan:?} (define it on an earlier line)"
        )));
    }
    let name = match record.get("name") {
        None => None,
        Some(n) => Some(
            n.as_str()
                .ok_or_else(|| schema("\"name\" must be a string".into()))?
                .to_string(),
        ),
    };
    Ok(SteadyJob {
        floorplan,
        name,
        power: parse_power(record, line)?,
        dynamic_w: field_f64(record, "dynamic_w", line)?,
        leakage_w: field_f64(record, "leakage_w", line)?,
        vdd_scales: optional_f64_list(record, "vdd_scales", line)?.unwrap_or_else(|| vec![1.0]),
        activities: optional_f64_list(record, "activities", line)?.unwrap_or_else(|| vec![1.0]),
        ambients_k: optional_f64_list(record, "ambients_k", line)?,
        backend: parse_backend(record, SweepBackend::Auto, line)?,
        deadline_ms: parse_deadline(record, None, line)?,
        v,
    })
}

/// Parses a `delta` record, resolving its `"base"` reference against
/// the named-steady registry and applying the record's overrides.
fn parse_delta(
    record: &Json,
    line: usize,
    steady_of: &dyn Fn(&str) -> Option<SteadyJob>,
    v: Option<u64>,
) -> Result<DeltaJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    // A delta runs on its base's floorplan and power law and cannot
    // itself be a base; refuse the fields loudly instead of silently
    // ignoring a plausible mistake.
    for (key, hint) in [
        ("floorplan", "delta jobs run on their base's floorplan"),
        ("power", "delta jobs inherit their base's power law"),
        ("theta_k", "delta jobs inherit their base's power law"),
        ("name", "delta jobs cannot be a base for further deltas"),
    ] {
        if record.get(key).is_some() {
            return Err(schema(format!(
                "\"{key}\" is not allowed on a delta job ({hint})"
            )));
        }
    }
    let base_name = record.get("base").and_then(Json::as_str).ok_or_else(|| {
        schema("delta job needs a string \"base\" naming an earlier named steady job".into())
    })?;
    let base = steady_of(base_name).ok_or_else(|| {
        schema(format!(
            "delta references undefined steady job {base_name:?} (give a steady job on an earlier line a \"name\")"
        ))
    })?;
    let job = SteadyJob {
        name: None,
        dynamic_w: optional_f64(record, "dynamic_w", base.dynamic_w, line)?,
        leakage_w: optional_f64(record, "leakage_w", base.leakage_w, line)?,
        vdd_scales: optional_f64_list(record, "vdd_scales", line)?
            .unwrap_or_else(|| base.vdd_scales.clone()),
        activities: optional_f64_list(record, "activities", line)?
            .unwrap_or_else(|| base.activities.clone()),
        ambients_k: optional_f64_list(record, "ambients_k", line)?
            .or_else(|| base.ambients_k.clone()),
        backend: parse_backend(record, base.backend, line)?,
        deadline_ms: parse_deadline(record, base.deadline_ms, line)?,
        v,
        ..base.clone()
    };
    Ok(DeltaJob { base, job })
}

/// Parses an `envelope` record: the steady fields plus the bisection
/// axis, interval and tolerance (validated here so a bad spec is a
/// parse-time refusal with a line number, not a worker-side error).
fn parse_envelope(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<EnvelopeJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let base = parse_steady(record, line, exists, v)?;
    if base.name.is_some() {
        return Err(schema(
            "only steady jobs may carry a \"name\" (delta bases are steady fixed points)".into(),
        ));
    }
    let axis = match record.get("axis").map(|a| a.as_str()) {
        Some(Some("vdd_scale")) => EnvelopeAxis::VddScale,
        Some(Some("activity")) => EnvelopeAxis::Activity,
        Some(Some("ambient_k")) => EnvelopeAxis::AmbientK,
        Some(other) => {
            return Err(schema(format!(
                "unknown envelope axis {other:?} (use \"vdd_scale\", \"activity\" or \"ambient_k\")"
            )))
        }
        None => {
            return Err(schema(
                "envelope job needs an \"axis\" (\"vdd_scale\", \"activity\" or \"ambient_k\")"
                    .into(),
            ))
        }
    };
    let lo = field_f64(record, "lo", line)?;
    let hi = field_f64(record, "hi", line)?;
    let tolerance = field_f64(record, "tolerance", line)?;
    for (key, value) in [("lo", lo), ("hi", hi), ("tolerance", tolerance)] {
        if !value.is_finite() {
            return Err(schema(format!("\"{key}\" must be finite, got {value}")));
        }
    }
    if lo > hi {
        return Err(schema(format!(
            "envelope interval is empty: lo {lo} > hi {hi}"
        )));
    }
    if tolerance <= 0.0 {
        return Err(schema(format!(
            "\"tolerance\" must be positive, got {tolerance}"
        )));
    }
    Ok(EnvelopeJob {
        base,
        axis,
        lo,
        hi,
        tolerance,
    })
}

fn parse_waveform(value: &Json, line: usize) -> Result<DriveWaveform, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    if value.as_str() == Some("step") {
        return Ok(DriveWaveform::Step);
    }
    if let Some(square) = value.get("square") {
        return Ok(DriveWaveform::SquareWave {
            frequency: field_f64(square, "frequency", line)?,
            duty: field_f64(square, "duty", line)?,
        });
    }
    if let Some(trace) = value.get("trace") {
        let times = optional_f64_list(trace, "times", line)?
            .ok_or_else(|| schema("\"trace\" needs a \"times\" array".into()))?;
        let scales = optional_f64_list(trace, "scales", line)?
            .ok_or_else(|| schema("\"trace\" needs a \"scales\" array".into()))?;
        return Ok(DriveWaveform::Trace { times, scales });
    }
    Err(schema(
        "waveform must be \"step\", {\"square\": ...} or {\"trace\": ...}".into(),
    ))
}

fn parse_transient(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<TransientJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let base = parse_steady(record, line, exists, v)?;
    if base.name.is_some() {
        return Err(schema(
            "only steady jobs may carry a \"name\" (delta bases are steady fixed points)".into(),
        ));
    }
    let dt_s = field_f64(record, "dt_s", line)?;
    let steps = record
        .get("steps")
        .and_then(Json::as_usize)
        .filter(|&n| n > 0)
        .ok_or_else(|| schema("transient job needs a positive integer \"steps\"".into()))?;
    let scheme = match record.get("scheme").map(|s| s.as_str()) {
        None => ImplicitScheme::Trapezoidal,
        Some(Some("trapezoidal")) => ImplicitScheme::Trapezoidal,
        Some(Some("backward_euler")) => ImplicitScheme::BackwardEuler,
        Some(other) => {
            return Err(schema(format!(
                "unknown scheme {other:?} (use \"trapezoidal\" or \"backward_euler\")"
            )))
        }
    };
    let waveforms = match record.get("waveforms") {
        None => Vec::new(),
        Some(list) => list
            .as_array()
            .ok_or_else(|| schema("\"waveforms\" must be an array".into()))?
            .iter()
            .map(|w| parse_waveform(w, line))
            .collect::<Result<Vec<_>, _>>()?,
    };
    // Waveform invariants are checked here so a bad record is refused at
    // parse time with its line number, not deep inside a worker.
    for w in &waveforms {
        w.validate()
            .map_err(|detail| schema(format!("invalid waveform: {detail}")))?;
    }
    Ok(TransientJob {
        base,
        dt_s,
        steps,
        scheme,
        waveforms,
    })
}

/// Upper bound on `nx · ny` of one map job. The operator's resident
/// cost is 8 spectrum planes of `mx·my` f64 (≤ 16·nx·ny elements each
/// when torus padding doubles both axes), plus a transient extended
/// kernel table of `(2k+2)²·nx·ny` entries during assembly — ~1.8 kB
/// per tile worst case. 2¹⁸ tiles (a 512×512 map) therefore caps a
/// hostile request line at under half a GB peak while leaving every
/// realistic hotspot-localization grid comfortably legal.
const MAX_MAP_TILES: usize = 1 << 18;

fn parse_map(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<MapJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let base = parse_steady(record, line, exists, v)?;
    if base.name.is_some() {
        return Err(schema(
            "only steady jobs may carry a \"name\" (delta bases are steady fixed points)".into(),
        ));
    }
    let grid = record
        .get("grid")
        .ok_or_else(|| schema("map job needs a \"grid\" object".into()))?;
    if !matches!(grid, Json::Object(_)) {
        return Err(schema("\"grid\" must be an object".into()));
    }
    let dim = |key: &str| -> Result<usize, RequestError> {
        grid.get(key)
            .and_then(Json::as_usize)
            .filter(|&n| n > 0)
            .ok_or_else(|| RequestError::Schema {
                line,
                detail: format!("\"grid\" needs a positive integer \"{key}\""),
            })
    };
    let nx = dim("nx")?;
    let ny = dim("ny")?;
    if nx.saturating_mul(ny) > MAX_MAP_TILES {
        return Err(schema(format!(
            "map grid {nx}x{ny} exceeds the {MAX_MAP_TILES}-tile bound"
        )));
    }
    Ok(MapJob { base, nx, ny })
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQUEST: &str = r#"
# a fleet request
{"type": "floorplan", "name": "tiny", "tiles": {"rows": 2, "cols": 2, "p_min": 0.02, "p_max": 0.05, "seed": 7}}
{"type": "floorplan", "name": "custom", "blocks": [{"name": "a", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.2e-3, "l": 0.2e-3, "power": 0.1}]}

{"type": "steady", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0], "ambients_k": [300, 340]}
{"type": "transient", "floorplan": "custom", "dynamic_w": 0.2, "leakage_w": 0.02, "dt_s": 1e-4, "steps": 50, "scheme": "backward_euler", "waveforms": ["step", {"square": {"frequency": 3, "duty": 0.5}}]}
{"type": "map", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "grid": {"nx": 32, "ny": 24}}
"#;

    #[test]
    fn parses_a_full_request() {
        let req = parse_jsonl(REQUEST).unwrap();
        assert_eq!(req.floorplans.len(), 2);
        assert_eq!(req.floorplans[0].1.blocks().len(), 4);
        assert_eq!(req.jobs.len(), 3);
        let JobSpec::Steady(s) = &req.jobs[0] else {
            panic!("steady")
        };
        assert_eq!(s.vdd_scales, vec![0.9, 1.0]);
        assert_eq!(s.ambients_k, Some(vec![300.0, 340.0]));
        assert_eq!(s.activities, vec![1.0]); // default
        let JobSpec::Transient(t) = &req.jobs[1] else {
            panic!("transient")
        };
        assert_eq!(t.scheme, ImplicitScheme::BackwardEuler);
        assert_eq!(t.waveforms.len(), 2);
        assert_eq!(t.base.floorplan, "custom");
        let JobSpec::Map(m) = &req.jobs[2] else {
            panic!("map")
        };
        assert_eq!((m.nx, m.ny), (32, 24));
        assert_eq!(m.base.floorplan, "tiny");
        assert_eq!(req.jobs[2].kind(), "map");
    }

    #[test]
    fn tiled_floorplans_are_reproducible() {
        let req = parse_jsonl(REQUEST).unwrap();
        let again = parse_jsonl(REQUEST).unwrap();
        assert_eq!(
            req.floorplans[0].1.fingerprint(),
            again.floorplans[0].1.fingerprint()
        );
    }

    #[test]
    fn undefined_floorplan_is_a_schema_error_with_line() {
        let err = parse_jsonl(
            r#"{"type": "steady", "floorplan": "ghost", "dynamic_w": 1, "leakage_w": 0.1}"#,
        )
        .unwrap_err();
        let RequestError::Schema { line, detail } = err else {
            panic!("schema error")
        };
        assert_eq!(line, 1);
        assert!(detail.contains("ghost"));
    }

    #[test]
    fn malformed_json_reports_the_line() {
        let err = parse_jsonl("\n\n{not json}").unwrap_err();
        assert!(matches!(err, RequestError::Json { line: 3, .. }));
    }

    #[test]
    fn duplicate_and_overlapping_floorplans_are_rejected() {
        let dup = r#"
{"type": "floorplan", "name": "x", "tiles": {"rows": 1, "cols": 1}}
{"type": "floorplan", "name": "x", "tiles": {"rows": 2, "cols": 2}}
"#;
        assert!(matches!(
            parse_jsonl(dup),
            Err(RequestError::Schema { line: 3, .. })
        ));
        let overlap = r#"{"type": "floorplan", "name": "bad", "blocks": [
{"cx": 0.5e-3, "cy": 0.5e-3, "w": 0.4e-3, "l": 0.4e-3}, {"cx": 0.5e-3, "cy": 0.5e-3, "w": 0.4e-3, "l": 0.4e-3}]}"#;
        // (single line in practice; keep it one line for the test)
        let overlap = overlap.replace('\n', " ");
        assert!(matches!(
            parse_jsonl(&overlap),
            Err(RequestError::Floorplan { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_waveforms_fail_at_parse_time() {
        let bad = r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "transient", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01, "dt_s": 1e-4, "steps": 5, "waveforms": [{"square": {"frequency": -1, "duty": 0.5}}]}
"#;
        let err = parse_jsonl(bad).unwrap_err();
        let RequestError::Schema { line: 3, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("frequency"));
    }

    #[test]
    fn non_object_geometry_is_rejected_not_defaulted() {
        // Regression: a mistyped "geometry" used to be silently replaced
        // by the default 1 mm die.
        let err = parse_jsonl(
            r#"{"type": "floorplan", "name": "x", "geometry": "2mm", "tiles": {"rows": 1, "cols": 1}}"#,
        )
        .unwrap_err();
        let RequestError::Schema { line: 1, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("geometry"));
    }

    #[test]
    fn zero_steps_transient_is_rejected() {
        let bad = r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "transient", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01, "dt_s": 1e-4, "steps": 0}
"#;
        let err = parse_jsonl(bad).unwrap_err();
        let RequestError::Schema { line: 3, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("steps"));
    }

    #[test]
    fn unknown_record_type_is_rejected() {
        let err = parse_jsonl(r#"{"type": "mystery"}"#).unwrap_err();
        assert!(matches!(err, RequestError::Schema { line: 1, .. }));
    }

    #[test]
    fn explicit_protocol_version_is_accepted_and_recorded() {
        let req = parse_jsonl(
            r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "steady", "v": 1, "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
{"type": "steady", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
"#,
        )
        .unwrap();
        assert_eq!(req.jobs[0].version(), Some(PROTOCOL_VERSION));
        // A version-silent line stays silent — its result line must not
        // grow a "v" field.
        assert_eq!(req.jobs[1].version(), None);
    }

    #[test]
    fn unknown_protocol_version_is_a_typed_refusal() {
        let err = parse_jsonl(
            r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "steady", "v": 2, "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RequestError::Version {
                line: 3,
                requested: 2
            }
        );
        assert!(err.to_string().contains("unsupported protocol version 2"));
        // A mistyped "v" is a schema error, not a version refusal.
        let err = parse_jsonl(r#"{"type": "stats", "v": "one"}"#).unwrap_err();
        assert!(matches!(err, RequestError::Schema { line: 1, .. }));
    }

    #[test]
    fn control_records_are_refused_in_batch_mode() {
        for kind in ["stats", "shutdown"] {
            let err = parse_jsonl(&format!(r#"{{"type": "{kind}"}}"#)).unwrap_err();
            let RequestError::Schema { line: 1, detail } = err else {
                panic!("schema error, got {err:?}")
            };
            assert!(detail.contains(kind), "{detail}");
            assert!(detail.contains("serve-mode"), "{detail}");
        }
    }

    #[test]
    fn streaming_parser_interleaves_definitions_and_jobs() {
        let mut parser = RequestParser::new();
        assert!(matches!(parser.parse_line(""), Ok(ParsedLine::Empty)));
        assert!(matches!(
            parser.parse_line("# comment"),
            Ok(ParsedLine::Empty)
        ));
        let defined = parser
            .parse_line(r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.02, "seed": 1}}"#)
            .unwrap();
        assert!(matches!(defined, ParsedLine::Floorplan(name) if name == "f"));
        let job = parser
            .parse_line(
                r#"{"type": "steady", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}"#,
            )
            .unwrap();
        let ParsedLine::Job { spec, plan } = job else {
            panic!("job line")
        };
        assert_eq!(spec.kind(), "steady");
        // The resolved handle is the registered floorplan itself.
        assert!(Arc::ptr_eq(&plan, parser.floorplan("f").unwrap()));
        assert!(matches!(
            parser.parse_line(r#"{"type": "stats"}"#),
            Ok(ParsedLine::Control(ControlRecord::Stats))
        ));
        assert!(matches!(
            parser.parse_line(r#"{"type": "shutdown"}"#),
            Ok(ParsedLine::Control(ControlRecord::Shutdown))
        ));
        assert_eq!(parser.lines_seen(), 6);
    }

    #[test]
    fn streaming_parser_survives_refused_lines() {
        let mut parser = RequestParser::new();
        // Line 1: bad JSON. Line 2: unknown floorplan. Line 3: bad
        // version. Each refusal names its own line, and the parser
        // keeps accepting afterwards.
        assert!(matches!(
            parser.parse_line("{oops"),
            Err(RequestError::Json { line: 1, .. })
        ));
        assert!(matches!(
            parser.parse_line(
                r#"{"type": "steady", "floorplan": "ghost", "dynamic_w": 1, "leakage_w": 0.1}"#
            ),
            Err(RequestError::Schema { line: 2, .. })
        ));
        assert!(matches!(
            parser.parse_line(r#"{"type": "stats", "v": 99}"#),
            Err(RequestError::Version {
                line: 3,
                requested: 99
            })
        ));
        assert!(matches!(
            parser.parse_line(
                r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#
            ),
            Ok(ParsedLine::Floorplan(_))
        ));
        // Registries are per-parser: a fresh connection cannot see "f".
        let mut other = RequestParser::new();
        assert!(matches!(
            other.parse_line(
                r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1}"#
            ),
            Err(RequestError::Schema { line: 1, .. })
        ));
    }

    const DELTA_REQUEST: &str = r#"
{"type": "floorplan", "name": "tiny", "tiles": {"rows": 2, "cols": 2, "p_min": 0.02, "p_max": 0.05, "seed": 7}}
{"type": "steady", "floorplan": "tiny", "name": "nominal", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0], "ambients_k": [300, 340]}
{"type": "delta", "base": "nominal", "vdd_scales": [0.95, 1.05], "deadline_ms": 500}
{"type": "envelope", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "activities": [0.5, 1.0], "axis": "vdd_scale", "lo": 0.5, "hi": 3.0, "tolerance": 0.01}
{"type": "steady", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "power": "biased", "theta_k": 60}
"#;

    #[test]
    fn parses_named_steady_delta_and_envelope_records() {
        let req = parse_jsonl(DELTA_REQUEST).unwrap();
        assert_eq!(req.jobs.len(), 4);
        let JobSpec::Steady(base) = &req.jobs[0] else {
            panic!("steady")
        };
        assert_eq!(base.name.as_deref(), Some("nominal"));
        assert_eq!(base.power, PowerSpec::Scaled);
        let JobSpec::Delta(delta) = &req.jobs[1] else {
            panic!("delta")
        };
        // The base resolved at parse time, self-contained.
        assert_eq!(&delta.base, base);
        // Overrides applied; everything else inherited; the delta's
        // own job carries no name.
        assert_eq!(delta.job.vdd_scales, vec![0.95, 1.05]);
        assert_eq!(delta.job.ambients_k, base.ambients_k);
        assert_eq!(delta.job.dynamic_w, base.dynamic_w);
        assert_eq!(delta.job.deadline_ms, Some(500));
        assert_eq!(delta.job.name, None);
        assert_eq!(req.jobs[1].kind(), "delta");
        assert_eq!(req.jobs[1].floorplan(), "tiny");
        let JobSpec::Envelope(env) = &req.jobs[2] else {
            panic!("envelope")
        };
        assert_eq!(env.axis, EnvelopeAxis::VddScale);
        assert_eq!((env.lo, env.hi, env.tolerance), (0.5, 3.0, 0.01));
        assert_eq!(env.base.activities, vec![0.5, 1.0]);
        assert_eq!(req.jobs[2].kind(), "envelope");
        let JobSpec::Steady(biased) = &req.jobs[3] else {
            panic!("steady")
        };
        assert_eq!(biased.power, PowerSpec::Biased { theta_k: 60.0 });
    }

    #[test]
    fn dangling_delta_base_is_a_typed_refusal() {
        let err = parse_jsonl(
            r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "delta", "base": "ghost"}
"#,
        )
        .unwrap_err();
        let RequestError::Schema { line: 3, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("ghost"), "{detail}");
        assert!(detail.contains("name"), "{detail}");
    }

    #[test]
    fn delta_refuses_floorplan_power_and_name_fields() {
        let prefix = concat!(
            r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#,
            "\n",
            r#"{"type": "steady", "floorplan": "f", "name": "b", "dynamic_w": 1, "leakage_w": 0.1}"#,
        );
        for (field, value) in [
            ("floorplan", "\"f\""),
            ("power", "\"biased\""),
            ("theta_k", "60"),
            ("name", "\"d\""),
        ] {
            let bad =
                format!("{prefix}\n{{\"type\": \"delta\", \"base\": \"b\", \"{field}\": {value}}}");
            let err = parse_jsonl(&bad).unwrap_err();
            let RequestError::Schema { line: 3, detail } = err else {
                panic!("schema error for {field}, got {err:?}")
            };
            assert!(detail.contains(field), "{detail}");
        }
    }

    #[test]
    fn steady_names_are_unique_and_steady_only() {
        // Duplicate names collide like duplicate floorplans.
        let dup = r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "steady", "floorplan": "f", "name": "x", "dynamic_w": 1, "leakage_w": 0.1}
{"type": "steady", "floorplan": "f", "name": "x", "dynamic_w": 2, "leakage_w": 0.2}
"#;
        assert!(matches!(
            parse_jsonl(dup),
            Err(RequestError::Schema { line: 4, .. })
        ));
        // A name on a transient/map/envelope record would never
        // register — refused, not silently dropped.
        for suffix in [
            r#"{"type": "transient", "floorplan": "f", "name": "t", "dynamic_w": 1, "leakage_w": 0.1, "dt_s": 1e-4, "steps": 5}"#,
            r#"{"type": "map", "floorplan": "f", "name": "m", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 4, "ny": 4}}"#,
            r#"{"type": "envelope", "floorplan": "f", "name": "e", "dynamic_w": 1, "leakage_w": 0.1, "axis": "vdd_scale", "lo": 0.5, "hi": 2.0, "tolerance": 0.1}"#,
        ] {
            let bad = format!(
                "{}\n{suffix}",
                r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#
            );
            let err = parse_jsonl(&bad).unwrap_err();
            let RequestError::Schema { line: 2, detail } = err else {
                panic!("schema error, got {err:?}")
            };
            assert!(detail.contains("steady"), "{detail}");
        }
    }

    #[test]
    fn power_law_validation_is_typed() {
        let prefix = r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#;
        let detail_of = |suffix: &str| -> String {
            let err = parse_jsonl(&format!("{prefix}\n{suffix}")).unwrap_err();
            let RequestError::Schema { line: 2, detail } = err else {
                panic!("schema error on line 2, got {err:?}")
            };
            detail
        };
        // Unknown law.
        assert!(detail_of(
            r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "power": "cubic"}"#
        )
        .contains("cubic"));
        // θ without the biased law.
        assert!(detail_of(
            r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "theta_k": 60}"#
        )
        .contains("biased"));
        // Non-positive θ.
        assert!(detail_of(
            r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "power": "biased", "theta_k": -5}"#
        )
        .contains("theta_k"));
        // Default θ when the biased law is silent about it.
        let req = parse_jsonl(&format!(
            "{prefix}\n{}",
            r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "power": "biased"}"#
        ))
        .unwrap();
        let JobSpec::Steady(s) = &req.jobs[0] else {
            panic!("steady")
        };
        assert_eq!(
            s.power,
            PowerSpec::Biased {
                theta_k: DEFAULT_BIAS_THETA_K
            }
        );
    }

    #[test]
    fn envelope_jobs_validate_axis_interval_and_tolerance() {
        let prefix = r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#;
        let detail_of = |suffix: &str| -> String {
            let err = parse_jsonl(&format!("{prefix}\n{suffix}")).unwrap_err();
            let RequestError::Schema { line: 2, detail } = err else {
                panic!("schema error on line 2, got {err:?}")
            };
            detail
        };
        assert!(detail_of(
            r#"{"type": "envelope", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "lo": 0.5, "hi": 2.0, "tolerance": 0.1}"#
        )
        .contains("axis"));
        assert!(detail_of(
            r#"{"type": "envelope", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "axis": "frequency", "lo": 0.5, "hi": 2.0, "tolerance": 0.1}"#
        )
        .contains("frequency"));
        assert!(detail_of(
            r#"{"type": "envelope", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "axis": "vdd_scale", "hi": 2.0, "tolerance": 0.1}"#
        )
        .contains("lo"));
        assert!(detail_of(
            r#"{"type": "envelope", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "axis": "vdd_scale", "lo": 3.0, "hi": 2.0, "tolerance": 0.1}"#
        )
        .contains("empty"));
        assert!(detail_of(
            r#"{"type": "envelope", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "axis": "vdd_scale", "lo": 0.5, "hi": 2.0, "tolerance": 0}"#
        )
        .contains("tolerance"));
    }

    #[test]
    fn streaming_parser_resolves_delta_bases_per_connection() {
        let mut parser = RequestParser::new();
        parser
            .parse_line(r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#)
            .unwrap();
        parser
            .parse_line(
                r#"{"type": "steady", "floorplan": "f", "name": "b", "dynamic_w": 1, "leakage_w": 0.1}"#,
            )
            .unwrap();
        let ParsedLine::Job { spec, .. } = parser
            .parse_line(r#"{"type": "delta", "base": "b", "dynamic_w": 1.1}"#)
            .unwrap()
        else {
            panic!("job line")
        };
        let JobSpec::Delta(delta) = *spec else {
            panic!("delta")
        };
        assert_eq!(delta.job.dynamic_w, 1.1);
        assert_eq!(delta.base.dynamic_w, 1.0);
        // Registries are per-connection, mirroring floorplans.
        let mut other = RequestParser::new();
        assert!(matches!(
            other.parse_line(r#"{"type": "delta", "base": "b"}"#),
            Err(RequestError::Schema { line: 1, .. })
        ));
    }

    #[test]
    fn result_fingerprint_keys_on_physics_not_labels() {
        let req = parse_jsonl(DELTA_REQUEST).unwrap();
        let JobSpec::Steady(base) = &req.jobs[0] else {
            panic!("steady")
        };
        let key = steady_result_fingerprint(base, 0x1234, false);
        // Stable across calls.
        assert_eq!(key, steady_result_fingerprint(base, 0x1234, false));
        // Labels and scheduling knobs are excluded...
        let mut renamed = base.clone();
        renamed.name = Some("other".into());
        renamed.deadline_ms = Some(17);
        renamed.v = Some(PROTOCOL_VERSION);
        renamed.floorplan = "alias".into();
        assert_eq!(key, steady_result_fingerprint(&renamed, 0x1234, false));
        // ...while every physical input is included.
        let mut hotter = base.clone();
        hotter.dynamic_w += 0.1;
        assert_ne!(key, steady_result_fingerprint(&hotter, 0x1234, false));
        let mut biased = base.clone();
        biased.power = PowerSpec::Biased { theta_k: 100.0 };
        assert_ne!(key, steady_result_fingerprint(&biased, 0x1234, false));
        let mut axes = base.clone();
        axes.vdd_scales.push(1.2);
        assert_ne!(key, steady_result_fingerprint(&axes, 0x1234, false));
        let mut sink = base.clone();
        sink.ambients_k = None;
        assert_ne!(key, steady_result_fingerprint(&sink, 0x1234, false));
        assert_ne!(key, steady_result_fingerprint(base, 0x5678, false));
        assert_ne!(key, steady_result_fingerprint(base, 0x1234, true));
    }

    #[test]
    fn map_jobs_validate_their_grid() {
        let prefix = r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#;
        let detail_of = |suffix: &str| -> String {
            let err = parse_jsonl(&format!("{prefix}\n{suffix}")).unwrap_err();
            let RequestError::Schema { line: 2, detail } = err else {
                panic!("schema error on line 2, got {err:?}")
            };
            detail
        };
        // Missing, mistyped and non-positive grids all fail with their
        // own diagnostic.
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1}"#
        )
        .contains("grid"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": "big"}"#
        )
        .contains("must be an object"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 0, "ny": 4}}"#
        )
        .contains("nx"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 8}}"#
        )
        .contains("ny"));
        // The tile bound refuses hostile allocations at parse time.
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 100000, "ny": 100000}}"#
        )
        .contains("bound"));
    }
}
