//! The fleet's line-delimited JSON job protocol.
//!
//! One request is a stream of JSONL records, one JSON object per line
//! (blank lines and `#`-prefixed comment lines are skipped). Records
//! are discriminated by their `"type"` field:
//!
//! * `floorplan` — registers a named floorplan, either generated
//!   (`"tiles": {"rows", "cols", "p_min", "p_max", "seed"}`) or
//!   explicit (`"blocks": [{"name", "cx", "cy", "w", "l", "power"}]`),
//!   with an optional `"geometry"` object (`width`, `length`,
//!   `thickness`, `conductivity`, `sink_k`; defaults: the paper's 1 mm
//!   die). Floorplans must be defined before any job references them.
//! * `steady` — a steady-state sweep job: `"floorplan"` (name),
//!   `"dynamic_w"`/`"leakage_w"` chip budgets, and optional axes
//!   `"vdd_scales"`, `"activities"`, `"ambients_k"`.
//! * `transient` — a transient job: the steady fields plus `"dt_s"`,
//!   `"steps"`, optional `"scheme"` (`"trapezoidal"` default, or
//!   `"backward_euler"`) and `"waveforms"` (list of `"step"`,
//!   `{"square": {"frequency", "duty"}}` or
//!   `{"trace": {"times": [...], "scales": [...]}}`).
//! * `map` — a high-resolution spatial map job: the steady fields plus
//!   `"grid": {"nx", "ny"}` (positive tile counts, product bounded so a
//!   hostile request cannot allocate unbounded kernels). Each converged
//!   scenario renders an `nx × ny` FFT temperature map.
//!
//! Every record may carry an optional `"v"` protocol-version field
//! (default [`PROTOCOL_VERSION`]). Lines requesting an unknown version
//! are refused with a typed [`RequestError::Version`]; job result
//! lines echo `"v"` back **only when the request line carried it
//! explicitly**, so version-silent clients see byte-stable output.
//!
//! Serve mode additionally accepts two **control records**:
//! `{"type": "stats"}` (one stats line back on the requesting
//! connection) and `{"type": "shutdown"}` (graceful drain); batch mode
//! refuses them, since a file has no connection to answer on.
//!
//! The full schema with examples is documented in
//! `docs/ARCHITECTURE.md`. Everything parses into typed specs here;
//! malformed input is a [`RequestError`] naming the offending line —
//! never a panic inside a fleet worker.

use crate::json::{Json, JsonError};
use ptherm_core::cosim::{DriveWaveform, SweepBackend};
use ptherm_floorplan::{generator, Block, BuildFloorplanError, ChipGeometry, Floorplan};
use ptherm_math::ode::ImplicitScheme;
use std::fmt;
use std::sync::Arc;

/// The protocol version this build speaks. Request lines may pin it
/// with `"v": 1`; any other value is a typed per-line refusal
/// ([`RequestError::Version`]), so old clients fail loudly against a
/// future incompatible server instead of silently misparsing.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parse/validation failure, pinned to a 1-based request line.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestError {
    /// The line is not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Parser diagnosis.
        error: JsonError,
    },
    /// The line is valid JSON but not a valid record.
    Schema {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        detail: String,
    },
    /// A floorplan record failed geometric validation.
    Floorplan {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        error: BuildFloorplanError,
    },
    /// The line requested a protocol version this build does not speak.
    Version {
        /// 1-based line number.
        line: usize,
        /// The unsupported version the line asked for.
        requested: u64,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Json { line, error } => write!(f, "line {line}: {error}"),
            RequestError::Schema { line, detail } => write!(f, "line {line}: {detail}"),
            RequestError::Floorplan { line, error } => {
                write!(f, "line {line}: invalid floorplan: {error}")
            }
            RequestError::Version { line, requested } => write!(
                f,
                "line {line}: unsupported protocol version {requested} (this build speaks {PROTOCOL_VERSION})"
            ),
        }
    }
}

impl std::error::Error for RequestError {}

/// A steady-state sweep job.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyJob {
    /// Name of a previously defined floorplan.
    pub floorplan: String,
    /// Chip dynamic-power budget at activity 1 / nominal Vdd, W.
    pub dynamic_w: f64,
    /// Chip leakage budget at `T_ref` / nominal Vdd, W.
    pub leakage_w: f64,
    /// Supply-scale axis (default `[1.0]`).
    pub vdd_scales: Vec<f64>,
    /// Activity axis (default `[1.0]`).
    pub activities: Vec<f64>,
    /// Ambient axis, K; `None` = the floorplan's sink temperature.
    pub ambients_k: Option<Vec<f64>>,
    /// Requested sweep backend (`"auto"` unless the record says
    /// otherwise). Only steady jobs honour it — map and transient jobs
    /// always run the dense operator.
    pub backend: SweepBackend,
    /// Optional per-job wall-clock budget, ms. When the budget runs
    /// out mid-solve the job retires cooperatively with a typed
    /// deadline-exceeded error carrying its partial-progress stats —
    /// no thread is ever killed. `None` = unbounded.
    pub deadline_ms: Option<u64>,
    /// The protocol version the request line pinned explicitly, if
    /// any. `Some` makes the result line echo `"v"` back; `None`
    /// (version-silent, the common case) keeps the line byte-stable
    /// with pre-versioning output.
    pub v: Option<u64>,
}

/// A transient (time-stepped) job.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientJob {
    /// The steady-state fields (floorplan, budgets, scenario axes).
    pub base: SteadyJob,
    /// Time step, s.
    pub dt_s: f64,
    /// Step count.
    pub steps: usize,
    /// Implicit scheme.
    pub scheme: ImplicitScheme,
    /// Drive waveforms (empty = single step drive).
    pub waveforms: Vec<DriveWaveform>,
}

/// A high-resolution spatial map job.
#[derive(Debug, Clone, PartialEq)]
pub struct MapJob {
    /// The steady-state fields (floorplan, budgets, scenario axes).
    pub base: SteadyJob,
    /// Map grid width in tiles.
    pub nx: usize,
    /// Map grid height in tiles.
    pub ny: usize,
}

/// One job of a fleet request.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Steady-state sweep.
    Steady(SteadyJob),
    /// Implicit transient.
    Transient(TransientJob),
    /// High-resolution spatial map sweep.
    Map(MapJob),
}

impl JobSpec {
    /// The referenced floorplan name.
    pub fn floorplan(&self) -> &str {
        match self {
            JobSpec::Steady(j) => &j.floorplan,
            JobSpec::Transient(j) => &j.base.floorplan,
            JobSpec::Map(j) => &j.base.floorplan,
        }
    }

    /// Short kind tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Steady(_) => "steady",
            JobSpec::Transient(_) => "transient",
            JobSpec::Map(_) => "map",
        }
    }

    /// The job's wall-clock budget, ms, if one was requested.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            JobSpec::Steady(j) => j.deadline_ms,
            JobSpec::Transient(j) => j.base.deadline_ms,
            JobSpec::Map(j) => j.base.deadline_ms,
        }
    }

    /// The protocol version the request line pinned explicitly, if any
    /// (see [`SteadyJob::v`]).
    pub fn version(&self) -> Option<u64> {
        match self {
            JobSpec::Steady(j) => j.v,
            JobSpec::Transient(j) => j.base.v,
            JobSpec::Map(j) => j.base.v,
        }
    }
}

/// A parsed request: named floorplans (in definition order) and jobs
/// (in submission order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetRequest {
    /// Defined floorplans.
    pub floorplans: Vec<(String, Floorplan)>,
    /// Submitted jobs.
    pub jobs: Vec<JobSpec>,
}

/// A serve-mode control record (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlRecord {
    /// `{"type": "stats"}` — answer with one stats line on the
    /// requesting connection.
    Stats,
    /// `{"type": "shutdown"}` — begin a graceful drain: refuse new
    /// admissions, finish queued and in-flight jobs, then exit.
    Shutdown,
}

impl ControlRecord {
    /// The record's `"type"` tag.
    pub fn name(self) -> &'static str {
        match self {
            ControlRecord::Stats => "stats",
            ControlRecord::Shutdown => "shutdown",
        }
    }
}

/// One classified request line: what both the batch parser and the
/// serve-mode [`RequestParser`] produce per JSONL record.
#[derive(Debug, Clone, PartialEq)]
enum Record {
    /// A floorplan definition.
    Floorplan(String, Floorplan),
    /// A job spec (with the pinned protocol version, if any, inside).
    Job(JobSpec),
    /// A serve-mode control record.
    Control(ControlRecord),
}

/// Validates the optional `"v"` field: absent or
/// [`PROTOCOL_VERSION`] is fine, a non-integer is a schema error, any
/// other integer is a typed version refusal. Returns the explicitly
/// pinned version, if any.
fn validate_version(record: &Json, line: usize) -> Result<Option<u64>, RequestError> {
    match record.get("v") {
        None => Ok(None),
        Some(v) => {
            let requested = v.as_usize().ok_or_else(|| RequestError::Schema {
                line,
                detail: "\"v\" must be a non-negative integer protocol version".into(),
            })? as u64;
            if requested != PROTOCOL_VERSION {
                return Err(RequestError::Version { line, requested });
            }
            Ok(Some(requested))
        }
    }
}

/// Classifies one parsed JSON record. `exists` answers whether a
/// floorplan name has been defined earlier in this request/connection.
fn classify_record(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
) -> Result<Record, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let v = validate_version(record, line)?;
    let kind = record
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("record needs a string \"type\" field".into()))?;
    match kind {
        "floorplan" => {
            let (name, plan) = parse_floorplan(record, line)?;
            Ok(Record::Floorplan(name, plan))
        }
        "steady" => Ok(Record::Job(JobSpec::Steady(parse_steady(
            record, line, exists, v,
        )?))),
        "transient" => Ok(Record::Job(JobSpec::Transient(parse_transient(
            record, line, exists, v,
        )?))),
        "map" => Ok(Record::Job(JobSpec::Map(parse_map(
            record, line, exists, v,
        )?))),
        "stats" => Ok(Record::Control(ControlRecord::Stats)),
        "shutdown" => Ok(Record::Control(ControlRecord::Shutdown)),
        other => Err(schema(format!("unknown record type {other:?}"))),
    }
}

/// Parses a whole JSONL request (see the [module docs](self)).
///
/// Control records (`stats` / `shutdown`) are refused here: they only
/// make sense on a live serve-mode connection.
///
/// # Errors
///
/// The first offending line as a [`RequestError`].
pub fn parse_jsonl(text: &str) -> Result<FleetRequest, RequestError> {
    let mut request = FleetRequest::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let record = Json::parse(trimmed).map_err(|error| RequestError::Json { line, error })?;
        let exists = |name: &str| request.floorplans.iter().any(|(n, _)| n == name);
        match classify_record(&record, line, &exists)? {
            Record::Floorplan(name, plan) => {
                if request.floorplans.iter().any(|(n, _)| *n == name) {
                    return Err(RequestError::Schema {
                        line,
                        detail: format!("floorplan {name:?} defined twice"),
                    });
                }
                request.floorplans.push((name, plan));
            }
            Record::Job(spec) => request.jobs.push(spec),
            Record::Control(ctl) => {
                return Err(RequestError::Schema {
                    line,
                    detail: format!(
                        "control record \"{}\" is only valid on a serve-mode connection",
                        ctl.name()
                    ),
                })
            }
        }
    }
    Ok(request)
}

/// One line's outcome from the streaming [`RequestParser`].
#[derive(Debug, Clone)]
pub enum ParsedLine {
    /// Blank or comment line — nothing to do.
    Empty,
    /// A floorplan was defined and registered under this name.
    Floorplan(String),
    /// A job, with its floorplan resolved **at admission time** against
    /// this parser's registry. Carrying the resolved handle (rather
    /// than re-resolving by name at run time) is what makes serve-mode
    /// results independent of later floorplan definitions on other
    /// connections — and therefore bitwise identical to batch mode.
    Job {
        /// The parsed job spec.
        spec: JobSpec,
        /// The referenced floorplan, resolved on this connection.
        plan: Arc<Floorplan>,
    },
    /// A serve-mode control record.
    Control(ControlRecord),
}

/// Incremental per-connection parser for serve mode.
///
/// Unlike [`parse_jsonl`] (whole request, first-error refusal), a
/// `RequestParser` consumes one line at a time and keeps the
/// connection's floorplan registry across lines, so a long-lived
/// client can interleave definitions and jobs. Errors are per-line:
/// the caller reports the refusal and keeps the connection open.
///
/// Each connection gets its own parser; floorplans defined on one
/// connection are invisible to every other, which keeps result lines
/// free of cross-client interference.
#[derive(Debug, Default)]
pub struct RequestParser {
    floorplans: Vec<(String, Arc<Floorplan>)>,
    line: usize,
}

impl RequestParser {
    /// A parser with an empty floorplan registry, at line 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lines consumed so far (including blank/comment/refused lines).
    pub fn lines_seen(&self) -> usize {
        self.line
    }

    /// Looks up a floorplan defined earlier on this connection.
    pub fn floorplan(&self, name: &str) -> Option<&Arc<Floorplan>> {
        self.floorplans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, plan)| plan)
    }

    /// Consumes one raw request line.
    ///
    /// # Errors
    ///
    /// A [`RequestError`] pinned to this connection's 1-based line
    /// count. The parser stays usable: a refused line consumes its
    /// line number and nothing else.
    pub fn parse_line(&mut self, raw: &str) -> Result<ParsedLine, RequestError> {
        self.line += 1;
        let line = self.line;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(ParsedLine::Empty);
        }
        let record = Json::parse(trimmed).map_err(|error| RequestError::Json { line, error })?;
        let exists = |name: &str| self.floorplans.iter().any(|(n, _)| n == name);
        match classify_record(&record, line, &exists)? {
            Record::Floorplan(name, plan) => {
                if self.floorplans.iter().any(|(n, _)| *n == name) {
                    return Err(RequestError::Schema {
                        line,
                        detail: format!("floorplan {name:?} defined twice"),
                    });
                }
                self.floorplans.push((name.clone(), Arc::new(plan)));
                Ok(ParsedLine::Floorplan(name))
            }
            Record::Job(spec) => {
                // classify_record validated the reference, so the
                // lookup cannot miss; still, fail typed rather than
                // unwrap if the invariant ever breaks.
                let plan = self.floorplan(spec.floorplan()).cloned().ok_or_else(|| {
                    RequestError::Schema {
                        line,
                        detail: format!(
                            "job references undefined floorplan {:?}",
                            spec.floorplan()
                        ),
                    }
                })?;
                Ok(ParsedLine::Job { spec, plan })
            }
            Record::Control(ctl) => Ok(ParsedLine::Control(ctl)),
        }
    }
}

fn field_f64(record: &Json, key: &str, line: usize) -> Result<f64, RequestError> {
    record
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| RequestError::Schema {
            line,
            detail: format!("missing or non-numeric \"{key}\""),
        })
}

fn optional_f64(record: &Json, key: &str, default: f64, line: usize) -> Result<f64, RequestError> {
    match record.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| RequestError::Schema {
            line,
            detail: format!("\"{key}\" must be a number"),
        }),
    }
}

fn optional_f64_list(
    record: &Json,
    key: &str,
    line: usize,
) -> Result<Option<Vec<f64>>, RequestError> {
    let bad = || RequestError::Schema {
        line,
        detail: format!("\"{key}\" must be an array of numbers"),
    };
    match record.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v.as_array().ok_or_else(bad)?;
            items
                .iter()
                .map(|x| x.as_f64().ok_or_else(bad))
                .collect::<Result<Vec<f64>, _>>()
                .map(Some)
        }
    }
}

fn parse_geometry(record: &Json, line: usize) -> Result<ChipGeometry, RequestError> {
    let defaults = ChipGeometry::paper_1mm();
    let Some(g) = record.get("geometry") else {
        return Ok(defaults);
    };
    // A non-object "geometry" must be an error: Json::get on it would
    // return None for every field and silently serve the default die.
    if !matches!(g, Json::Object(_)) {
        return Err(RequestError::Schema {
            line,
            detail: "\"geometry\" must be an object".into(),
        });
    }
    Ok(ChipGeometry {
        width: optional_f64(g, "width", defaults.width, line)?,
        length: optional_f64(g, "length", defaults.length, line)?,
        thickness: optional_f64(g, "thickness", defaults.thickness, line)?,
        conductivity: optional_f64(g, "conductivity", defaults.conductivity, line)?,
        sink_temperature: optional_f64(g, "sink_k", defaults.sink_temperature, line)?,
    })
}

fn parse_floorplan(record: &Json, line: usize) -> Result<(String, Floorplan), RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let name = record
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("floorplan record needs a string \"name\"".into()))?
        .to_string();
    let geometry = parse_geometry(record, line)?;
    let plan = match (record.get("tiles"), record.get("blocks")) {
        (Some(tiles), None) => {
            let dim = |key: &str| -> Result<usize, RequestError> {
                tiles
                    .get(key)
                    .and_then(Json::as_usize)
                    .filter(|&n| n > 0)
                    .ok_or_else(|| RequestError::Schema {
                        line,
                        detail: format!("\"tiles\" needs a positive integer \"{key}\""),
                    })
            };
            let rows = dim("rows")?;
            let cols = dim("cols")?;
            let p_min = optional_f64(tiles, "p_min", 0.0, line)?;
            let p_max = optional_f64(tiles, "p_max", p_min, line)?;
            let seed = tiles
                .get("seed")
                .map(|s| {
                    s.as_usize().ok_or_else(|| RequestError::Schema {
                        line,
                        detail: "\"seed\" must be a non-negative integer".into(),
                    })
                })
                .transpose()?
                .unwrap_or(0) as u64;
            if !(0.0..=f64::INFINITY).contains(&p_min) || p_max < p_min {
                return Err(schema(
                    "\"tiles\" power range must satisfy 0 <= p_min <= p_max".into(),
                ));
            }
            generator::tiled(geometry, rows, cols, p_min, p_max, seed)
                .map_err(|error| RequestError::Floorplan { line, error })?
        }
        (None, Some(blocks)) => {
            let items = blocks
                .as_array()
                .ok_or_else(|| schema("\"blocks\" must be an array".into()))?;
            let parsed: Result<Vec<Block>, RequestError> = items
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let name = b
                        .get("name")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("blk-{i}"));
                    Ok(Block::new(
                        name,
                        field_f64(b, "cx", line)?,
                        field_f64(b, "cy", line)?,
                        field_f64(b, "w", line)?,
                        field_f64(b, "l", line)?,
                        optional_f64(b, "power", 0.0, line)?,
                    ))
                })
                .collect();
            Floorplan::new(geometry, parsed?)
                .map_err(|error| RequestError::Floorplan { line, error })?
        }
        _ => {
            return Err(schema(
                "floorplan record needs exactly one of \"tiles\" or \"blocks\"".into(),
            ))
        }
    };
    Ok((name, plan))
}

fn parse_steady(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<SteadyJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let floorplan = record
        .get("floorplan")
        .and_then(Json::as_str)
        .ok_or_else(|| schema("job needs a string \"floorplan\" reference".into()))?
        .to_string();
    if !exists(&floorplan) {
        return Err(schema(format!(
            "job references undefined floorplan {floorplan:?} (define it on an earlier line)"
        )));
    }
    let backend = match record.get("backend").map(|b| b.as_str()) {
        None => SweepBackend::Auto,
        Some(Some("auto")) => SweepBackend::Auto,
        Some(Some("dense")) => SweepBackend::Dense,
        Some(Some("spectral")) => SweepBackend::Spectral,
        Some(other) => {
            return Err(schema(format!(
                "unknown backend {other:?} (use \"auto\", \"dense\" or \"spectral\")"
            )))
        }
    };
    let deadline_ms = match record.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&ms| ms > 0)
                .map(|ms| ms as u64)
                .ok_or_else(|| {
                    schema("\"deadline_ms\" must be a positive integer of milliseconds".into())
                })?,
        ),
    };
    Ok(SteadyJob {
        floorplan,
        dynamic_w: field_f64(record, "dynamic_w", line)?,
        leakage_w: field_f64(record, "leakage_w", line)?,
        vdd_scales: optional_f64_list(record, "vdd_scales", line)?.unwrap_or_else(|| vec![1.0]),
        activities: optional_f64_list(record, "activities", line)?.unwrap_or_else(|| vec![1.0]),
        ambients_k: optional_f64_list(record, "ambients_k", line)?,
        backend,
        deadline_ms,
        v,
    })
}

fn parse_waveform(value: &Json, line: usize) -> Result<DriveWaveform, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    if value.as_str() == Some("step") {
        return Ok(DriveWaveform::Step);
    }
    if let Some(square) = value.get("square") {
        return Ok(DriveWaveform::SquareWave {
            frequency: field_f64(square, "frequency", line)?,
            duty: field_f64(square, "duty", line)?,
        });
    }
    if let Some(trace) = value.get("trace") {
        let times = optional_f64_list(trace, "times", line)?
            .ok_or_else(|| schema("\"trace\" needs a \"times\" array".into()))?;
        let scales = optional_f64_list(trace, "scales", line)?
            .ok_or_else(|| schema("\"trace\" needs a \"scales\" array".into()))?;
        return Ok(DriveWaveform::Trace { times, scales });
    }
    Err(schema(
        "waveform must be \"step\", {\"square\": ...} or {\"trace\": ...}".into(),
    ))
}

fn parse_transient(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<TransientJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let base = parse_steady(record, line, exists, v)?;
    let dt_s = field_f64(record, "dt_s", line)?;
    let steps = record
        .get("steps")
        .and_then(Json::as_usize)
        .filter(|&n| n > 0)
        .ok_or_else(|| schema("transient job needs a positive integer \"steps\"".into()))?;
    let scheme = match record.get("scheme").map(|s| s.as_str()) {
        None => ImplicitScheme::Trapezoidal,
        Some(Some("trapezoidal")) => ImplicitScheme::Trapezoidal,
        Some(Some("backward_euler")) => ImplicitScheme::BackwardEuler,
        Some(other) => {
            return Err(schema(format!(
                "unknown scheme {other:?} (use \"trapezoidal\" or \"backward_euler\")"
            )))
        }
    };
    let waveforms = match record.get("waveforms") {
        None => Vec::new(),
        Some(list) => list
            .as_array()
            .ok_or_else(|| schema("\"waveforms\" must be an array".into()))?
            .iter()
            .map(|w| parse_waveform(w, line))
            .collect::<Result<Vec<_>, _>>()?,
    };
    // Waveform invariants are checked here so a bad record is refused at
    // parse time with its line number, not deep inside a worker.
    for w in &waveforms {
        w.validate()
            .map_err(|detail| schema(format!("invalid waveform: {detail}")))?;
    }
    Ok(TransientJob {
        base,
        dt_s,
        steps,
        scheme,
        waveforms,
    })
}

/// Upper bound on `nx · ny` of one map job. The operator's resident
/// cost is 8 spectrum planes of `mx·my` f64 (≤ 16·nx·ny elements each
/// when torus padding doubles both axes), plus a transient extended
/// kernel table of `(2k+2)²·nx·ny` entries during assembly — ~1.8 kB
/// per tile worst case. 2¹⁸ tiles (a 512×512 map) therefore caps a
/// hostile request line at under half a GB peak while leaving every
/// realistic hotspot-localization grid comfortably legal.
const MAX_MAP_TILES: usize = 1 << 18;

fn parse_map(
    record: &Json,
    line: usize,
    exists: &dyn Fn(&str) -> bool,
    v: Option<u64>,
) -> Result<MapJob, RequestError> {
    let schema = |detail: String| RequestError::Schema { line, detail };
    let base = parse_steady(record, line, exists, v)?;
    let grid = record
        .get("grid")
        .ok_or_else(|| schema("map job needs a \"grid\" object".into()))?;
    if !matches!(grid, Json::Object(_)) {
        return Err(schema("\"grid\" must be an object".into()));
    }
    let dim = |key: &str| -> Result<usize, RequestError> {
        grid.get(key)
            .and_then(Json::as_usize)
            .filter(|&n| n > 0)
            .ok_or_else(|| RequestError::Schema {
                line,
                detail: format!("\"grid\" needs a positive integer \"{key}\""),
            })
    };
    let nx = dim("nx")?;
    let ny = dim("ny")?;
    if nx.saturating_mul(ny) > MAX_MAP_TILES {
        return Err(schema(format!(
            "map grid {nx}x{ny} exceeds the {MAX_MAP_TILES}-tile bound"
        )));
    }
    Ok(MapJob { base, nx, ny })
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQUEST: &str = r#"
# a fleet request
{"type": "floorplan", "name": "tiny", "tiles": {"rows": 2, "cols": 2, "p_min": 0.02, "p_max": 0.05, "seed": 7}}
{"type": "floorplan", "name": "custom", "blocks": [{"name": "a", "cx": 0.5e-3, "cy": 0.5e-3, "w": 0.2e-3, "l": 0.2e-3, "power": 0.1}]}

{"type": "steady", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0], "ambients_k": [300, 340]}
{"type": "transient", "floorplan": "custom", "dynamic_w": 0.2, "leakage_w": 0.02, "dt_s": 1e-4, "steps": 50, "scheme": "backward_euler", "waveforms": ["step", {"square": {"frequency": 3, "duty": 0.5}}]}
{"type": "map", "floorplan": "tiny", "dynamic_w": 0.3, "leakage_w": 0.03, "grid": {"nx": 32, "ny": 24}}
"#;

    #[test]
    fn parses_a_full_request() {
        let req = parse_jsonl(REQUEST).unwrap();
        assert_eq!(req.floorplans.len(), 2);
        assert_eq!(req.floorplans[0].1.blocks().len(), 4);
        assert_eq!(req.jobs.len(), 3);
        let JobSpec::Steady(s) = &req.jobs[0] else {
            panic!("steady")
        };
        assert_eq!(s.vdd_scales, vec![0.9, 1.0]);
        assert_eq!(s.ambients_k, Some(vec![300.0, 340.0]));
        assert_eq!(s.activities, vec![1.0]); // default
        let JobSpec::Transient(t) = &req.jobs[1] else {
            panic!("transient")
        };
        assert_eq!(t.scheme, ImplicitScheme::BackwardEuler);
        assert_eq!(t.waveforms.len(), 2);
        assert_eq!(t.base.floorplan, "custom");
        let JobSpec::Map(m) = &req.jobs[2] else {
            panic!("map")
        };
        assert_eq!((m.nx, m.ny), (32, 24));
        assert_eq!(m.base.floorplan, "tiny");
        assert_eq!(req.jobs[2].kind(), "map");
    }

    #[test]
    fn tiled_floorplans_are_reproducible() {
        let req = parse_jsonl(REQUEST).unwrap();
        let again = parse_jsonl(REQUEST).unwrap();
        assert_eq!(
            req.floorplans[0].1.fingerprint(),
            again.floorplans[0].1.fingerprint()
        );
    }

    #[test]
    fn undefined_floorplan_is_a_schema_error_with_line() {
        let err = parse_jsonl(
            r#"{"type": "steady", "floorplan": "ghost", "dynamic_w": 1, "leakage_w": 0.1}"#,
        )
        .unwrap_err();
        let RequestError::Schema { line, detail } = err else {
            panic!("schema error")
        };
        assert_eq!(line, 1);
        assert!(detail.contains("ghost"));
    }

    #[test]
    fn malformed_json_reports_the_line() {
        let err = parse_jsonl("\n\n{not json}").unwrap_err();
        assert!(matches!(err, RequestError::Json { line: 3, .. }));
    }

    #[test]
    fn duplicate_and_overlapping_floorplans_are_rejected() {
        let dup = r#"
{"type": "floorplan", "name": "x", "tiles": {"rows": 1, "cols": 1}}
{"type": "floorplan", "name": "x", "tiles": {"rows": 2, "cols": 2}}
"#;
        assert!(matches!(
            parse_jsonl(dup),
            Err(RequestError::Schema { line: 3, .. })
        ));
        let overlap = r#"{"type": "floorplan", "name": "bad", "blocks": [
{"cx": 0.5e-3, "cy": 0.5e-3, "w": 0.4e-3, "l": 0.4e-3}, {"cx": 0.5e-3, "cy": 0.5e-3, "w": 0.4e-3, "l": 0.4e-3}]}"#;
        // (single line in practice; keep it one line for the test)
        let overlap = overlap.replace('\n', " ");
        assert!(matches!(
            parse_jsonl(&overlap),
            Err(RequestError::Floorplan { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_waveforms_fail_at_parse_time() {
        let bad = r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "transient", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01, "dt_s": 1e-4, "steps": 5, "waveforms": [{"square": {"frequency": -1, "duty": 0.5}}]}
"#;
        let err = parse_jsonl(bad).unwrap_err();
        let RequestError::Schema { line: 3, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("frequency"));
    }

    #[test]
    fn non_object_geometry_is_rejected_not_defaulted() {
        // Regression: a mistyped "geometry" used to be silently replaced
        // by the default 1 mm die.
        let err = parse_jsonl(
            r#"{"type": "floorplan", "name": "x", "geometry": "2mm", "tiles": {"rows": 1, "cols": 1}}"#,
        )
        .unwrap_err();
        let RequestError::Schema { line: 1, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("geometry"));
    }

    #[test]
    fn zero_steps_transient_is_rejected() {
        let bad = r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "transient", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01, "dt_s": 1e-4, "steps": 0}
"#;
        let err = parse_jsonl(bad).unwrap_err();
        let RequestError::Schema { line: 3, detail } = err else {
            panic!("schema error, got {err:?}")
        };
        assert!(detail.contains("steps"));
    }

    #[test]
    fn unknown_record_type_is_rejected() {
        let err = parse_jsonl(r#"{"type": "mystery"}"#).unwrap_err();
        assert!(matches!(err, RequestError::Schema { line: 1, .. }));
    }

    #[test]
    fn explicit_protocol_version_is_accepted_and_recorded() {
        let req = parse_jsonl(
            r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "steady", "v": 1, "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
{"type": "steady", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
"#,
        )
        .unwrap();
        assert_eq!(req.jobs[0].version(), Some(PROTOCOL_VERSION));
        // A version-silent line stays silent — its result line must not
        // grow a "v" field.
        assert_eq!(req.jobs[1].version(), None);
    }

    #[test]
    fn unknown_protocol_version_is_a_typed_refusal() {
        let err = parse_jsonl(
            r#"
{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}
{"type": "steady", "v": 2, "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}
"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RequestError::Version {
                line: 3,
                requested: 2
            }
        );
        assert!(err.to_string().contains("unsupported protocol version 2"));
        // A mistyped "v" is a schema error, not a version refusal.
        let err = parse_jsonl(r#"{"type": "stats", "v": "one"}"#).unwrap_err();
        assert!(matches!(err, RequestError::Schema { line: 1, .. }));
    }

    #[test]
    fn control_records_are_refused_in_batch_mode() {
        for kind in ["stats", "shutdown"] {
            let err = parse_jsonl(&format!(r#"{{"type": "{kind}"}}"#)).unwrap_err();
            let RequestError::Schema { line: 1, detail } = err else {
                panic!("schema error, got {err:?}")
            };
            assert!(detail.contains(kind), "{detail}");
            assert!(detail.contains("serve-mode"), "{detail}");
        }
    }

    #[test]
    fn streaming_parser_interleaves_definitions_and_jobs() {
        let mut parser = RequestParser::new();
        assert!(matches!(parser.parse_line(""), Ok(ParsedLine::Empty)));
        assert!(matches!(
            parser.parse_line("# comment"),
            Ok(ParsedLine::Empty)
        ));
        let defined = parser
            .parse_line(r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 2, "cols": 2, "p_min": 0.01, "p_max": 0.02, "seed": 1}}"#)
            .unwrap();
        assert!(matches!(defined, ParsedLine::Floorplan(name) if name == "f"));
        let job = parser
            .parse_line(
                r#"{"type": "steady", "floorplan": "f", "dynamic_w": 0.1, "leakage_w": 0.01}"#,
            )
            .unwrap();
        let ParsedLine::Job { spec, plan } = job else {
            panic!("job line")
        };
        assert_eq!(spec.kind(), "steady");
        // The resolved handle is the registered floorplan itself.
        assert!(Arc::ptr_eq(&plan, parser.floorplan("f").unwrap()));
        assert!(matches!(
            parser.parse_line(r#"{"type": "stats"}"#),
            Ok(ParsedLine::Control(ControlRecord::Stats))
        ));
        assert!(matches!(
            parser.parse_line(r#"{"type": "shutdown"}"#),
            Ok(ParsedLine::Control(ControlRecord::Shutdown))
        ));
        assert_eq!(parser.lines_seen(), 6);
    }

    #[test]
    fn streaming_parser_survives_refused_lines() {
        let mut parser = RequestParser::new();
        // Line 1: bad JSON. Line 2: unknown floorplan. Line 3: bad
        // version. Each refusal names its own line, and the parser
        // keeps accepting afterwards.
        assert!(matches!(
            parser.parse_line("{oops"),
            Err(RequestError::Json { line: 1, .. })
        ));
        assert!(matches!(
            parser.parse_line(
                r#"{"type": "steady", "floorplan": "ghost", "dynamic_w": 1, "leakage_w": 0.1}"#
            ),
            Err(RequestError::Schema { line: 2, .. })
        ));
        assert!(matches!(
            parser.parse_line(r#"{"type": "stats", "v": 99}"#),
            Err(RequestError::Version {
                line: 3,
                requested: 99
            })
        ));
        assert!(matches!(
            parser.parse_line(
                r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#
            ),
            Ok(ParsedLine::Floorplan(_))
        ));
        // Registries are per-parser: a fresh connection cannot see "f".
        let mut other = RequestParser::new();
        assert!(matches!(
            other.parse_line(
                r#"{"type": "steady", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1}"#
            ),
            Err(RequestError::Schema { line: 1, .. })
        ));
    }

    #[test]
    fn map_jobs_validate_their_grid() {
        let prefix = r#"{"type": "floorplan", "name": "f", "tiles": {"rows": 1, "cols": 1}}"#;
        let detail_of = |suffix: &str| -> String {
            let err = parse_jsonl(&format!("{prefix}\n{suffix}")).unwrap_err();
            let RequestError::Schema { line: 2, detail } = err else {
                panic!("schema error on line 2, got {err:?}")
            };
            detail
        };
        // Missing, mistyped and non-positive grids all fail with their
        // own diagnostic.
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1}"#
        )
        .contains("grid"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": "big"}"#
        )
        .contains("must be an object"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 0, "ny": 4}}"#
        )
        .contains("nx"));
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 8}}"#
        )
        .contains("ny"));
        // The tile bound refuses hostile allocations at parse time.
        assert!(detail_of(
            r#"{"type": "map", "floorplan": "f", "dynamic_w": 1, "leakage_w": 0.1, "grid": {"nx": 100000, "ny": 100000}}"#
        )
        .contains("bound"));
    }
}
