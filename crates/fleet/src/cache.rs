//! Fingerprint-keyed, bounded, single-flight LRU caches for expensive
//! precomputations.
//!
//! A fleet serving heterogeneous jobs pays one dominant cold cost per
//! job: assembling the floorplan's thermal influence operator
//! (`O(n²·images)` kernel evaluations, ~tens of milliseconds at 64
//! blocks) and, for transients, LU-factoring the implicit propagator.
//! Both are **pure functions of a small key** — the content fingerprints
//! of `ptherm_floorplan::fingerprint` — so a cache turns a fleet of `J`
//! jobs over `F` distinct floorplans from `J` factorizations into `F`.
//!
//! Design points of [`Lru`]:
//!
//! * **bounded** — at most `capacity` ready entries; the least recently
//!   *used* (not inserted) is evicted, and evictions are counted,
//! * **single-flight** — when several workers miss the same key at
//!   once, exactly one builds while the rest block on a condvar and
//!   share the result; a fleet ramping 16 workers onto 16 floorplans
//!   never builds an operator twice,
//! * **value-immutable** — values live behind `Arc`, shared read-only,
//!   which is safe precisely because fingerprint equality implies the
//!   build output is bit-identical (a cache hit can never change any
//!   temperature; the test suite asserts this bitwise).

use ptherm_core::cosim::{
    operator_fingerprint, propagator_fingerprint, spectral_operator_fingerprint, SpectralGridError,
    SpectralOperator, SweepReport, ThermalOperator, TransientError, TransientOperator,
};
use ptherm_core::thermal::map::{map_operator_fingerprint, MapOperator};
use ptherm_floorplan::Floorplan;
use ptherm_math::ode::ImplicitScheme;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Monotonic counters of one cache's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a ready entry.
    pub hits: u64,
    /// Lookups that ran a build — exactly the cold work performed.
    /// A caller that blocked on another worker's in-flight build counts
    /// as a *hit* once the entry lands: no build ran on its behalf.
    pub misses: u64,
    /// Ready entries discarded to respect the capacity bound.
    pub evictions: u64,
}

/// One slot: a ready value, or a reservation for an in-flight build.
#[derive(Debug)]
struct Entry<V> {
    /// `None` while the owning worker is still building.
    value: Option<Arc<V>>,
    /// Tick of the last hit (or the insertion), for LRU ordering.
    last_used: u64,
}

#[derive(Debug)]
struct Inner<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
}

/// Bounded single-flight LRU cache (see the [module docs](self)).
#[derive(Debug)]
pub struct Lru<K, V> {
    inner: Mutex<Inner<K, V>>,
    ready: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `capacity` ready entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a cache that can hold nothing
    /// would still advertise hits).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Lru {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Capacity bound (ready entries).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ready entries currently cached.
    pub fn len(&self) -> usize {
        self.lock()
            .map
            .values()
            .filter(|e| e.value.is_some())
            .count()
    }

    /// True when no ready entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<K, V>> {
        // A builder that panics leaves its reservation behind; recovery
        // below removes it, so the poisoned-lock state itself is benign.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The value under `key`, building it with `build` on a miss.
    ///
    /// Exactly one caller runs `build` per missing key at a time; every
    /// concurrent caller for the same key blocks until the build lands
    /// and shares the same `Arc`. `build` runs **outside** the cache
    /// lock, so builds for different keys proceed in parallel. A failed
    /// build caches nothing: the error is returned to the builder, one
    /// blocked waiter retries the build, and later lookups miss again.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns.
    pub fn get_or_build<E>(
        &self,
        key: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut inner = self.lock();
        loop {
            // One probe, no re-lookup: splitting the guard lets the LRU
            // clock advance while the entry stays mutably borrowed.
            let probe = {
                let inner = &mut *inner;
                match inner.map.get_mut(&key) {
                    Some(entry) => match entry.value.as_ref().map(Arc::clone) {
                        Some(value) => {
                            inner.tick += 1;
                            entry.last_used = inner.tick;
                            Some(Some(value))
                        }
                        None => Some(None),
                    },
                    None => None,
                }
            };
            match probe {
                Some(Some(value)) => {
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(value);
                }
                // Another worker is building this key: wait for the
                // slot to resolve (ready, or removed on failure), then
                // re-examine it.
                Some(None) => {
                    inner = self
                        .ready
                        .wait(inner)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                None => break,
            }
        }
        // Reserve the key and build outside the lock.
        inner.tick += 1;
        let reserved_at = inner.tick;
        inner.map.insert(
            key.clone(),
            Entry {
                value: None,
                last_used: reserved_at,
            },
        );
        drop(inner);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = BuildGuard::run(self, &key, build)?;

        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.value = Some(Arc::clone(&built));
            entry.last_used = tick;
        }
        self.evict_over_capacity(&mut inner);
        drop(inner);
        self.ready.notify_all();
        Ok(built)
    }

    /// Discards every **ready** entry, counting each as an eviction,
    /// and returns how many were dropped. In-flight reservations are
    /// left alone — their builders are about to insert, and removing a
    /// reservation out from under its `BuildGuard` would break the
    /// single-flight protocol. The fault-injection harness uses this
    /// ([`Fault::EvictCaches`](crate::Fault::EvictCaches)) to force
    /// rebuild-under-traffic; correctness is unaffected because
    /// fingerprint-keyed builds are deterministic.
    pub fn clear(&self) -> u64 {
        let mut inner = self.lock();
        let ready: Vec<K> = inner
            .map
            .iter()
            .filter(|(_, e)| e.value.is_some())
            .map(|(k, _)| k.clone())
            .collect();
        let dropped = ready.len() as u64;
        for key in ready {
            inner.map.remove(&key);
        }
        drop(inner);
        self.evictions.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Evicts least-recently-used ready entries until the ready count
    /// respects the capacity. In-flight reservations are never evicted
    /// (their builders are about to insert) and do not count against
    /// the bound.
    fn evict_over_capacity(&self, inner: &mut Inner<K, V>) {
        loop {
            let ready = inner.map.values().filter(|e| e.value.is_some()).count();
            if ready <= self.capacity {
                return;
            }
            if let Some(oldest) = inner
                .map
                .iter()
                .filter(|(_, e)| e.value.is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return;
            }
        }
    }
}

/// Removes a reservation if its build unwinds or errors, so waiters are
/// released instead of deadlocking on a slot nobody will fill.
struct BuildGuard<'a, K: Eq + Hash + Clone, V> {
    cache: &'a Lru<K, V>,
    key: &'a K,
    armed: bool,
}

impl<'a, K: Eq + Hash + Clone, V> BuildGuard<'a, K, V> {
    fn run<E>(
        cache: &'a Lru<K, V>,
        key: &'a K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut guard = BuildGuard {
            cache,
            key,
            armed: true,
        };
        let value = build();
        match value {
            Ok(v) => {
                guard.armed = false;
                Ok(Arc::new(v))
            }
            Err(e) => Err(e), // guard drops armed: reservation removed, waiters woken
        }
    }
}

impl<K: Eq + Hash + Clone, V> Drop for BuildGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.lock();
            // Only remove our own reservation, never a ready entry a
            // retrying waiter may have installed since.
            if inner.map.get(self.key).is_some_and(|e| e.value.is_none()) {
                inner.map.remove(self.key);
            }
            drop(inner);
            self.cache.ready.notify_all();
        }
    }
}

/// The fleet's operator caches, keyed by content fingerprint.
#[derive(Debug)]
pub struct OperatorCache {
    steady: Lru<u64, ThermalOperator>,
    transient: Lru<u64, TransientOperator>,
    map: Lru<u64, MapOperator>,
    spectral: Lru<u64, SpectralOperator>,
    results: Lru<u64, SweepReport>,
}

impl OperatorCache {
    /// Caches holding at most `capacity` entries **each** (steady
    /// operators, transient propagators, map kernels, spectral
    /// operators and steady results age independently).
    pub fn new(capacity: usize) -> Self {
        OperatorCache {
            steady: Lru::new(capacity),
            transient: Lru::new(capacity),
            map: Lru::new(capacity),
            spectral: Lru::new(capacity),
            results: Lru::new(capacity),
        }
    }

    /// The influence operator of `floorplan` at the given image orders:
    /// cached under [`operator_fingerprint`], built serially
    /// (`threads = 1`) on a miss — fleet workers are the parallelism,
    /// so a job's build must not oversubscribe its siblings.
    pub fn steady_operator(
        &self,
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
    ) -> Arc<ThermalOperator> {
        self.steady_operator_hooked(floorplan, lateral_order, z_order, || {})
    }

    /// [`Self::steady_operator`] with a `hook` run at the start of a
    /// cold build, **inside** the single-flight reservation. This is
    /// the fault-injection seam: a hook that panics exercises exactly
    /// the builder-panic path a real build failure would take — the
    /// reservation is released by the build guard, waiters wake, and
    /// one of them retries the build. Hits never run the hook.
    pub fn steady_operator_hooked(
        &self,
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        hook: impl FnOnce(),
    ) -> Arc<ThermalOperator> {
        let key = operator_fingerprint(floorplan, lateral_order, z_order);
        let built: Result<_, std::convert::Infallible> = self.steady.get_or_build(key, || {
            hook();
            Ok(ThermalOperator::with_image_orders_threaded(
                floorplan,
                lateral_order,
                z_order,
                1,
            ))
        });
        match built {
            Ok(op) => op,
            Err(never) => match never {},
        }
    }

    /// The implicit transient propagator for `(op, capacitances, dt,
    /// scheme)`: cached under [`propagator_fingerprint`].
    ///
    /// # Errors
    ///
    /// See [`TransientError`] — a failed factorization caches nothing.
    pub fn transient_operator(
        &self,
        op: &ThermalOperator,
        capacitances: &[f64],
        dt: f64,
        scheme: ImplicitScheme,
    ) -> Result<Arc<TransientOperator>, TransientError> {
        let key = propagator_fingerprint(op, capacitances, dt, scheme);
        self.transient
            .get_or_build(key, || TransientOperator::new(op, capacitances, dt, scheme))
    }

    /// The spatial map operator of `floorplan` on an `nx × ny` tile
    /// grid at the given image orders: cached under
    /// [`map_operator_fingerprint`], built serially on a miss (fleet
    /// workers are the parallelism, like [`Self::steady_operator`]).
    pub fn map_operator(
        &self,
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        nx: usize,
        ny: usize,
    ) -> Arc<MapOperator> {
        let key = map_operator_fingerprint(floorplan, lateral_order, z_order, nx, ny);
        let built: Result<_, std::convert::Infallible> = self.map.get_or_build(key, || {
            Ok(MapOperator::with_image_orders_threaded(
                floorplan,
                nx,
                ny,
                lateral_order,
                z_order,
                1,
            ))
        });
        match built {
            Ok(op) => op,
            Err(never) => match never {},
        }
    }

    /// The spectral (FFT) steady operator of `floorplan` at the given
    /// image orders and refinement tolerance: cached under
    /// [`spectral_operator_fingerprint`] with the inferred coincident
    /// grid, built serially on a miss (fleet workers are the
    /// parallelism, like [`Self::steady_operator`]).
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when no uniform tile grid aligns every
    /// block centre — nothing is cached, so the caller can fall back to
    /// the dense path (or report a typed job error).
    pub fn spectral_operator(
        &self,
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        tolerance: f64,
    ) -> Result<Arc<SpectralOperator>, SpectralGridError> {
        self.spectral_operator_hooked(floorplan, lateral_order, z_order, tolerance, || {})
    }

    /// [`Self::spectral_operator`] with a `hook` run at the start of a
    /// cold build, inside the single-flight reservation — the same
    /// fault-injection seam as [`Self::steady_operator_hooked`].
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when no coincident tile grid exists.
    pub fn spectral_operator_hooked(
        &self,
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        tolerance: f64,
        hook: impl FnOnce(),
    ) -> Result<Arc<SpectralOperator>, SpectralGridError> {
        let (nx, ny) = ptherm_core::cosim::infer_grid(floorplan)?;
        let key =
            spectral_operator_fingerprint(floorplan, lateral_order, z_order, nx, ny, tolerance);
        self.spectral.get_or_build(key, || {
            hook();
            SpectralOperator::with_image_orders_threaded(
                floorplan,
                lateral_order,
                z_order,
                tolerance,
                1,
            )
        })
    }

    /// The **cold** steady result of a resolved delta-base request:
    /// cached under the base's steady-request fingerprint
    /// ([`crate::jobs::steady_result_fingerprint`]), solved
    /// single-flight by `build` on a miss.
    ///
    /// # Keying rules
    ///
    /// Unlike the operator caches, the key covers the **whole resolved
    /// request** — floorplan content fingerprint, power budgets, power
    /// law (and θ), every scenario axis and the resolved backend —
    /// because the cached value is the solved report itself, not a
    /// reusable kernel (see [`crate::jobs::steady_result_fingerprint`]
    /// for the full include/exclude contract). Deadlines, job names
    /// and cancellation state are deliberately **excluded**: they
    /// shape scheduling, not the fixed point, and `build` must solve
    /// cold (no faults, no deadline token) so a recalled entry and a
    /// re-solved one are bitwise identical — the determinism contract
    /// `delta` jobs pin in `tests/delta_determinism.rs`.
    pub fn steady_result(&self, key: u64, build: impl FnOnce() -> SweepReport) -> Arc<SweepReport> {
        let built: Result<_, std::convert::Infallible> =
            self.results.get_or_build(key, || Ok(build()));
        match built {
            Ok(report) => report,
            Err(never) => match never {},
        }
    }

    /// Flushes every ready entry from all five caches (steady,
    /// transient, map, spectral, results), counting each as an
    /// eviction, and returns the total dropped. In-flight builds are
    /// untouched; see [`Lru::clear`].
    pub fn evict_all(&self) -> u64 {
        self.steady.clear()
            + self.transient.clear()
            + self.map.clear()
            + self.spectral.clear()
            + self.results.clear()
    }

    /// Counter snapshot for the steady-operator cache.
    pub fn steady_stats(&self) -> CacheStats {
        self.steady.stats()
    }

    /// Counter snapshot for the transient-propagator cache.
    pub fn transient_stats(&self) -> CacheStats {
        self.transient.stats()
    }

    /// Counter snapshot for the map-operator cache.
    pub fn map_stats(&self) -> CacheStats {
        self.map.stats()
    }

    /// Counter snapshot for the spectral-operator cache.
    pub fn spectral_stats(&self) -> CacheStats {
        self.spectral.stats()
    }

    /// Counter snapshot for the steady-result cache.
    pub fn result_stats(&self) -> CacheStats {
        self.results.stats()
    }
}
