//! Multi-floorplan fleet serving for the `ptherm` workspace.
//!
//! PRs 1–3 made *one* floorplan fast: a precomputed influence operator,
//! GEMM-batched Picard sweeps and factored implicit transients. This
//! crate makes *many* floorplans fast **together** — the production
//! setting where a service evaluates a heterogeneous stream of jobs
//! (steady-state sweeps, transients, different chips, different
//! configurations) continuously:
//!
//! * [`cache`] — fingerprint-keyed, bounded, single-flight LRU caches
//!   for thermal operators and transient propagators, so the dominant
//!   per-job cold cost (assembly + factorization) is paid once per
//!   distinct floorplan, not once per job;
//! * [`engine`] — [`FleetEngine`]: a work-stealing scheduler
//!   ([`ptherm_par::steal`]) running a mixed job queue over the shared
//!   cache, with results bitwise independent of worker count, steal
//!   pattern and cache state;
//! * [`faults`] — deterministic fault injection ([`FaultPlan`]) for
//!   chaos-testing the engine's panic isolation, retry budgets and
//!   cache-poisoning recovery;
//! * [`jobs`] — the typed, versioned JSONL job protocol: batch parsing
//!   ([`parse_jsonl`]) and the streaming per-connection
//!   [`RequestParser`] serve mode admits through;
//! * [`json`] — the dependency-free JSON tree backing the protocol and
//!   the bench regression checker;
//! * [`server`] — [`FleetServer`]: the persistent socket front-end
//!   (TCP / Unix) streaming jobs into the scheduler with bounded
//!   admission, graceful drain and cache warm/persist across restarts;
//! * [`metrics`] — serve-mode counters and latency quantiles behind
//!   the `{"type": "stats"}` control record;
//! * [`persist`] — fingerprint-keyed cache manifests: save rebuild
//!   recipes on drain, warm a restarted engine's caches from them.
//!
//! The `fleet` binary (`cargo run --release -p ptherm-bench --bin
//! fleet`) serves requests from a JSONL file, runs the persistent
//! service (`serve`) or benchmarks a synthetic fleet;
//! `docs/ARCHITECTURE.md` documents the layer and the schema,
//! `docs/PERFORMANCE.md` the `BENCH_fleet.json` baseline.

pub mod cache;
pub mod engine;
pub mod faults;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod server;

pub use cache::{CacheStats, Lru, OperatorCache};
pub use engine::{
    FleetConfig, FleetConfigError, FleetEngine, FleetEngineBuilder, FleetReport, JobError,
    JobRecord, JobReport, RetryPolicy,
};
pub use faults::{Fault, FaultPlan};
pub use jobs::{
    parse_jsonl, steady_result_fingerprint, ControlRecord, DeltaJob, EnvelopeJob, FleetRequest,
    JobSpec, MapJob, ParsedLine, PowerSpec, RequestError, RequestParser, SteadyJob, TransientJob,
    PROTOCOL_VERSION,
};
pub use json::{Json, JsonError};
pub use metrics::ServeMetrics;
pub use persist::{CacheRecipe, ManifestError, RecipeKind, WarmReport, MANIFEST_VERSION};
pub use server::{FleetServer, ServeConfig, ServeListener, ServeSummary};
