//! Multi-floorplan fleet serving for the `ptherm` workspace.
//!
//! PRs 1–3 made *one* floorplan fast: a precomputed influence operator,
//! GEMM-batched Picard sweeps and factored implicit transients. This
//! crate makes *many* floorplans fast **together** — the production
//! setting where a service evaluates a heterogeneous stream of jobs
//! (steady-state sweeps, transients, different chips, different
//! configurations) continuously:
//!
//! * [`cache`] — fingerprint-keyed, bounded, single-flight LRU caches
//!   for thermal operators and transient propagators, so the dominant
//!   per-job cold cost (assembly + factorization) is paid once per
//!   distinct floorplan, not once per job;
//! * [`engine`] — [`FleetEngine`]: a work-stealing scheduler
//!   ([`ptherm_par::steal`]) running a mixed job queue over the shared
//!   cache, with results bitwise independent of worker count, steal
//!   pattern and cache state;
//! * [`faults`] — deterministic fault injection ([`FaultPlan`]) for
//!   chaos-testing the engine's panic isolation, retry budgets and
//!   cache-poisoning recovery;
//! * [`jobs`] — the typed JSONL job protocol the `fleet` binary
//!   streams ([`parse_jsonl`]);
//! * [`json`] — the dependency-free JSON tree backing the protocol and
//!   the bench regression checker.
//!
//! The `fleet` binary (`cargo run --release -p ptherm-bench --bin
//! fleet`) serves requests from a JSONL file or benchmarks a synthetic
//! fleet; `docs/ARCHITECTURE.md` documents the layer and the schema,
//! `docs/PERFORMANCE.md` the `BENCH_fleet.json` baseline.

pub mod cache;
pub mod engine;
pub mod faults;
pub mod jobs;
pub mod json;

pub use cache::{CacheStats, Lru, OperatorCache};
pub use engine::{
    FleetConfig, FleetEngine, FleetReport, JobError, JobRecord, JobReport, RetryPolicy,
};
pub use faults::{Fault, FaultPlan};
pub use jobs::{parse_jsonl, FleetRequest, JobSpec, MapJob, RequestError, SteadyJob, TransientJob};
pub use json::{Json, JsonError};
