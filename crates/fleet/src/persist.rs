//! Cache persistence: save a restartable *manifest* of what the fleet's
//! operator caches hold, and warm a fresh engine's caches from one.
//!
//! The caches themselves are never serialized — a factored operator is
//! megabytes of floats whose bit pattern already falls out of a
//! deterministic build. What persists is the **recipe**: the floorplan
//! and the handful of parameters ([`RecipeKind`]) that reproduce each
//! entry, keyed by the same content fingerprint the cache itself uses.
//! [`warm`] replays the recipes through the ordinary cache paths, so a
//! restarted service reaches steady-state hit rates before its first
//! job — and a warmed operator is *bit-identical* to the one the
//! previous process held, because fingerprint equality implies build
//! equality (the cache's core invariant).
//!
//! Staleness is handled structurally: every entry carries the
//! fingerprint it was recorded under, and [`warm`] recomputes the
//! fingerprint from the manifest floorplan and the *warming* engine's
//! configuration before building. An entry recorded under different
//! image orders, a different tolerance or an edited floorplan hashes
//! differently and is skipped (counted in [`WarmReport::skipped`]),
//! never rebuilt wrong.
//!
//! Floats round-trip **exactly**: every `f64` in a manifest is stored
//! as the hex of its IEEE-754 bit pattern (`f64::to_bits`), not a
//! decimal rendering — so a floorplan's fingerprint after reload equals
//! its fingerprint before, and warm hits the same cache keys.

use crate::engine::FleetEngine;
use crate::json::Json;
use ptherm_core::cosim::{
    infer_grid, operator_fingerprint, propagator_fingerprint, spectral_operator_fingerprint,
};
use ptherm_core::thermal::capacitance::silicon_block_capacitances;
use ptherm_core::thermal::map::map_operator_fingerprint;
use ptherm_floorplan::{Block, ChipGeometry, Floorplan};
use ptherm_math::ode::ImplicitScheme;
use std::sync::Arc;

/// Manifest schema version (bumped on any incompatible layout change;
/// [`warm`] refuses manifests it does not understand).
pub const MANIFEST_VERSION: u64 = 1;

/// How to rebuild one cached operator from its floorplan.
#[derive(Debug, Clone, PartialEq)]
pub enum RecipeKind {
    /// Dense steady-state [`ThermalOperator`] (the engine's configured
    /// image orders are part of the fingerprint, not the recipe).
    ///
    /// [`ThermalOperator`]: ptherm_core::cosim::ThermalOperator
    Steady,
    /// [`SpectralOperator`] at a refinement tolerance (the tile grid is
    /// re-inferred from the floorplan).
    ///
    /// [`SpectralOperator`]: ptherm_core::cosim::SpectralOperator
    Spectral {
        /// Refinement tolerance the operator was built at.
        tolerance: f64,
    },
    /// Transient propagator over the floorplan's steady operator.
    Transient {
        /// Time step, s.
        dt_s: f64,
        /// Implicit scheme.
        scheme: ImplicitScheme,
    },
    /// Pixel-grid [`MapOperator`].
    ///
    /// [`MapOperator`]: ptherm_core::thermal::map::MapOperator
    Map {
        /// Horizontal pixel count.
        nx: usize,
        /// Vertical pixel count.
        ny: usize,
    },
}

impl RecipeKind {
    /// The manifest's `"kind"` tag.
    fn tag(&self) -> &'static str {
        match self {
            RecipeKind::Steady => "steady",
            RecipeKind::Spectral { .. } => "spectral",
            RecipeKind::Transient { .. } => "transient",
            RecipeKind::Map { .. } => "map",
        }
    }
}

/// One cached operator's rebuild recipe: the floorplan it was built
/// from plus the kind-specific parameters.
#[derive(Debug, Clone)]
pub struct CacheRecipe {
    /// The floorplan the operator was built from.
    pub floorplan: Arc<Floorplan>,
    /// Kind-specific rebuild parameters.
    pub kind: RecipeKind,
}

/// What [`warm`] did with a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReport {
    /// Entries rebuilt into the cache (fingerprint matched after
    /// recomputation — the warmed operator is bit-identical to the one
    /// the saving process held).
    pub rebuilt: usize,
    /// Entries skipped as stale (fingerprint mismatch under the warming
    /// engine's configuration, unbuildable floorplan, or a malformed
    /// record).
    pub skipped: usize,
}

/// Errors loading a manifest (I/O aside): not JSON, or a layout this
/// version does not understand. Per-*entry* problems are not errors —
/// they count as [`WarmReport::skipped`].
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// The text was not valid JSON.
    Json(crate::json::JsonError),
    /// Parsed, but not a manifest object with a supported
    /// `"manifest_version"`.
    Schema(String),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "manifest is not valid JSON: {e}"),
            ManifestError::Schema(detail) => write!(f, "manifest schema error: {detail}"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn hex_bits(x: f64) -> Json {
    Json::String(format!("{:016x}", x.to_bits()))
}

fn from_hex_bits(j: &Json) -> Option<f64> {
    let s = j.as_str()?;
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn hex_u64(x: u64) -> Json {
    Json::String(format!("{x:016x}"))
}

fn from_hex_u64(j: &Json) -> Option<u64> {
    u64::from_str_radix(j.as_str()?, 16).ok()
}

fn floorplan_to_json(plan: &Floorplan) -> Json {
    let g = plan.geometry();
    let geometry = Json::Object(vec![
        ("width".into(), hex_bits(g.width)),
        ("length".into(), hex_bits(g.length)),
        ("thickness".into(), hex_bits(g.thickness)),
        ("conductivity".into(), hex_bits(g.conductivity)),
        ("sink_temperature".into(), hex_bits(g.sink_temperature)),
    ]);
    let blocks = plan
        .blocks()
        .iter()
        .map(|b| {
            Json::Object(vec![
                ("name".into(), Json::String(b.name.clone())),
                ("cx".into(), hex_bits(b.cx)),
                ("cy".into(), hex_bits(b.cy)),
                ("w".into(), hex_bits(b.w)),
                ("l".into(), hex_bits(b.l)),
                ("power".into(), hex_bits(b.power)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("geometry".into(), geometry),
        ("blocks".into(), Json::Array(blocks)),
    ])
}

fn floorplan_from_json(j: &Json) -> Option<Floorplan> {
    let g = j.get("geometry")?;
    let geometry = ChipGeometry {
        width: from_hex_bits(g.get("width")?)?,
        length: from_hex_bits(g.get("length")?)?,
        thickness: from_hex_bits(g.get("thickness")?)?,
        conductivity: from_hex_bits(g.get("conductivity")?)?,
        sink_temperature: from_hex_bits(g.get("sink_temperature")?)?,
    };
    let mut blocks = Vec::new();
    for b in j.get("blocks")?.as_array()? {
        blocks.push(Block {
            name: b.get("name")?.as_str()?.to_string(),
            cx: from_hex_bits(b.get("cx")?)?,
            cy: from_hex_bits(b.get("cy")?)?,
            w: from_hex_bits(b.get("w")?)?,
            l: from_hex_bits(b.get("l")?)?,
            power: from_hex_bits(b.get("power")?)?,
        });
    }
    Floorplan::new(geometry, blocks).ok()
}

fn scheme_tag(scheme: ImplicitScheme) -> &'static str {
    match scheme {
        ImplicitScheme::Trapezoidal => "trapezoidal",
        ImplicitScheme::BackwardEuler => "backward_euler",
    }
}

fn scheme_from_tag(tag: &str) -> Option<ImplicitScheme> {
    match tag {
        "trapezoidal" => Some(ImplicitScheme::Trapezoidal),
        "backward_euler" => Some(ImplicitScheme::BackwardEuler),
        _ => None,
    }
}

/// Renders the engine's recorded cache recipes as a manifest value.
///
/// Entries are fingerprint-ordered, so the manifest of a given cache
/// state is byte-stable regardless of job arrival order. An engine that
/// has served no amortized jobs yields a valid empty manifest.
pub fn manifest(engine: &FleetEngine) -> Json {
    let entries = engine
        .recipes_snapshot()
        .into_iter()
        .map(|(key, recipe)| {
            let mut fields = vec![
                ("kind".into(), Json::String(recipe.kind.tag().into())),
                ("fingerprint".into(), hex_u64(key)),
                ("floorplan".into(), floorplan_to_json(&recipe.floorplan)),
            ];
            match &recipe.kind {
                RecipeKind::Steady => {}
                RecipeKind::Spectral { tolerance } => {
                    fields.push(("tolerance".into(), hex_bits(*tolerance)));
                }
                RecipeKind::Transient { dt_s, scheme } => {
                    fields.push(("dt_s".into(), hex_bits(*dt_s)));
                    fields.push(("scheme".into(), Json::String(scheme_tag(*scheme).into())));
                }
                RecipeKind::Map { nx, ny } => {
                    fields.push(("nx".into(), Json::Number(*nx as f64)));
                    fields.push(("ny".into(), Json::Number(*ny as f64)));
                }
            }
            Json::Object(fields)
        })
        .collect();
    Json::Object(vec![
        (
            "manifest_version".into(),
            Json::Number(MANIFEST_VERSION as f64),
        ),
        ("entries".into(), Json::Array(entries)),
    ])
}

/// Parses manifest text and checks the schema version.
///
/// # Errors
///
/// [`ManifestError`] when the text is not JSON or not a supported
/// manifest layout (individual entries are *not* validated here).
pub fn parse_manifest(text: &str) -> Result<Json, ManifestError> {
    let manifest = Json::parse(text).map_err(ManifestError::Json)?;
    match manifest.get("manifest_version").and_then(Json::as_usize) {
        Some(v) if v as u64 == MANIFEST_VERSION => {}
        Some(v) => {
            return Err(ManifestError::Schema(format!(
                "unsupported manifest_version {v} (this build reads {MANIFEST_VERSION})"
            )))
        }
        None => {
            return Err(ManifestError::Schema(
                "missing integer \"manifest_version\"".into(),
            ))
        }
    }
    if !matches!(manifest.get("entries"), Some(Json::Array(_))) {
        return Err(ManifestError::Schema("missing \"entries\" array".into()));
    }
    Ok(manifest)
}

/// Rebuilds every still-valid manifest entry through the engine's
/// ordinary cache paths (the builds themselves register as misses on
/// the cache counters, exactly like first-job builds would).
///
/// Stale entries — fingerprint mismatch under this engine's image
/// orders, floorplans that no longer validate, malformed records — are
/// skipped, never guessed at. Warming also (re-)records each rebuilt
/// recipe, so a save → warm → save chain is idempotent.
pub fn warm(engine: &FleetEngine, manifest: &Json) -> WarmReport {
    let mut report = WarmReport::default();
    let entries = match manifest.get("entries").and_then(Json::as_array) {
        Some(entries) => entries,
        None => return report,
    };
    for entry in entries {
        if warm_entry(engine, entry) {
            report.rebuilt += 1;
        } else {
            report.skipped += 1;
        }
    }
    report
}

fn warm_entry(engine: &FleetEngine, entry: &Json) -> bool {
    let (lateral, z) = {
        let config = engine.config();
        (config.lateral_order, config.z_order)
    };
    let recorded_key = match entry.get("fingerprint").and_then(from_hex_u64) {
        Some(key) => key,
        None => return false,
    };
    let plan = match entry.get("floorplan").and_then(floorplan_from_json) {
        Some(plan) => Arc::new(plan),
        None => return false,
    };
    match entry.get("kind").and_then(Json::as_str) {
        Some("steady") => {
            if operator_fingerprint(&plan, lateral, z) != recorded_key {
                return false;
            }
            engine.cache().steady_operator(&plan, lateral, z);
            engine.record_recipe(recorded_key, &plan, RecipeKind::Steady);
            true
        }
        Some("spectral") => {
            let tolerance = match entry.get("tolerance").and_then(from_hex_bits) {
                Some(t) => t,
                None => return false,
            };
            let (nx, ny) = match infer_grid(&plan) {
                Ok(grid) => grid,
                Err(_) => return false,
            };
            if spectral_operator_fingerprint(&plan, lateral, z, nx, ny, tolerance) != recorded_key {
                return false;
            }
            if engine
                .cache()
                .spectral_operator(&plan, lateral, z, tolerance)
                .is_err()
            {
                return false;
            }
            engine.record_recipe(recorded_key, &plan, RecipeKind::Spectral { tolerance });
            true
        }
        Some("transient") => {
            let dt_s = match entry.get("dt_s").and_then(from_hex_bits) {
                Some(dt) => dt,
                None => return false,
            };
            let scheme = match entry
                .get("scheme")
                .and_then(Json::as_str)
                .and_then(scheme_from_tag)
            {
                Some(scheme) => scheme,
                None => return false,
            };
            // The propagator is keyed on the (cached) steady operator
            // it factors through, so warm that first.
            let op = engine.cache().steady_operator(&plan, lateral, z);
            let caps = silicon_block_capacitances(&plan);
            if propagator_fingerprint(&op, &caps, dt_s, scheme) != recorded_key {
                return false;
            }
            if engine
                .cache()
                .transient_operator(&op, &caps, dt_s, scheme)
                .is_err()
            {
                return false;
            }
            engine.record_recipe(recorded_key, &plan, RecipeKind::Transient { dt_s, scheme });
            true
        }
        Some("map") => {
            let (nx, ny) = match (
                entry.get("nx").and_then(Json::as_usize),
                entry.get("ny").and_then(Json::as_usize),
            ) {
                (Some(nx), Some(ny)) if nx > 0 && ny > 0 => (nx, ny),
                _ => return false,
            };
            if map_operator_fingerprint(&plan, lateral, z, nx, ny) != recorded_key {
                return false;
            }
            engine.cache().map_operator(&plan, lateral, z, nx, ny);
            engine.record_recipe(recorded_key, &plan, RecipeKind::Map { nx, ny });
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FleetEngineBuilder;
    use crate::jobs::parse_jsonl;

    fn request_text() -> &'static str {
        r#"
{"type": "floorplan", "name": "fp", "tiles": {"rows": 4, "cols": 4, "p_min": 0.02, "p_max": 0.06, "seed": 7}}
{"type": "steady", "floorplan": "fp", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0]}
{"type": "transient", "floorplan": "fp", "dynamic_w": 0.2, "leakage_w": 0.02, "dt_s": 1e-4, "steps": 10}
{"type": "map", "floorplan": "fp", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [1.0], "grid": {"nx": 8, "ny": 8}}
"#
    }

    fn served_engine() -> FleetEngine {
        let request = parse_jsonl(request_text()).expect("valid request");
        let engine = FleetEngineBuilder::new()
            .threads(2)
            .request(&request)
            .build()
            .expect("valid configuration");
        let report = engine.run(&request.jobs);
        assert!(report.jobs.iter().all(|j| j.outcome.is_ok()));
        engine
    }

    #[test]
    fn floorplan_round_trips_bit_exactly() {
        let plan = Floorplan::paper_three_blocks();
        let json = floorplan_to_json(&plan);
        let back = floorplan_from_json(&json).expect("round-trip");
        assert_eq!(back.fingerprint(), plan.fingerprint());
    }

    #[test]
    fn manifest_is_deterministic_and_versioned() {
        let engine = served_engine();
        let m1 = manifest(&engine).render();
        let m2 = manifest(&engine).render();
        assert_eq!(m1, m2);
        let parsed = parse_manifest(&m1).expect("manifest parses");
        let entries = parsed
            .get("entries")
            .and_then(Json::as_array)
            .expect("entries");
        // Steady + transient + map recipes (no spectral: 16 blocks < threshold).
        assert_eq!(entries.len(), 3);
    }

    #[test]
    fn warm_rebuilds_and_matches_fingerprints() {
        let saved = manifest(&served_engine());
        let request = parse_jsonl(request_text()).expect("valid request");
        let fresh = FleetEngineBuilder::new()
            .threads(2)
            .request(&request)
            .build()
            .expect("valid configuration");
        let report = warm(&fresh, &saved);
        assert_eq!(
            report,
            WarmReport {
                rebuilt: 3,
                skipped: 0
            }
        );
        // Warmed caches make every first job a hit: zero further misses.
        let before = (
            fresh.cache().steady_stats().misses,
            fresh.cache().transient_stats().misses,
            fresh.cache().map_stats().misses,
        );
        let run = fresh.run(&request.jobs);
        assert!(run.jobs.iter().all(|j| j.outcome.is_ok()));
        assert_eq!(fresh.cache().steady_stats().misses, before.0);
        assert_eq!(fresh.cache().transient_stats().misses, before.1);
        assert_eq!(fresh.cache().map_stats().misses, before.2);
        // And a save → warm → save chain is idempotent.
        assert_eq!(manifest(&fresh).render(), saved.render());
    }

    #[test]
    fn warm_skips_stale_entries() {
        let saved = manifest(&served_engine());
        // A warming engine with different image orders computes
        // different fingerprints for every entry: all skipped.
        let mut config = crate::engine::FleetConfig::default();
        config.lateral_order += 1;
        let fresh = FleetEngineBuilder::new()
            .config(config)
            .build()
            .expect("valid configuration");
        let report = warm(&fresh, &saved);
        assert_eq!(report.rebuilt, 0);
        assert_eq!(report.skipped, 3);
    }

    #[test]
    fn parse_manifest_refuses_unknown_versions() {
        assert!(matches!(
            parse_manifest(r#"{"manifest_version": 99, "entries": []}"#),
            Err(ManifestError::Schema(_))
        ));
        assert!(matches!(
            parse_manifest(r#"{"entries": []}"#),
            Err(ManifestError::Schema(_))
        ));
        assert!(matches!(
            parse_manifest("not json"),
            Err(ManifestError::Json(_))
        ));
        assert!(parse_manifest(r#"{"manifest_version": 1, "entries": []}"#).is_ok());
    }
}
