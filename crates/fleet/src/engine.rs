//! The fleet engine: a work-stealing scheduler serving heterogeneous
//! jobs across many floorplans off one shared operator cache.
//!
//! Every job is independent, but jobs against the *same* floorplan
//! share their dominant cold cost — operator assembly and propagator
//! factorization — through the fingerprint-keyed [`OperatorCache`]:
//! the first job on a floorplan builds (single-flight), every later
//! job starts solving immediately. Jobs are claimed through
//! [`ptherm_par::steal::StealQueues`], so a worker that drew a pile of
//! cheap transients steals a sweep from a loaded sibling instead of
//! going idle.
//!
//! Determinism contract: each job runs single-threaded inside its
//! worker with a fixed batch width, every cache hit hands back a
//! bit-identical operator (build is deterministic, fingerprint equality
//! ⇒ identical entries), and results are collected by submission
//! index — so a fleet report is **bitwise independent of the worker
//! count, the steal pattern and the cache state**. The tests assert
//! all three.
//!
//! # Example
//!
//! ```
//! use ptherm_fleet::{parse_jsonl, FleetEngineBuilder};
//!
//! let request = parse_jsonl(r#"
//! {"type": "floorplan", "name": "fp", "tiles": {"rows": 2, "cols": 2, "p_min": 0.02, "p_max": 0.06, "seed": 3}}
//! {"type": "steady", "floorplan": "fp", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0, 1.1]}
//! "#).expect("valid request");
//! let engine = FleetEngineBuilder::new()
//!     .request(&request)
//!     .build()
//!     .expect("valid configuration");
//! let report = engine.run(&request.jobs);
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].outcome.is_ok());
//! ```

use crate::cache::{CacheStats, OperatorCache};
use crate::faults::{xorshift64, Fault, FaultPlan};
use crate::jobs::{
    steady_result_fingerprint, DeltaJob, EnvelopeJob, JobSpec, MapJob, PowerSpec, SteadyJob,
    TransientJob,
};
use crate::json::Json;
use crate::persist::{CacheRecipe, RecipeKind};
use ptherm_core::cosim::spectral::DEFAULT_REFINEMENT_TOLERANCE;
use ptherm_core::cosim::sweep::{ScaledTechPower, Scenario, ScenarioPowerModel};
use ptherm_core::cosim::{
    infer_grid, BatchPowerModel, BiasedTechPower, EnvelopeReport, EnvelopeSpec, EnvelopeSpecError,
    MapReport, RunOptions, ScenarioGrid, SpectralGridError, SpectralOperator, SweepBackend,
    SweepEngine, SweepOutcome, SweepReport, ThermalOperator, TransientConfig, TransientError,
    TransientReport, SPECTRAL_AUTO_THRESHOLD,
};
use ptherm_core::cosim::{
    operator_fingerprint, propagator_fingerprint, spectral_operator_fingerprint,
};
use ptherm_core::thermal::capacitance::silicon_block_capacitances;
use ptherm_core::thermal::map::map_operator_fingerprint;
use ptherm_core::ElectroThermalSolver;
use ptherm_floorplan::Floorplan;
use ptherm_math::MultiVec;
use ptherm_par::steal::StealQueues;
use ptherm_par::CancelToken;
use ptherm_tech::Technology;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads claiming jobs (jobs themselves run
    /// single-threaded: the fleet is the parallelism).
    pub threads: usize,
    /// Capacity of each operator cache (steady and transient count
    /// separately).
    pub cache_capacity: usize,
    /// Batch width of each job's Picard/transient hot path.
    pub batch_lanes: usize,
    /// `true` (production): amortize factorizations through the cache.
    /// `false`: factor per job — the honest cold baseline the `fleet`
    /// bench measures the cache against; results are bit-identical.
    pub amortize: bool,
    /// Lateral image order of every operator build.
    pub lateral_order: usize,
    /// Depth-series order of every operator build.
    pub z_order: usize,
    /// Technology kits scenario grids index into.
    pub technologies: Vec<Technology>,
    /// Retry budget and backoff schedule for transient-classified job
    /// failures. Permanent errors (schema, unknown floorplan, bad
    /// waveform, panics, deadlines) never retry.
    pub retry: RetryPolicy,
}

impl Default for FleetConfig {
    /// One worker per CPU (honouring `PTHERM_THREADS`), 32-entry
    /// caches, the workspace image orders and the 120 nm kit.
    fn default() -> Self {
        FleetConfig {
            threads: ptherm_par::default_threads(),
            cache_capacity: 32,
            batch_lanes: 64,
            amortize: true,
            lateral_order: 2,
            z_order: 9,
            technologies: vec![Technology::cmos_120nm()],
            retry: RetryPolicy::default(),
        }
    }
}

/// Bounded exponential backoff for transient-classified job failures.
///
/// The schedule is **deterministic**: the delay before retrying
/// `(job, attempt)` is a pure function of this policy and those two
/// indices — the jitter comes from a seeded xorshift, not the clock —
/// so a retried fleet run is reproducible and the chaos suite can
/// assert exact attempt counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (1 = never retry).
    pub max_attempts: usize,
    /// Backoff before retry `k` starts from `base_delay_ms · 2^(k-1)`.
    pub base_delay_ms: u64,
    /// Hard cap on any single backoff delay, ms.
    pub max_delay_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms base doubling to a 50 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 1,
            max_delay_ms: 50,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Why a [`FleetEngineBuilder`] refused to construct an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetConfigError {
    /// `threads` was zero.
    ZeroThreads,
    /// `cache_capacity` was zero (a cache that can hold nothing would
    /// rebuild every operator per job; use `amortize(false)` to opt
    /// out of caching explicitly instead).
    ZeroCacheCapacity,
    /// `batch_lanes` was zero.
    ZeroBatchLanes,
    /// `retry.max_attempts` was zero (1 means "never retry").
    ZeroRetryAttempts,
    /// No technology kits were configured: scenario grids would have
    /// nothing to index into.
    NoTechnologies,
}

impl fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetConfigError::ZeroThreads => write!(f, "threads must be at least 1"),
            FleetConfigError::ZeroCacheCapacity => write!(
                f,
                "cache_capacity must be at least 1 (disable caching with amortize(false))"
            ),
            FleetConfigError::ZeroBatchLanes => write!(f, "batch_lanes must be at least 1"),
            FleetConfigError::ZeroRetryAttempts => {
                write!(f, "retry.max_attempts must be at least 1 (1 = never retry)")
            }
            FleetConfigError::NoTechnologies => {
                write!(f, "at least one technology kit is required")
            }
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// The one validated construction path for [`FleetEngine`]s.
///
/// Batch mode, serve mode, the benches and the chaos suite all build
/// their engines here, so configuration invariants are checked in
/// exactly one place — the legacy constructors
/// ([`FleetEngine::new`] / [`FleetEngine::from_request`] /
/// [`FleetEngine::with_faults`]) survive as deprecated shims over
/// this builder.
///
/// # Example
///
/// ```
/// use ptherm_fleet::FleetEngineBuilder;
///
/// let engine = FleetEngineBuilder::new()
///     .threads(2)
///     .cache_capacity(16)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(engine.config().threads, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FleetEngineBuilder {
    config: FleetConfig,
    faults: Option<FaultPlan>,
    floorplans: Vec<(String, Floorplan)>,
}

impl FleetEngineBuilder {
    /// A builder seeded with [`FleetConfig::default`], no fault plan
    /// and no floorplans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the whole configuration (validated at [`Self::build`]).
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker-thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the per-kind operator cache capacity.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Sets the batch width of each job's hot path.
    #[must_use]
    pub fn batch_lanes(mut self, lanes: usize) -> Self {
        self.config.batch_lanes = lanes;
        self
    }

    /// Enables (default) or disables cache amortization.
    #[must_use]
    pub fn amortize(mut self, amortize: bool) -> Self {
        self.config.amortize = amortize;
        self
    }

    /// Sets the lateral and depth-series image orders of every
    /// operator build.
    #[must_use]
    pub fn image_orders(mut self, lateral: usize, z: usize) -> Self {
        self.config.lateral_order = lateral;
        self.config.z_order = z;
        self
    }

    /// Replaces the technology kits scenario grids index into.
    #[must_use]
    pub fn technologies(mut self, technologies: Vec<Technology>) -> Self {
        self.config.technologies = technologies;
        self
    }

    /// Sets the retry budget and backoff schedule.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Installs a deterministic fault-injection plan (chaos testing
    /// only — a production engine carries no plan).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Registers a named floorplan.
    #[must_use]
    pub fn floorplan(mut self, name: impl Into<String>, plan: Floorplan) -> Self {
        self.floorplans.push((name.into(), plan));
        self
    }

    /// Registers every floorplan of a parsed request.
    #[must_use]
    pub fn request(mut self, request: &crate::jobs::FleetRequest) -> Self {
        for (name, plan) in &request.floorplans {
            self.floorplans.push((name.clone(), plan.clone()));
        }
        self
    }

    /// Validates the configuration and constructs the engine.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`FleetConfigError`].
    pub fn build(self) -> Result<FleetEngine, FleetConfigError> {
        if self.config.threads == 0 {
            return Err(FleetConfigError::ZeroThreads);
        }
        if self.config.cache_capacity == 0 {
            return Err(FleetConfigError::ZeroCacheCapacity);
        }
        if self.config.batch_lanes == 0 {
            return Err(FleetConfigError::ZeroBatchLanes);
        }
        if self.config.retry.max_attempts == 0 {
            return Err(FleetConfigError::ZeroRetryAttempts);
        }
        if self.config.technologies.is_empty() {
            return Err(FleetConfigError::NoTechnologies);
        }
        let mut engine = FleetEngine::from_parts(self.config, self.faults);
        for (name, plan) in self.floorplans {
            engine.register(name, plan);
        }
        Ok(engine)
    }
}

impl RetryPolicy {
    /// The backoff delay before retrying `job` after its (1-based)
    /// `attempt`-th failure: exponential in the attempt, capped at
    /// [`Self::max_delay_ms`], plus up to 50% deterministic jitter
    /// seeded by `(jitter_seed, job, attempt)`.
    pub fn backoff_delay_ms(&self, job: usize, attempt: usize) -> u64 {
        let doublings = attempt.saturating_sub(1).min(16) as u32;
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << doublings)
            .min(self.max_delay_ms);
        if base == 0 {
            return 0;
        }
        let mut state = self.jitter_seed ^ ((job as u64) << 32) ^ attempt as u64;
        state = xorshift64(state | 1);
        let jitter = state % (base / 2 + 1);
        (base + jitter).min(self.max_delay_ms)
    }
}

/// Why a job could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job referenced a floorplan this engine has not registered.
    UnknownFloorplan(String),
    /// The transient configuration was rejected.
    Transient(TransientError),
    /// The job requested the spectral backend on a floorplan with no
    /// coincident tile grid.
    Backend(SpectralGridError),
    /// The job's worker panicked; the panic was caught at the job
    /// boundary and every other job completed unaffected.
    WorkerPanic {
        /// The panic payload's message (or a placeholder for
        /// non-string payloads).
        payload: String,
    },
    /// The job's `deadline_ms` budget ran out; the solve retired
    /// cooperatively at its next checkpoint.
    DeadlineExceeded {
        /// Wall time the job had spent when it retired, ms.
        elapsed_ms: u64,
        /// Scenarios/transients that fully resolved before the
        /// deadline — the job's partial progress.
        resolved: usize,
        /// Scenarios/transients the job asked for.
        total: usize,
    },
    /// A fault-injection plan failed this attempt with a retryable
    /// (transient-classified) error.
    Injected {
        /// 1-based attempt the fault fired on.
        attempt: usize,
    },
    /// An envelope job's bisection spec was rejected by the core's
    /// validation. Unreachable through the JSONL protocol (the parser
    /// refuses bad specs at admission with a line number), but typed
    /// rather than unwrapped for programmatic [`JobSpec`] callers.
    Envelope(EnvelopeSpecError),
}

impl JobError {
    /// True for transient-classified failures the retry machinery may
    /// re-attempt. Schema-level errors, panics and blown deadlines are
    /// permanent: retrying them re-runs a failure, not a race.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Injected { .. })
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::UnknownFloorplan(name) => write!(f, "unknown floorplan {name:?}"),
            JobError::Transient(e) => write!(f, "transient setup failed: {e}"),
            JobError::Backend(e) => write!(f, "spectral backend unavailable: {e}"),
            JobError::WorkerPanic { payload } => write!(f, "worker panic: {payload}"),
            JobError::DeadlineExceeded {
                elapsed_ms,
                resolved,
                total,
            } => write!(
                f,
                "deadline exceeded after {elapsed_ms} ms ({resolved}/{total} runs resolved)"
            ),
            JobError::Injected { attempt } => {
                write!(f, "injected transient fault (attempt {attempt})")
            }
            JobError::Envelope(e) => write!(f, "invalid envelope spec: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// A completed job's payload.
#[derive(Debug, Clone)]
pub enum JobReport {
    /// Steady-state sweep outcomes.
    Steady(SweepReport),
    /// Transient outcomes.
    Transient(TransientReport),
    /// Spatial map outcomes.
    Map(MapReport),
    /// Delta re-solve outcomes: the warm-started sweep plus how many
    /// of its scenarios actually received a base-derived seed.
    Delta {
        /// The delta job's sweep (bitwise identical to a cold solve
        /// of the same scenarios — warm starting changes iteration
        /// counts, never fixed points).
        report: SweepReport,
        /// Scenarios seeded from a converged base fixed point.
        seeded: usize,
    },
    /// Runaway-envelope bisection outcomes.
    Envelope(EnvelopeReport),
}

impl JobReport {
    /// Scenario/transient/fiber count.
    pub fn len(&self) -> usize {
        match self {
            JobReport::Steady(r) => r.len(),
            JobReport::Transient(r) => r.len(),
            JobReport::Map(r) => r.len(),
            JobReport::Delta { report, .. } => report.len(),
            JobReport::Envelope(r) => r.len(),
        }
    }

    /// True for an empty report.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scenarios that resolved successfully (converged / finished /
    /// classified).
    pub fn resolved_count(&self) -> usize {
        match self {
            JobReport::Steady(r) => r.converged_count(),
            JobReport::Transient(r) => r.finished_count(),
            JobReport::Map(r) => r.converged_count(),
            JobReport::Delta { report, .. } => report.converged_count(),
            JobReport::Envelope(r) => r.resolved_count(),
        }
    }

    /// Hottest successful operating point / excursion, K. Map jobs
    /// report the hottest **tile** across their rendered maps — the
    /// spatial answer a block-level peak cannot give. Envelope jobs
    /// report `None`: their payload is boundary locations, not
    /// temperatures.
    pub fn max_peak_temperature(&self) -> Option<f64> {
        match self {
            JobReport::Steady(r) => r.max_peak_temperature(),
            JobReport::Transient(r) => r.max_peak_temperature(),
            JobReport::Map(r) => r.max_map_temperature(),
            JobReport::Delta { report, .. } => report.max_peak_temperature(),
            JobReport::Envelope(_) => None,
        }
    }
}

/// One job's record in a fleet report.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission index into the job list.
    pub index: usize,
    /// Report or typed failure.
    pub outcome: Result<JobReport, JobError>,
    /// Backend that actually ran the job (`None` for failed jobs).
    /// Map and transient jobs always run dense; steady jobs resolve
    /// their requested backend against the floorplan.
    pub backend: Option<SweepBackend>,
    /// Attempts the job consumed, including the first (1 = no retry).
    pub attempts: usize,
    /// Wall time this job spent on its worker, ns (retries included).
    pub wall_ns: u64,
}

impl JobRecord {
    /// Renders the per-job JSONL result line the `fleet` binary emits
    /// (schema in `docs/ARCHITECTURE.md`).
    pub fn to_json(&self, spec: &JobSpec) -> Json {
        let mut fields = vec![("job".into(), Json::Number(self.index as f64))];
        // Echo the protocol version only when the request line pinned
        // it explicitly: version-silent clients (and the pre-versioning
        // golden fixtures) keep byte-stable lines.
        if let Some(v) = spec.version() {
            fields.push(("v".into(), Json::Number(v as f64)));
        }
        fields.push(("kind".into(), Json::String(spec.kind().into())));
        fields.push((
            "floorplan".into(),
            Json::String(spec.floorplan().to_string()),
        ));
        if let JobSpec::Map(m) = spec {
            fields.push((
                "grid".into(),
                Json::Array(vec![Json::Number(m.nx as f64), Json::Number(m.ny as f64)]),
            ));
        }
        if let JobSpec::Delta(d) = spec {
            if let Some(base) = &d.base.name {
                fields.push(("base".into(), Json::String(base.clone())));
            }
        }
        if let JobSpec::Envelope(e) = spec {
            fields.push(("axis".into(), Json::String(e.axis.name().into())));
        }
        match &self.outcome {
            Ok(report) => {
                fields.push(("ok".into(), Json::Bool(true)));
                if let Some(backend) = self.backend {
                    fields.push(("backend".into(), Json::String(backend.name().into())));
                }
                fields.push(("runs".into(), Json::Number(report.len() as f64)));
                fields.push((
                    "resolved".into(),
                    Json::Number(report.resolved_count() as f64),
                ));
                fields.push((
                    "max_peak_k".into(),
                    report
                        .max_peak_temperature()
                        .map_or(Json::Null, Json::Number),
                ));
                if let JobReport::Delta { seeded, .. } = report {
                    fields.push(("seeded".into(), Json::Number(*seeded as f64)));
                }
                if let JobReport::Envelope(r) = report {
                    fields.push(("bracketed".into(), Json::Number(r.bracketed_count() as f64)));
                    fields.push(("solves".into(), Json::Number(r.solves as f64)));
                    fields.push((
                        "exhaustive_solves".into(),
                        Json::Number(r.exhaustive_solves as f64),
                    ));
                }
            }
            Err(error) => {
                fields.push(("ok".into(), Json::Bool(false)));
                fields.push(("error".into(), Json::String(error.to_string())));
            }
        }
        // Emitted only when a retry actually happened, so the common
        // fault-free line (and the pinned golden fixtures) stay stable.
        if self.attempts > 1 {
            fields.push(("attempts".into(), Json::Number(self.attempts as f64)));
        }
        fields.push(("wall_ns".into(), Json::Number(self.wall_ns as f64)));
        Json::Object(fields)
    }
}

/// A whole fleet run: per-job records plus scheduler/cache telemetry.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per submitted job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Cross-worker job steals.
    pub steals: u64,
    /// Steady-operator cache counters.
    pub steady_cache: CacheStats,
    /// Transient-propagator cache counters.
    pub transient_cache: CacheStats,
    /// Map-operator cache counters.
    pub map_cache: CacheStats,
    /// Spectral-operator cache counters.
    pub spectral_cache: CacheStats,
    /// Steady-result cache counters (delta-base fixed points).
    pub result_cache: CacheStats,
}

impl FleetReport {
    /// Jobs that produced a report.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// Jobs that ended in a typed failure.
    pub fn error_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_err()).count()
    }

    /// Retries spent across the fleet (attempts beyond each job's
    /// first, whether or not the retry ultimately succeeded).
    pub fn retry_count(&self) -> usize {
        self.jobs.iter().map(|j| j.attempts.saturating_sub(1)).sum()
    }

    /// Jobs that ended in a caught worker panic.
    pub fn panic_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.outcome, Err(JobError::WorkerPanic { .. })))
            .count()
    }
}

/// The fleet scheduler (see the [module docs](self)).
#[derive(Debug)]
pub struct FleetEngine {
    floorplans: HashMap<String, Arc<Floorplan>>,
    cache: OperatorCache,
    config: FleetConfig,
    faults: Option<FaultPlan>,
    /// Rebuild recipes of every operator the amortized paths have
    /// cached, keyed by the operator's cache fingerprint — what
    /// [`crate::persist`] serializes so a restarted service can warm
    /// its caches before the first job arrives.
    recipes: Mutex<BTreeMap<u64, CacheRecipe>>,
}

impl FleetEngine {
    /// The one real constructor; everything public funnels through
    /// [`FleetEngineBuilder::build`].
    fn from_parts(config: FleetConfig, faults: Option<FaultPlan>) -> Self {
        let cache = OperatorCache::new(config.cache_capacity);
        FleetEngine {
            floorplans: HashMap::new(),
            cache,
            config,
            faults,
            recipes: Mutex::new(BTreeMap::new()),
        }
    }

    /// An engine with no floorplans registered yet.
    #[deprecated(
        since = "0.1.0",
        note = "use `FleetEngineBuilder` (validated construction)"
    )]
    pub fn new(config: FleetConfig) -> Self {
        Self::from_parts(config, None)
    }

    /// Installs a deterministic fault-injection plan: scheduled faults
    /// fire by `(job index, attempt)` during [`Self::run`]. Chaos
    /// testing only — a production engine carries no plan.
    #[deprecated(since = "0.1.0", note = "use `FleetEngineBuilder::faults`")]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Replaces (or clears) the fault plan between runs — how the chaos
    /// suite checks a faulted engine serves a subsequent fault-free
    /// queue with zero residual cache poisoning.
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// An engine pre-loaded with a parsed request's floorplans.
    #[deprecated(since = "0.1.0", note = "use `FleetEngineBuilder::request`")]
    pub fn from_request(config: FleetConfig, request: &crate::jobs::FleetRequest) -> Self {
        let mut engine = Self::from_parts(config, None);
        for (name, plan) in &request.floorplans {
            engine.register(name.clone(), plan.clone());
        }
        engine
    }

    /// Registers (or replaces) a named floorplan.
    pub fn register(&mut self, name: impl Into<String>, floorplan: Floorplan) {
        self.floorplans.insert(name.into(), Arc::new(floorplan));
    }

    /// Registered floorplan count.
    pub fn floorplan_count(&self) -> usize {
        self.floorplans.len()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs a mixed job queue to completion and reports every job in
    /// submission order. Never panics on a malformed job — failures are
    /// per-job [`JobError`]s. A job whose worker panics mid-solve is
    /// caught at the job boundary ([`JobError::WorkerPanic`]); every
    /// other job completes bit-identically to a fault-free run.
    /// Transient-classified failures retry under
    /// [`FleetConfig::retry`]'s budget with deterministic backoff.
    pub fn run(&self, jobs: &[JobSpec]) -> FleetReport {
        let workers = self.config.threads.clamp(1, jobs.len().max(1));
        let queues = StealQueues::split(workers, jobs.len());
        let per_worker = ptherm_par::par_workers(workers, |w| {
            let mut mine = Vec::new();
            while let Some(index) = queues.pop(w) {
                mine.push(self.run_one(&jobs[index], index));
            }
            mine
        });
        let mut slots: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
        for record in per_worker.into_iter().flatten() {
            let index = record.index;
            slots[index] = Some(record);
        }
        FleetReport {
            jobs: slots
                .into_iter()
                // lint:allow(panic-freedom) — StealQueues::pop yields each index in 0..jobs.len() exactly once, so every slot was filled
                .map(|r| r.expect("every job claimed exactly once"))
                .collect(),
            steals: queues.steals(),
            steady_cache: self.cache.steady_stats(),
            transient_cache: self.cache.transient_stats(),
            map_cache: self.cache.map_stats(),
            spectral_cache: self.cache.spectral_stats(),
            result_cache: self.cache.result_stats(),
        }
    }

    /// Cache counters (live; [`Self::run`] snapshots them per report).
    pub fn cache(&self) -> &OperatorCache {
        &self.cache
    }

    /// Runs one job to completion — panic boundary, retry budget,
    /// deterministic backoff, wall-clock timing — resolving its
    /// floorplan from the engine's registry. This is the per-job unit
    /// [`Self::run`]'s workers execute; the serve front-end calls
    /// [`Self::run_resolved`] instead with an admission-time plan.
    pub fn run_one(&self, spec: &JobSpec, index: usize) -> JobRecord {
        self.run_inner(spec, None, index)
    }

    /// [`Self::run_one`] with the floorplan already resolved — how
    /// serve-mode connections run jobs against *connection-local*
    /// floorplan registries: the plan was bound to the job at admission
    /// ([`crate::jobs::RequestParser`]), so the engine's own registry
    /// is never consulted and two connections' same-named floorplans
    /// cannot collide. Identical solve path (and bit pattern) to a
    /// batch run of the same job.
    pub fn run_resolved(&self, spec: &JobSpec, plan: &Arc<Floorplan>, index: usize) -> JobRecord {
        self.run_inner(spec, Some(plan), index)
    }

    fn run_inner(&self, spec: &JobSpec, plan: Option<&Arc<Floorplan>>, index: usize) -> JobRecord {
        let started = Instant::now();
        let mut attempts = 1;
        let mut result = self.attempt_job(spec, plan, index, attempts);
        while matches!(&result, Err(e) if e.is_transient())
            && attempts < self.config.retry.max_attempts
        {
            let delay = self.config.retry.backoff_delay_ms(index, attempts);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            attempts += 1;
            result = self.attempt_job(spec, plan, index, attempts);
        }
        let (outcome, backend) = match result {
            Ok((report, backend)) => (Ok(report), Some(backend)),
            Err(e) => (Err(e), None),
        };
        JobRecord {
            index,
            outcome,
            backend,
            attempts,
            wall_ns: started.elapsed().as_nanos() as u64,
        }
    }

    /// One attempt at one job, with the panic boundary. `catch_unwind`
    /// is sound here because a panicking attempt leaks no broken state
    /// into the engine: the operator caches recover their single-flight
    /// reservations via `BuildGuard`'s unwind path, and everything else
    /// an attempt touches is owned by the attempt.
    fn attempt_job(
        &self,
        spec: &JobSpec,
        plan: Option<&Arc<Floorplan>>,
        index: usize,
        attempt: usize,
    ) -> Result<(JobReport, SweepBackend), JobError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.run_job(spec, plan, index, attempt)
        }))
        .unwrap_or_else(|payload| {
            let payload = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(JobError::WorkerPanic { payload })
        })
    }

    fn run_job(
        &self,
        spec: &JobSpec,
        plan: Option<&Arc<Floorplan>>,
        index: usize,
        attempt: usize,
    ) -> Result<(JobReport, SweepBackend), JobError> {
        let fault = self
            .faults
            .as_ref()
            .and_then(|faults| faults.fault_for(index, attempt));
        match fault {
            Some(Fault::TransientFault) => return Err(JobError::Injected { attempt }),
            Some(Fault::EvictCaches) => {
                self.cache.evict_all();
            }
            // Delay fires below (inside the deadline window);
            // BuilderPanic / SolverPanic fire inside the solve.
            _ => {}
        }
        let cancel = spec
            .deadline_ms()
            .map(|ms| CancelToken::with_deadline(Duration::from_millis(ms)));
        // The stall counts against the job's deadline — a Delay longer
        // than `deadline_ms` deterministically blows it.
        if let Some(Fault::Delay { ms }) = fault {
            std::thread::sleep(Duration::from_millis(*ms));
        }
        let floorplan = match plan {
            Some(resolved) => resolved,
            None => self.floorplan(spec.floorplan())?,
        };
        let (report, backend) = match spec {
            JobSpec::Steady(job) => self
                .run_steady(job, floorplan, cancel.as_ref(), fault)
                .map(|(r, backend)| (JobReport::Steady(r), backend))?,
            JobSpec::Transient(job) => self
                .run_transient(job, floorplan, cancel.as_ref(), fault)
                .map(|r| (JobReport::Transient(r), SweepBackend::Dense))?,
            JobSpec::Map(job) => self
                .run_map(job, floorplan, cancel.as_ref(), fault)
                .map(|r| (JobReport::Map(r), SweepBackend::Dense))?,
            JobSpec::Delta(job) => self
                .run_delta(job, floorplan, cancel.as_ref(), fault)
                .map(|(report, seeded, backend)| (JobReport::Delta { report, seeded }, backend))?,
            JobSpec::Envelope(job) => self
                .run_envelope(job, floorplan, cancel.as_ref(), fault)
                .map(|(r, backend)| (JobReport::Envelope(r), backend))?,
        };
        if let Some(token) = &cancel {
            if token.fired() {
                return Err(JobError::DeadlineExceeded {
                    elapsed_ms: token.elapsed().as_millis() as u64,
                    resolved: report.resolved_count(),
                    total: report.len(),
                });
            }
        }
        Ok((report, backend))
    }

    /// The per-job solver, carrying the fleet's image orders.
    fn solver(&self, floorplan: &Arc<Floorplan>) -> ElectroThermalSolver {
        let mut solver = ElectroThermalSolver::new(floorplan.as_ref().clone());
        solver.lateral_order = self.config.lateral_order;
        solver.z_order = self.config.z_order;
        solver
    }

    /// The per-job [`SweepEngine`]: configured solver + the floorplan's
    /// dense operator, cached or cold per [`FleetConfig::amortize`].
    /// `builder_panic` injects [`Fault::BuilderPanic`] inside the build
    /// closure — under the cache's single-flight reservation when
    /// amortizing, so the chaos suite exercises the same recovery path
    /// a real build failure takes.
    fn sweep_engine(&self, floorplan: &Arc<Floorplan>, builder_panic: bool) -> SweepEngine {
        let operator = if self.config.amortize {
            let operator = self.cache.steady_operator_hooked(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                || {
                    if builder_panic {
                        // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                        panic!("injected fault: builder panic");
                    }
                },
            );
            // A cache hit skips the build closure; the scheduled fault
            // must fire deterministically regardless of cache state.
            if builder_panic {
                // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                panic!("injected fault: builder panic");
            }
            let key =
                operator_fingerprint(floorplan, self.config.lateral_order, self.config.z_order);
            self.record_recipe(key, floorplan, RecipeKind::Steady);
            operator
        } else {
            if builder_panic {
                // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                panic!("injected fault: builder panic");
            }
            Arc::new(ThermalOperator::with_image_orders_threaded(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                1,
            ))
        };
        SweepEngine::with_operator(self.solver(floorplan), operator)
            .threads(1)
            .batch_lanes(self.config.batch_lanes)
    }

    /// The spectral counterpart of [`Self::sweep_engine`]: configured
    /// solver + the floorplan's [`SpectralOperator`], cached or cold per
    /// [`FleetConfig::amortize`]. Never touches the dense cache.
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when no coincident tile grid exists.
    fn spectral_engine(
        &self,
        floorplan: &Arc<Floorplan>,
        builder_panic: bool,
    ) -> Result<SweepEngine, SpectralGridError> {
        let operator = if self.config.amortize {
            let operator = self.cache.spectral_operator_hooked(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                DEFAULT_REFINEMENT_TOLERANCE,
                || {
                    if builder_panic {
                        // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                        panic!("injected fault: builder panic");
                    }
                },
            )?;
            // A cache hit skips the build closure; the scheduled fault
            // must fire deterministically regardless of cache state.
            if builder_panic {
                // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                panic!("injected fault: builder panic");
            }
            if let Ok((nx, ny)) = infer_grid(floorplan) {
                let key = spectral_operator_fingerprint(
                    floorplan,
                    self.config.lateral_order,
                    self.config.z_order,
                    nx,
                    ny,
                    DEFAULT_REFINEMENT_TOLERANCE,
                );
                self.record_recipe(
                    key,
                    floorplan,
                    RecipeKind::Spectral {
                        tolerance: DEFAULT_REFINEMENT_TOLERANCE,
                    },
                );
            }
            operator
        } else {
            if builder_panic {
                // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
                panic!("injected fault: builder panic");
            }
            Arc::new(SpectralOperator::with_image_orders_threaded(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                DEFAULT_REFINEMENT_TOLERANCE,
                1,
            )?)
        };
        Ok(
            SweepEngine::with_spectral_operator(self.solver(floorplan), operator)
                .threads(1)
                .batch_lanes(self.config.batch_lanes),
        )
    }

    fn floorplan(&self, name: &str) -> Result<&Arc<Floorplan>, JobError> {
        self.floorplans
            .get(name)
            .ok_or_else(|| JobError::UnknownFloorplan(name.to_string()))
    }

    /// Remembers how to rebuild a cached operator (first recording per
    /// fingerprint wins; later jobs with the same key are cache hits of
    /// the same bit-identical build). Only the amortized paths record —
    /// a cold engine has no cache worth persisting.
    pub(crate) fn record_recipe(&self, key: u64, floorplan: &Arc<Floorplan>, kind: RecipeKind) {
        let mut recipes = match self.recipes.lock() {
            Ok(guard) => guard,
            // A panicking worker is caught at the job boundary; the map
            // itself is only ever mutated by this entry API, so the
            // poisoned state is intact.
            Err(poisoned) => poisoned.into_inner(),
        };
        recipes.entry(key).or_insert_with(|| CacheRecipe {
            floorplan: Arc::clone(floorplan),
            kind,
        });
    }

    /// Snapshot of every recorded rebuild recipe, fingerprint-keyed and
    /// deterministically ordered (for [`crate::persist::manifest`]).
    pub(crate) fn recipes_snapshot(&self) -> Vec<(u64, CacheRecipe)> {
        let recipes = match self.recipes.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        recipes
            .iter()
            .map(|(key, recipe)| (*key, recipe.clone()))
            .collect()
    }

    fn grid(&self, job: &SteadyJob) -> ScenarioGrid {
        let grid = ScenarioGrid::new(self.config.technologies.clone())
            .vdd_scales(job.vdd_scales.clone())
            .activities(job.activities.clone());
        match &job.ambients_k {
            Some(ambients) => grid.ambients_k(ambients.clone()),
            None => grid,
        }
    }

    /// Resolves a job's requested backend against the floorplan before
    /// building any operator: a spectral job must not pay the dense
    /// O(n²) build, and an explicit "spectral" on an off-grid floorplan
    /// is a typed job error, not a worker panic. Auto mirrors
    /// `SweepEngine::resolved_backend`.
    fn resolved_spectral(&self, job: &SteadyJob, floorplan: &Arc<Floorplan>) -> bool {
        match job.backend {
            SweepBackend::Spectral => true,
            SweepBackend::Dense => false,
            SweepBackend::Auto => {
                floorplan.blocks().len() >= SPECTRAL_AUTO_THRESHOLD && infer_grid(floorplan).is_ok()
            }
        }
    }

    /// Builds the resolved backend's [`SweepEngine`] for a steady-class
    /// job (steady / delta / envelope).
    fn steady_engine(
        &self,
        spectral: bool,
        floorplan: &Arc<Floorplan>,
        builder_panic: bool,
    ) -> Result<SweepEngine, JobError> {
        if spectral {
            self.spectral_engine(floorplan, builder_panic)
                .map_err(JobError::Backend)
        } else {
            Ok(self.sweep_engine(floorplan, builder_panic))
        }
    }

    fn run_steady(
        &self,
        job: &SteadyJob,
        floorplan: &Arc<Floorplan>,
        cancel: Option<&CancelToken>,
        fault: Option<&Fault>,
    ) -> Result<(SweepReport, SweepBackend), JobError> {
        let spectral = self.resolved_spectral(job, floorplan);
        let builder_panic = matches!(fault, Some(Fault::BuilderPanic));
        let engine = self.steady_engine(spectral, floorplan, builder_panic)?;
        let grid = self.grid(job);
        let model = FleetPower::for_job(job, floorplan, &grid);
        let model = FaultableModel::new(&model, fault);
        let backend = if spectral {
            SweepBackend::Spectral
        } else {
            SweepBackend::Dense
        };
        Ok((engine.run_with_cancel(&grid, &model, cancel), backend))
    }

    /// Solves a delta job: the (cached or re-solved) cold base report
    /// supplies per-scenario warm-start seeds, then the delta's own
    /// scenarios run through [`SweepEngine::sweep_seeded`].
    ///
    /// Determinism: the base is always solved **cold** — no faults, no
    /// deadline token — and the result cache only short-circuits that
    /// deterministic solve, so a cache hit, miss or eviction yields
    /// bitwise-identical delta output (`tests/delta_determinism.rs`).
    /// The job's deadline budget covers the delta solve; a cache-miss
    /// base solve runs to completion first and counts against the
    /// deadline via the caller's post-solve check.
    fn run_delta(
        &self,
        job: &DeltaJob,
        floorplan: &Arc<Floorplan>,
        cancel: Option<&CancelToken>,
        fault: Option<&Fault>,
    ) -> Result<(SweepReport, usize, SweepBackend), JobError> {
        let builder_panic = matches!(fault, Some(Fault::BuilderPanic));
        // The delta's engine first: an injected builder fault fires on
        // the delta's own build path, never inside the base solve.
        let delta_spectral = self.resolved_spectral(&job.job, floorplan);
        let delta_engine = self.steady_engine(delta_spectral, floorplan, builder_panic)?;

        let base_spectral = self.resolved_spectral(&job.base, floorplan);
        let base_engine = self.steady_engine(base_spectral, floorplan, false)?;
        let base_grid = self.grid(&job.base);
        let base_model = FleetPower::for_job(&job.base, floorplan, &base_grid);
        let solve_cold = || base_engine.run_with_cancel(&base_grid, &base_model, None);
        let base_report = if self.config.amortize {
            let key = steady_result_fingerprint(&job.base, floorplan.fingerprint(), base_spectral);
            self.cache.steady_result(key, solve_cold)
        } else {
            Arc::new(solve_cold())
        };

        // Converged base fixed points, with their scenario coordinates.
        let sink_k = floorplan.geometry().sink_temperature;
        let base_points: Vec<(Scenario, &[f64])> = base_report
            .outcomes
            .iter()
            .enumerate()
            .filter_map(|(id, outcome)| match outcome {
                SweepOutcome::Converged {
                    block_temperatures, ..
                } => Some((
                    base_grid.scenario(id, sink_k),
                    block_temperatures.as_slice(),
                )),
                _ => None,
            })
            .collect();

        let grid = self.grid(&job.job);
        // Nearest converged base scenario in (vdd, activity, ambient)
        // space, same technology only; ties break to the lowest base
        // index (strict `<` keeps the first minimum), so seeding is a
        // pure function of the two scenario lists.
        let seed_of = |id: usize| -> Option<Vec<f64>> {
            let target = grid.scenario(id, sink_k);
            let mut best: Option<(f64, &[f64])> = None;
            for (candidate, temps) in &base_points {
                if candidate.tech_index != target.tech_index {
                    continue;
                }
                let d = (candidate.vdd_scale - target.vdd_scale).powi(2)
                    + (candidate.activity - target.activity).powi(2)
                    + (candidate.ambient_k - target.ambient_k).powi(2);
                if best.as_ref().is_none_or(|(b, _)| d < *b) {
                    best = Some((d, temps));
                }
            }
            best.map(|(_, temps)| temps.to_vec())
        };
        let seeded = (0..grid.len()).filter(|&id| seed_of(id).is_some()).count();

        let model = FleetPower::for_job(&job.job, floorplan, &grid);
        let model = FaultableModel::new(&model, fault);
        let mut opts = RunOptions::new();
        if let Some(token) = cancel {
            opts = opts.cancel(token);
        }
        let report = delta_engine.sweep_seeded(&grid, &model, &seed_of, opts);
        let backend = if delta_spectral {
            SweepBackend::Spectral
        } else {
            SweepBackend::Dense
        };
        Ok((report, seeded, backend))
    }

    /// Runs an envelope job: [`SweepEngine::map_envelope`] over the
    /// job's fiber axes, bisecting the requested interval.
    fn run_envelope(
        &self,
        job: &EnvelopeJob,
        floorplan: &Arc<Floorplan>,
        cancel: Option<&CancelToken>,
        fault: Option<&Fault>,
    ) -> Result<(EnvelopeReport, SweepBackend), JobError> {
        let spectral = self.resolved_spectral(&job.base, floorplan);
        let builder_panic = matches!(fault, Some(Fault::BuilderPanic));
        let engine = self.steady_engine(spectral, floorplan, builder_panic)?;
        let grid = self.grid(&job.base);
        let model = FleetPower::for_job(&job.base, floorplan, &grid);
        let model = FaultableModel::new(&model, fault);
        let spec = EnvelopeSpec {
            axis: job.axis,
            lo: job.lo,
            hi: job.hi,
            tolerance: job.tolerance,
        };
        let mut opts = RunOptions::new();
        if let Some(token) = cancel {
            opts = opts.cancel(token);
        }
        let report = engine
            .map_envelope(&grid, &model, &spec, opts)
            .map_err(JobError::Envelope)?;
        let backend = if spectral {
            SweepBackend::Spectral
        } else {
            SweepBackend::Dense
        };
        Ok((report, backend))
    }

    fn run_map(
        &self,
        job: &MapJob,
        floorplan: &Arc<Floorplan>,
        cancel: Option<&CancelToken>,
        fault: Option<&Fault>,
    ) -> Result<MapReport, JobError> {
        let engine = self.sweep_engine(floorplan, matches!(fault, Some(Fault::BuilderPanic)));
        let grid = self.grid(&job.base);
        let model = FleetPower::for_job(&job.base, floorplan, &grid);
        let model = FaultableModel::new(&model, fault);
        let map_op = if self.config.amortize {
            let key = map_operator_fingerprint(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                job.nx,
                job.ny,
            );
            self.record_recipe(
                key,
                floorplan,
                RecipeKind::Map {
                    nx: job.nx,
                    ny: job.ny,
                },
            );
            self.cache.map_operator(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                job.nx,
                job.ny,
            )
        } else {
            Arc::new(engine.map_operator(job.nx, job.ny))
        };
        Ok(engine.run_map_with_cancel(&grid, &model, &map_op, cancel))
    }

    fn run_transient(
        &self,
        job: &TransientJob,
        floorplan: &Arc<Floorplan>,
        cancel: Option<&CancelToken>,
        fault: Option<&Fault>,
    ) -> Result<TransientReport, JobError> {
        let engine = self.sweep_engine(floorplan, matches!(fault, Some(Fault::BuilderPanic)));
        let grid = self.grid(&job.base);
        let model = FleetPower::for_job(&job.base, floorplan, &grid);
        let model = FaultableModel::new(&model, fault);
        let cfg = TransientConfig::new(job.dt_s, job.steps)
            .scheme(job.scheme)
            .waveforms(job.waveforms.clone());
        let propagator = if self.config.amortize {
            let caps = silicon_block_capacitances(floorplan);
            let key = propagator_fingerprint(engine.operator(), &caps, job.dt_s, job.scheme);
            self.record_recipe(
                key,
                floorplan,
                RecipeKind::Transient {
                    dt_s: job.dt_s,
                    scheme: job.scheme,
                },
            );
            self.cache
                .transient_operator(engine.operator(), &caps, job.dt_s, job.scheme)
                .map_err(JobError::Transient)?
        } else {
            Arc::new(
                engine
                    .transient_operator(&cfg)
                    .map_err(JobError::Transient)?,
            )
        };
        engine
            .run_transient_with_cancel(&grid, &model, &cfg, &propagator, cancel)
            .map_err(JobError::Transient)
    }
}

/// The power law one fleet job solves under, built from its
/// [`PowerSpec`]: the paper's flat [`ScaledTechPower`] or the
/// De Vogeleer [`BiasedTechPower`] wrapped around it. Delegation keeps
/// the `"scaled"` path byte-identical to the pre-`power`-field
/// protocol (same model type underneath, same batch adapter).
enum FleetPower {
    Scaled(ScaledTechPower),
    Biased(BiasedTechPower),
}

impl FleetPower {
    /// Builds the job's constant-folded model for `grid`.
    fn for_job(job: &SteadyJob, floorplan: &Arc<Floorplan>, grid: &ScenarioGrid) -> Self {
        let scaled = ScaledTechPower::area_weighted(floorplan, job.dynamic_w, job.leakage_w)
            .prepared_for(grid);
        match job.power {
            PowerSpec::Scaled => FleetPower::Scaled(scaled),
            PowerSpec::Biased { theta_k } => {
                FleetPower::Biased(BiasedTechPower::new(scaled, theta_k))
            }
        }
    }
}

impl ScenarioPowerModel for FleetPower {
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        match self {
            FleetPower::Scaled(m) => m.block_power(scenario, tech, block, temperature_k),
            FleetPower::Biased(m) => m.block_power(scenario, tech, block, temperature_k),
        }
    }

    fn batched<'a>(
        &'a self,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Box<dyn BatchPowerModel + 'a> {
        match self {
            FleetPower::Scaled(m) => m.batched(grid, default_ambient_k, lanes),
            FleetPower::Biased(m) => m.batched(grid, default_ambient_k, lanes),
        }
    }
}

/// Wraps a job's power model so a scheduled [`Fault::SolverPanic`]
/// fires in the model's `iteration`-th batched power fill — mid-Picard
/// (steady/map) or mid-step (transient), on the job's worker thread.
/// With no scheduled panic it is a zero-cost pass-through: `batched`
/// hands back the inner model's batch unchanged, so fault-free jobs
/// run the exact code path (and bit pattern) of an unwrapped model.
struct FaultableModel<'m, M: ScenarioPowerModel> {
    inner: &'m M,
    panic_at: Option<usize>,
}

impl<'m, M: ScenarioPowerModel> FaultableModel<'m, M> {
    fn new(inner: &'m M, fault: Option<&Fault>) -> Self {
        let panic_at = match fault {
            Some(Fault::SolverPanic { iteration }) => Some(*iteration),
            _ => None,
        };
        FaultableModel { inner, panic_at }
    }
}

impl<M: ScenarioPowerModel> ScenarioPowerModel for FaultableModel<'_, M> {
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        self.inner.block_power(scenario, tech, block, temperature_k)
    }

    fn batched<'a>(
        &'a self,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Box<dyn BatchPowerModel + 'a> {
        let inner = self.inner.batched(grid, default_ambient_k, lanes);
        match self.panic_at {
            Some(iteration) => Box::new(PanicAfterFills {
                inner,
                remaining: iteration,
            }),
            None => inner,
        }
    }
}

/// [`BatchPowerModel`] decorator that panics on its `remaining`-th
/// `fill_powers` call. Deterministic because each fleet job solves
/// single-threaded: one worker, one batch model, one fill per
/// Picard iteration / transient step.
struct PanicAfterFills<'m> {
    inner: Box<dyn BatchPowerModel + 'm>,
    remaining: usize,
}

impl BatchPowerModel for PanicAfterFills<'_> {
    fn begin_lane(&mut self, lane: usize, id: usize) {
        self.inner.begin_lane(lane, id);
    }

    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec) {
        if self.remaining == 0 {
            // lint:allow(panic-freedom) — deliberate FaultPlan injection; isolated by attempt_job's catch_unwind
            panic!("injected fault: solver panic at scheduled iteration");
        }
        self.remaining -= 1;
        self.inner.fill_powers(temps, powers);
    }

    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64> {
        self.inner.lane_power(lane, block, t)
    }

    fn refresh_lane(&mut self, lane: usize, temps: &[f64], powers: &mut [f64]) {
        self.inner.refresh_lane(lane, temps, powers);
    }
}
