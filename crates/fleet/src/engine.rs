//! The fleet engine: a work-stealing scheduler serving heterogeneous
//! jobs across many floorplans off one shared operator cache.
//!
//! Every job is independent, but jobs against the *same* floorplan
//! share their dominant cold cost — operator assembly and propagator
//! factorization — through the fingerprint-keyed [`OperatorCache`]:
//! the first job on a floorplan builds (single-flight), every later
//! job starts solving immediately. Jobs are claimed through
//! [`ptherm_par::steal::StealQueues`], so a worker that drew a pile of
//! cheap transients steals a sweep from a loaded sibling instead of
//! going idle.
//!
//! Determinism contract: each job runs single-threaded inside its
//! worker with a fixed batch width, every cache hit hands back a
//! bit-identical operator (build is deterministic, fingerprint equality
//! ⇒ identical entries), and results are collected by submission
//! index — so a fleet report is **bitwise independent of the worker
//! count, the steal pattern and the cache state**. The tests assert
//! all three.
//!
//! # Example
//!
//! ```
//! use ptherm_fleet::{parse_jsonl, FleetConfig, FleetEngine};
//!
//! let request = parse_jsonl(r#"
//! {"type": "floorplan", "name": "fp", "tiles": {"rows": 2, "cols": 2, "p_min": 0.02, "p_max": 0.06, "seed": 3}}
//! {"type": "steady", "floorplan": "fp", "dynamic_w": 0.3, "leakage_w": 0.03, "vdd_scales": [0.9, 1.0, 1.1]}
//! "#).expect("valid request");
//! let engine = FleetEngine::from_request(FleetConfig::default(), &request);
//! let report = engine.run(&request.jobs);
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].outcome.is_ok());
//! ```

use crate::cache::{CacheStats, OperatorCache};
use crate::jobs::{JobSpec, MapJob, SteadyJob, TransientJob};
use crate::json::Json;
use ptherm_core::cosim::spectral::DEFAULT_REFINEMENT_TOLERANCE;
use ptherm_core::cosim::sweep::ScaledTechPower;
use ptherm_core::cosim::{
    infer_grid, MapReport, ScenarioGrid, SpectralGridError, SpectralOperator, SweepBackend,
    SweepEngine, SweepReport, ThermalOperator, TransientConfig, TransientError, TransientReport,
    SPECTRAL_AUTO_THRESHOLD,
};
use ptherm_core::thermal::capacitance::silicon_block_capacitances;
use ptherm_core::ElectroThermalSolver;
use ptherm_floorplan::Floorplan;
use ptherm_par::steal::StealQueues;
use ptherm_tech::Technology;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads claiming jobs (jobs themselves run
    /// single-threaded: the fleet is the parallelism).
    pub threads: usize,
    /// Capacity of each operator cache (steady and transient count
    /// separately).
    pub cache_capacity: usize,
    /// Batch width of each job's Picard/transient hot path.
    pub batch_lanes: usize,
    /// `true` (production): amortize factorizations through the cache.
    /// `false`: factor per job — the honest cold baseline the `fleet`
    /// bench measures the cache against; results are bit-identical.
    pub amortize: bool,
    /// Lateral image order of every operator build.
    pub lateral_order: usize,
    /// Depth-series order of every operator build.
    pub z_order: usize,
    /// Technology kits scenario grids index into.
    pub technologies: Vec<Technology>,
}

impl Default for FleetConfig {
    /// One worker per CPU (honouring `PTHERM_THREADS`), 32-entry
    /// caches, the workspace image orders and the 120 nm kit.
    fn default() -> Self {
        FleetConfig {
            threads: ptherm_par::default_threads(),
            cache_capacity: 32,
            batch_lanes: 64,
            amortize: true,
            lateral_order: 2,
            z_order: 9,
            technologies: vec![Technology::cmos_120nm()],
        }
    }
}

/// Why a job could not produce a report.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job referenced a floorplan this engine has not registered.
    UnknownFloorplan(String),
    /// The transient configuration was rejected.
    Transient(TransientError),
    /// The job requested the spectral backend on a floorplan with no
    /// coincident tile grid.
    Backend(SpectralGridError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::UnknownFloorplan(name) => write!(f, "unknown floorplan {name:?}"),
            JobError::Transient(e) => write!(f, "transient setup failed: {e}"),
            JobError::Backend(e) => write!(f, "spectral backend unavailable: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// A completed job's payload.
#[derive(Debug, Clone)]
pub enum JobReport {
    /// Steady-state sweep outcomes.
    Steady(SweepReport),
    /// Transient outcomes.
    Transient(TransientReport),
    /// Spatial map outcomes.
    Map(MapReport),
}

impl JobReport {
    /// Scenario/transient count.
    pub fn len(&self) -> usize {
        match self {
            JobReport::Steady(r) => r.len(),
            JobReport::Transient(r) => r.len(),
            JobReport::Map(r) => r.len(),
        }
    }

    /// True for an empty report.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scenarios that resolved successfully (converged / finished).
    pub fn resolved_count(&self) -> usize {
        match self {
            JobReport::Steady(r) => r.converged_count(),
            JobReport::Transient(r) => r.finished_count(),
            JobReport::Map(r) => r.converged_count(),
        }
    }

    /// Hottest successful operating point / excursion, K. Map jobs
    /// report the hottest **tile** across their rendered maps — the
    /// spatial answer a block-level peak cannot give.
    pub fn max_peak_temperature(&self) -> Option<f64> {
        match self {
            JobReport::Steady(r) => r.max_peak_temperature(),
            JobReport::Transient(r) => r.max_peak_temperature(),
            JobReport::Map(r) => r.max_map_temperature(),
        }
    }
}

/// One job's record in a fleet report.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission index into the job list.
    pub index: usize,
    /// Report or typed failure.
    pub outcome: Result<JobReport, JobError>,
    /// Backend that actually ran the job (`None` for failed jobs).
    /// Map and transient jobs always run dense; steady jobs resolve
    /// their requested backend against the floorplan.
    pub backend: Option<SweepBackend>,
    /// Wall time this job spent on its worker, ns.
    pub wall_ns: u64,
}

impl JobRecord {
    /// Renders the per-job JSONL result line the `fleet` binary emits
    /// (schema in `docs/ARCHITECTURE.md`).
    pub fn to_json(&self, spec: &JobSpec) -> Json {
        let mut fields = vec![
            ("job".into(), Json::Number(self.index as f64)),
            ("kind".into(), Json::String(spec.kind().into())),
            (
                "floorplan".into(),
                Json::String(spec.floorplan().to_string()),
            ),
        ];
        if let JobSpec::Map(m) = spec {
            fields.push((
                "grid".into(),
                Json::Array(vec![Json::Number(m.nx as f64), Json::Number(m.ny as f64)]),
            ));
        }
        match &self.outcome {
            Ok(report) => {
                fields.push(("ok".into(), Json::Bool(true)));
                if let Some(backend) = self.backend {
                    fields.push(("backend".into(), Json::String(backend.name().into())));
                }
                fields.push(("runs".into(), Json::Number(report.len() as f64)));
                fields.push((
                    "resolved".into(),
                    Json::Number(report.resolved_count() as f64),
                ));
                fields.push((
                    "max_peak_k".into(),
                    report
                        .max_peak_temperature()
                        .map_or(Json::Null, Json::Number),
                ));
            }
            Err(error) => {
                fields.push(("ok".into(), Json::Bool(false)));
                fields.push(("error".into(), Json::String(error.to_string())));
            }
        }
        fields.push(("wall_ns".into(), Json::Number(self.wall_ns as f64)));
        Json::Object(fields)
    }
}

/// A whole fleet run: per-job records plus scheduler/cache telemetry.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One record per submitted job, in submission order.
    pub jobs: Vec<JobRecord>,
    /// Cross-worker job steals.
    pub steals: u64,
    /// Steady-operator cache counters.
    pub steady_cache: CacheStats,
    /// Transient-propagator cache counters.
    pub transient_cache: CacheStats,
    /// Map-operator cache counters.
    pub map_cache: CacheStats,
    /// Spectral-operator cache counters.
    pub spectral_cache: CacheStats,
}

impl FleetReport {
    /// Jobs that produced a report.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }
}

/// The fleet scheduler (see the [module docs](self)).
#[derive(Debug)]
pub struct FleetEngine {
    floorplans: HashMap<String, Arc<Floorplan>>,
    cache: OperatorCache,
    config: FleetConfig,
}

impl FleetEngine {
    /// An engine with no floorplans registered yet.
    pub fn new(config: FleetConfig) -> Self {
        let cache = OperatorCache::new(config.cache_capacity);
        FleetEngine {
            floorplans: HashMap::new(),
            cache,
            config,
        }
    }

    /// An engine pre-loaded with a parsed request's floorplans.
    pub fn from_request(config: FleetConfig, request: &crate::jobs::FleetRequest) -> Self {
        let mut engine = Self::new(config);
        for (name, plan) in &request.floorplans {
            engine.register(name.clone(), plan.clone());
        }
        engine
    }

    /// Registers (or replaces) a named floorplan.
    pub fn register(&mut self, name: impl Into<String>, floorplan: Floorplan) {
        self.floorplans.insert(name.into(), Arc::new(floorplan));
    }

    /// Registered floorplan count.
    pub fn floorplan_count(&self) -> usize {
        self.floorplans.len()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs a mixed job queue to completion and reports every job in
    /// submission order. Never panics on a malformed job — failures are
    /// per-job [`JobError`]s.
    pub fn run(&self, jobs: &[JobSpec]) -> FleetReport {
        let workers = self.config.threads.clamp(1, jobs.len().max(1));
        let queues = StealQueues::split(workers, jobs.len());
        let per_worker = ptherm_par::par_workers(workers, |w| {
            let mut mine = Vec::new();
            while let Some(index) = queues.pop(w) {
                let started = Instant::now();
                let (outcome, backend) = match self.run_job(&jobs[index]) {
                    Ok((report, backend)) => (Ok(report), Some(backend)),
                    Err(e) => (Err(e), None),
                };
                mine.push(JobRecord {
                    index,
                    outcome,
                    backend,
                    wall_ns: started.elapsed().as_nanos() as u64,
                });
            }
            mine
        });
        let mut slots: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
        for record in per_worker.into_iter().flatten() {
            let index = record.index;
            slots[index] = Some(record);
        }
        FleetReport {
            jobs: slots
                .into_iter()
                .map(|r| r.expect("every job claimed exactly once"))
                .collect(),
            steals: queues.steals(),
            steady_cache: self.cache.steady_stats(),
            transient_cache: self.cache.transient_stats(),
            map_cache: self.cache.map_stats(),
            spectral_cache: self.cache.spectral_stats(),
        }
    }

    /// Cache counters (live; [`Self::run`] snapshots them per report).
    pub fn cache(&self) -> &OperatorCache {
        &self.cache
    }

    fn run_job(&self, spec: &JobSpec) -> Result<(JobReport, SweepBackend), JobError> {
        match spec {
            JobSpec::Steady(job) => self
                .run_steady(job)
                .map(|(r, backend)| (JobReport::Steady(r), backend)),
            JobSpec::Transient(job) => self
                .run_transient(job)
                .map(|r| (JobReport::Transient(r), SweepBackend::Dense)),
            JobSpec::Map(job) => self
                .run_map(job)
                .map(|r| (JobReport::Map(r), SweepBackend::Dense)),
        }
    }

    /// The per-job solver, carrying the fleet's image orders.
    fn solver(&self, floorplan: &Arc<Floorplan>) -> ElectroThermalSolver {
        let mut solver = ElectroThermalSolver::new(floorplan.as_ref().clone());
        solver.lateral_order = self.config.lateral_order;
        solver.z_order = self.config.z_order;
        solver
    }

    /// The per-job [`SweepEngine`]: configured solver + the floorplan's
    /// dense operator, cached or cold per [`FleetConfig::amortize`].
    fn sweep_engine(&self, floorplan: &Arc<Floorplan>) -> SweepEngine {
        let operator = if self.config.amortize {
            self.cache
                .steady_operator(floorplan, self.config.lateral_order, self.config.z_order)
        } else {
            Arc::new(ThermalOperator::with_image_orders_threaded(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                1,
            ))
        };
        SweepEngine::with_operator(self.solver(floorplan), operator)
            .threads(1)
            .batch_lanes(self.config.batch_lanes)
    }

    /// The spectral counterpart of [`Self::sweep_engine`]: configured
    /// solver + the floorplan's [`SpectralOperator`], cached or cold per
    /// [`FleetConfig::amortize`]. Never touches the dense cache.
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when no coincident tile grid exists.
    fn spectral_engine(
        &self,
        floorplan: &Arc<Floorplan>,
    ) -> Result<SweepEngine, SpectralGridError> {
        let operator = if self.config.amortize {
            self.cache.spectral_operator(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                DEFAULT_REFINEMENT_TOLERANCE,
            )?
        } else {
            Arc::new(SpectralOperator::with_image_orders_threaded(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                DEFAULT_REFINEMENT_TOLERANCE,
                1,
            )?)
        };
        Ok(
            SweepEngine::with_spectral_operator(self.solver(floorplan), operator)
                .threads(1)
                .batch_lanes(self.config.batch_lanes),
        )
    }

    fn floorplan(&self, name: &str) -> Result<&Arc<Floorplan>, JobError> {
        self.floorplans
            .get(name)
            .ok_or_else(|| JobError::UnknownFloorplan(name.to_string()))
    }

    fn grid(&self, job: &SteadyJob) -> ScenarioGrid {
        let grid = ScenarioGrid::new(self.config.technologies.clone())
            .vdd_scales(job.vdd_scales.clone())
            .activities(job.activities.clone());
        match &job.ambients_k {
            Some(ambients) => grid.ambients_k(ambients.clone()),
            None => grid,
        }
    }

    fn run_steady(&self, job: &SteadyJob) -> Result<(SweepReport, SweepBackend), JobError> {
        let floorplan = self.floorplan(&job.floorplan)?;
        // Resolve the backend before building any operator: a spectral
        // job must not pay the dense O(n²) build, and an explicit
        // "spectral" on an off-grid floorplan is a typed job error, not
        // a worker panic. Auto mirrors `SweepEngine::resolved_backend`.
        let spectral = match job.backend {
            SweepBackend::Spectral => true,
            SweepBackend::Dense => false,
            SweepBackend::Auto => {
                floorplan.blocks().len() >= SPECTRAL_AUTO_THRESHOLD && infer_grid(floorplan).is_ok()
            }
        };
        let engine = if spectral {
            self.spectral_engine(floorplan).map_err(JobError::Backend)?
        } else {
            self.sweep_engine(floorplan)
        };
        let grid = self.grid(job);
        let model = ScaledTechPower::area_weighted(floorplan, job.dynamic_w, job.leakage_w)
            .prepared_for(&grid);
        let backend = if spectral {
            SweepBackend::Spectral
        } else {
            SweepBackend::Dense
        };
        Ok((engine.run(&grid, &model), backend))
    }

    fn run_map(&self, job: &MapJob) -> Result<MapReport, JobError> {
        let floorplan = self.floorplan(&job.base.floorplan)?;
        let engine = self.sweep_engine(floorplan);
        let grid = self.grid(&job.base);
        let model =
            ScaledTechPower::area_weighted(floorplan, job.base.dynamic_w, job.base.leakage_w)
                .prepared_for(&grid);
        let map_op = if self.config.amortize {
            self.cache.map_operator(
                floorplan,
                self.config.lateral_order,
                self.config.z_order,
                job.nx,
                job.ny,
            )
        } else {
            Arc::new(engine.map_operator(job.nx, job.ny))
        };
        Ok(engine.run_map_with(&grid, &model, &map_op))
    }

    fn run_transient(&self, job: &TransientJob) -> Result<TransientReport, JobError> {
        let floorplan = self.floorplan(&job.base.floorplan)?;
        let engine = self.sweep_engine(floorplan);
        let grid = self.grid(&job.base);
        let model =
            ScaledTechPower::area_weighted(floorplan, job.base.dynamic_w, job.base.leakage_w)
                .prepared_for(&grid);
        let cfg = TransientConfig::new(job.dt_s, job.steps)
            .scheme(job.scheme)
            .waveforms(job.waveforms.clone());
        let propagator = if self.config.amortize {
            let caps = silicon_block_capacitances(floorplan);
            self.cache
                .transient_operator(engine.operator(), &caps, job.dt_s, job.scheme)
                .map_err(JobError::Transient)?
        } else {
            Arc::new(
                engine
                    .transient_operator(&cfg)
                    .map_err(JobError::Transient)?,
            )
        };
        engine
            .run_transient_with(&grid, &model, &cfg, &propagator)
            .map_err(JobError::Transient)
    }
}
