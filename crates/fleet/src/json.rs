//! Minimal dependency-free JSON: parse (for the JSONL job protocol and
//! the bench regression checker) and render (for per-job result lines).
//!
//! This workspace builds offline — `serde_json` is unavailable — so the
//! fleet front end carries its own small, strict JSON tree. Scope: full
//! JSON values (objects keep insertion order), string escapes including
//! `\uXXXX` with surrogate pairs, a recursion-depth bound instead of a
//! stack overflow on hostile nesting, and byte-offset error reporting.
//! Numbers are `f64` (the protocol's integers are block/step counts,
//! far below 2⁵³).

use std::fmt;

/// A parsed JSON value. Object fields keep source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (IEEE double).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

/// Parse failure: what, and where (byte offset into the input).
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Explanation.
    pub detail: &'static str,
    /// Byte offset at which parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.detail, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound: deep enough for any sane request, shallow enough that
/// a pathological `[[[[…` fails cleanly instead of overflowing the
/// parser's stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one complete JSON value (surrounding whitespace allowed;
    /// trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// See [`JsonError`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field by key (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        // lint:allow(float-compare) — exactness is the point: only a mathematically integral f64 may become a usize
        (n >= 0.0 && n.fract() == 0.0 && n <= u32::MAX as f64).then_some(n as usize)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON. Non-finite numbers render as
    /// `null` (JSON has no literal for them), matching the hardened
    /// bench emitters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // Rust's Display for f64 is the shortest round-trip
                    // representation — valid JSON for finite values.
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: &'static str) -> JsonError {
        JsonError {
            detail,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, detail: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(detail))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError {
                detail: "invalid number",
                offset: start,
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate escape")?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&unit) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit).ok_or_else(|| self.err("invalid escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Number(-1500.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::String("a\nb".into())
        );
    }

    #[test]
    fn parses_structures_in_order() {
        let v = Json::parse(r#"{"b": [1, 2, {"c": null}], "a": "x"}"#).unwrap();
        let Json::Object(fields) = &v else {
            panic!("object")
        };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        let arr = v.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_usize(), Some(2));
        assert_eq!(arr[2].get("c"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_including_surrogates() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::String("é".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("[1, ]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34")
            .unwrap_err()
            .detail
            .contains("trailing"));
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.detail, "nesting too deep");
    }

    #[test]
    fn render_round_trips() {
        let v =
            Json::parse(r#"{"name":"fp \"0\"","xs":[1,2.5,-3e-2],"ok":true,"none":null}"#).unwrap();
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn render_handles_non_finite_and_control_chars() {
        let v = Json::Object(vec![
            ("bad".into(), Json::Number(f64::NAN)),
            ("ctl".into(), Json::String("a\u{1}b".into())),
        ]);
        let s = v.render();
        assert!(s.contains("\"bad\":null"));
        assert!(s.contains("\\u0001"));
        assert_eq!(
            Json::parse(&s).unwrap().get("ctl").and_then(Json::as_str),
            Some("a\u{1}b")
        );
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Number(3.0).as_usize(), Some(3));
        assert_eq!(Json::Number(3.5).as_usize(), None);
        assert_eq!(Json::Number(-1.0).as_usize(), None);
        assert_eq!(Json::Null.as_usize(), None);
    }
}
