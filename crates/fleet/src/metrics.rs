//! Serve-mode observability: lock-free counters and a log₂ latency
//! histogram behind the `{"type": "stats"}` control record.
//!
//! Everything here is an atomic — workers, readers and the stats path
//! never contend on a lock, and a stats line is a consistent-enough
//! snapshot (each counter is individually exact; the line as a whole is
//! taken mid-flight by design). Latency quantiles come from a fixed
//! 64-bucket power-of-two histogram over per-job wall nanoseconds:
//! bucket `b` holds jobs with `wall_ns` in `[2^b, 2^(b+1))`, and a
//! quantile reports the geometric midpoint of the bucket the rank falls
//! in — deterministic for a given set of recorded jobs, accurate to
//! ~50% (one octave), which is the right resolution for spotting a
//! p99 that sits three octaves above p50.

use crate::engine::JobRecord;
use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: `u64` wall-ns values need at most 64 octaves.
const BUCKETS: usize = 64;

/// Serve-mode counters (one instance per server, shared by every
/// connection and worker).
#[derive(Debug)]
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    connections_opened: AtomicU64,
    /// Connections fully closed.
    connections_closed: AtomicU64,
    /// Jobs admitted into the work queue.
    jobs_admitted: AtomicU64,
    /// Jobs completed with an `Ok` outcome.
    jobs_ok: AtomicU64,
    /// Jobs completed with a typed per-job error.
    jobs_failed: AtomicU64,
    /// Jobs refused at admission because the queue was at capacity.
    refused_backpressure: AtomicU64,
    /// Lines refused at parse time (schema errors, unknown protocol
    /// versions, unknown floorplans).
    refused_protocol: AtomicU64,
    /// Retry attempts beyond each job's first (sum over served jobs).
    retries: AtomicU64,
    /// Jobs whose final outcome was a caught worker panic.
    panics: AtomicU64,
    /// Per-job wall-time histogram, log₂ ns buckets.
    latency: [AtomicU64; BUCKETS],
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServeMetrics {
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            jobs_admitted: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            refused_backpressure: AtomicU64::new(0),
            refused_protocol: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fully closed connection.
    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a job admitted into the work queue.
    pub fn job_admitted(&self) {
        self.jobs_admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a queue-full admission refusal.
    pub fn refused_backpressure(&self) {
        self.refused_backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a parse-time refusal (schema / version / unknown plan).
    pub fn refused_protocol(&self) {
        self.refused_protocol.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed job: outcome class, retries beyond the first
    /// attempt, panic classification and wall-time latency.
    pub fn job_done(&self, record: &JobRecord) {
        match &record.outcome {
            Ok(_) => self.jobs_ok.fetch_add(1, Ordering::Relaxed),
            Err(e) => {
                if matches!(e, crate::engine::JobError::WorkerPanic { .. }) {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                }
                self.jobs_failed.fetch_add(1, Ordering::Relaxed)
            }
        };
        self.retries
            .fetch_add(record.attempts.saturating_sub(1) as u64, Ordering::Relaxed);
        let bucket = (63 - record.wall_ns.max(1).leading_zeros()) as usize;
        self.latency[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Jobs recorded as done (ok + failed).
    pub fn jobs_served(&self) -> u64 {
        self.jobs_ok.load(Ordering::Relaxed) + self.jobs_failed.load(Ordering::Relaxed)
    }

    /// Jobs admitted into the queue so far.
    pub fn jobs_admitted(&self) -> u64 {
        self.jobs_admitted.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of recorded job latencies in
    /// nanoseconds — the geometric midpoint of the histogram bucket the
    /// rank lands in, or 0 with no recorded jobs.
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (b, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let low = 1u64 << b;
                return low + (low >> 1);
            }
        }
        // Unreachable: seen reaches total ≥ rank on the last bucket.
        0
    }

    /// The full `{"type": "stats", ...}` line: serve counters, queue
    /// state, latency quantiles and per-cache hit statistics.
    pub fn stats_json(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        caches: &[(&str, crate::cache::CacheStats)],
    ) -> Json {
        let hit_rate = |stats: &crate::cache::CacheStats| {
            let lookups = stats.hits + stats.misses;
            if lookups == 0 {
                0.0
            } else {
                stats.hits as f64 / lookups as f64
            }
        };
        let cache_fields = caches
            .iter()
            .map(|(name, stats)| {
                (
                    (*name).to_string(),
                    Json::Object(vec![
                        ("hits".into(), Json::Number(stats.hits as f64)),
                        ("misses".into(), Json::Number(stats.misses as f64)),
                        ("evictions".into(), Json::Number(stats.evictions as f64)),
                        ("hit_rate".into(), Json::Number(hit_rate(stats))),
                    ]),
                )
            })
            .collect();
        let load = |c: &AtomicU64| Json::Number(c.load(Ordering::Relaxed) as f64);
        Json::Object(vec![
            ("type".into(), Json::String("stats".into())),
            ("connections_opened".into(), load(&self.connections_opened)),
            ("connections_closed".into(), load(&self.connections_closed)),
            ("jobs_admitted".into(), load(&self.jobs_admitted)),
            ("jobs_ok".into(), load(&self.jobs_ok)),
            ("jobs_failed".into(), load(&self.jobs_failed)),
            (
                "refused_backpressure".into(),
                load(&self.refused_backpressure),
            ),
            ("refused_protocol".into(), load(&self.refused_protocol)),
            ("retries".into(), load(&self.retries)),
            ("panics".into(), load(&self.panics)),
            ("queue_depth".into(), Json::Number(queue_depth as f64)),
            ("queue_capacity".into(), Json::Number(queue_capacity as f64)),
            (
                "latency_p50_ns".into(),
                Json::Number(self.latency_quantile_ns(0.50) as f64),
            ),
            (
                "latency_p99_ns".into(),
                Json::Number(self.latency_quantile_ns(0.99) as f64),
            ),
            ("caches".into(), Json::Object(cache_fields)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobError, JobRecord, JobReport};
    use ptherm_core::cosim::SweepReport;

    fn record(wall_ns: u64, attempts: usize, ok: bool) -> JobRecord {
        JobRecord {
            index: 0,
            outcome: if ok {
                Ok(JobReport::Steady(SweepReport {
                    outcomes: Vec::new(),
                }))
            } else {
                Err(JobError::WorkerPanic {
                    payload: "boom".into(),
                })
            },
            backend: None,
            attempts,
            wall_ns,
        }
    }

    #[test]
    fn counters_classify_outcomes_retries_and_panics() {
        let m = ServeMetrics::new();
        m.job_done(&record(1_000, 1, true));
        m.job_done(&record(2_000, 3, true));
        m.job_done(&record(4_000, 2, false));
        assert_eq!(m.jobs_served(), 3);
        assert_eq!(m.jobs_ok.load(Ordering::Relaxed), 2);
        assert_eq!(m.jobs_failed.load(Ordering::Relaxed), 1);
        assert_eq!(m.retries.load(Ordering::Relaxed), 3);
        assert_eq!(m.panics.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn latency_quantiles_land_in_the_right_octave() {
        let m = ServeMetrics::new();
        // 99 fast jobs (~1 µs), 1 slow job (~1 ms).
        for _ in 0..99 {
            m.job_done(&record(1_024, 1, true));
        }
        m.job_done(&record(1_048_576, 1, true));
        let p50 = m.latency_quantile_ns(0.50);
        let p99 = m.latency_quantile_ns(0.99);
        let p100 = m.latency_quantile_ns(1.0);
        assert!((1_024..2_048).contains(&p50), "p50 {p50}");
        assert!((1_024..2_048).contains(&p99), "p99 {p99}");
        assert!((1_048_576..2_097_152).contains(&p100), "p100 {p100}");
        assert_eq!(m.latency_quantile_ns(0.5), p50, "deterministic");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let m = ServeMetrics::new();
        assert_eq!(m.latency_quantile_ns(0.5), 0);
        assert_eq!(m.jobs_served(), 0);
    }

    #[test]
    fn stats_line_carries_queue_and_cache_state() {
        let m = ServeMetrics::new();
        m.job_admitted();
        m.job_done(&record(10_000, 1, true));
        let stats = crate::cache::CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let line = m.stats_json(2, 8, &[("steady", stats)]).render();
        assert!(line.contains("\"type\":\"stats\""), "{line}");
        assert!(line.contains("\"queue_depth\":2"), "{line}");
        assert!(line.contains("\"queue_capacity\":8"), "{line}");
        assert!(line.contains("\"hit_rate\":0.75"), "{line}");
        assert!(line.contains("\"jobs_admitted\":1"), "{line}");
    }
}
