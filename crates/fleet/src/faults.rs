//! Deterministic fault injection for chaos-testing the fleet.
//!
//! A [`FaultPlan`] is an explicit schedule mapping `(job index, attempt
//! number)` to a [`Fault`]. It is a **pure function of its inputs** —
//! no interior mutability, no wall clock, no global RNG — so a chaos
//! run replays bit-identically at any worker count, and the invariant
//! the chaos suite gates on ("every non-faulted job's result line is
//! bitwise identical to the fault-free run") is actually checkable.
//!
//! Faults model the failure classes a long-running fleet service
//! meets:
//!
//! * [`Fault::BuilderPanic`] — the operator build panics inside the
//!   single-flight cache reservation (exercises the
//!   [`Lru`](crate::cache::Lru) reservation-recovery path);
//! * [`Fault::SolverPanic`] — the power model panics at Picard
//!   iteration / transient step `k`, mid-solve on a worker thread;
//! * [`Fault::Delay`] — the job stalls before solving (exercises
//!   deadlines and scheduler skew);
//! * [`Fault::EvictCaches`] — every operator cache is flushed before
//!   the job runs (exercises rebuild-under-traffic);
//! * [`Fault::TransientFault`] — a typed, retryable failure
//!   (exercises the retry/backoff machinery without touching solver
//!   state).
//!
//! [`FaultPlan::seeded`] scatters a deterministic mix of these over a
//! queue from one `u64` seed — what the `faults` bench and the CI
//! chaos job use; [`FaultPlan::inject`] pins individual faults for
//! targeted regression tests.

/// One injectable fault. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the operator build closure, under the cache's
    /// single-flight reservation.
    BuilderPanic,
    /// Panic in the power model's `iteration`-th batched power fill
    /// (0-based): Picard iteration for steady/map jobs, time step for
    /// transient jobs.
    SolverPanic {
        /// 0-based fill index at which the panic fires.
        iteration: usize,
    },
    /// Sleep this long before running the job's solve.
    Delay {
        /// Stall duration, ms.
        ms: u64,
    },
    /// Flush every operator cache before running the job.
    EvictCaches,
    /// Fail immediately with the retryable
    /// [`JobError::Injected`](crate::JobError::Injected).
    TransientFault,
}

/// One scheduled fault: fires for `job` while `attempt <= attempts`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultEntry {
    job: usize,
    fault: Fault,
    /// Number of (1-based) attempts the fault keeps firing for. An
    /// `attempts` of 2 fails the first two tries and lets the third
    /// through — how retry-budget tests shape "transient" faults.
    attempts: usize,
}

/// A deterministic fault schedule (see the [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault firing on `job`'s first attempt only.
    pub fn inject(self, job: usize, fault: Fault) -> Self {
        self.inject_for(job, fault, 1)
    }

    /// Adds a fault firing on `job`'s first `attempts` attempts.
    pub fn inject_for(mut self, job: usize, fault: Fault, attempts: usize) -> Self {
        self.entries.push(FaultEntry {
            job,
            fault,
            attempts,
        });
        self
    }

    /// A deterministic scattered mix over a `jobs`-long queue: roughly
    /// one fault per eight jobs, cycling through every fault class,
    /// placed by a seeded xorshift walk. Same `(seed, jobs)` ⇒ same
    /// plan, bit for bit.
    pub fn seeded(seed: u64, jobs: usize) -> Self {
        let mut plan = FaultPlan::new();
        if jobs == 0 {
            return plan;
        }
        let mut state = seed | 1;
        let faults = jobs.div_ceil(8);
        for k in 0..faults {
            state = xorshift64(state);
            let job = (state % jobs as u64) as usize;
            state = xorshift64(state);
            let fault = match k % 5 {
                0 => Fault::TransientFault,
                1 => Fault::SolverPanic {
                    iteration: (state % 3) as usize,
                },
                2 => Fault::EvictCaches,
                3 => Fault::Delay { ms: state % 3 },
                _ => Fault::BuilderPanic,
            };
            plan = plan.inject(job, fault);
        }
        plan
    }

    /// The fault scheduled for `(job, attempt)` (`attempt` is
    /// 1-based), if any. Later [`Self::inject`] calls win on overlap.
    pub fn fault_for(&self, job: usize, attempt: usize) -> Option<&Fault> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.job == job && attempt <= e.attempts)
            .map(|e| &e.fault)
    }

    /// Number of distinct jobs the plan touches.
    pub fn faulted_jobs(&self) -> usize {
        let mut jobs: Vec<usize> = self.entries.iter().map(|e| e.job).collect();
        jobs.sort_unstable();
        jobs.dedup();
        jobs.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The workspace's standard xorshift64 step — also the retry
/// machinery's jitter source, so backoff schedules are reproducible
/// from `(seed, job, attempt)` alone.
pub(crate) fn xorshift64(mut state: u64) -> u64 {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.fault_for(0, 1), None);
        assert_eq!(plan.faulted_jobs(), 0);
    }

    #[test]
    fn inject_fires_on_the_first_attempt_only() {
        let plan = FaultPlan::new().inject(3, Fault::BuilderPanic);
        assert_eq!(plan.fault_for(3, 1), Some(&Fault::BuilderPanic));
        assert_eq!(plan.fault_for(3, 2), None);
        assert_eq!(plan.fault_for(2, 1), None);
    }

    #[test]
    fn inject_for_covers_a_budget_of_attempts() {
        let plan = FaultPlan::new().inject_for(0, Fault::TransientFault, 2);
        assert_eq!(plan.fault_for(0, 1), Some(&Fault::TransientFault));
        assert_eq!(plan.fault_for(0, 2), Some(&Fault::TransientFault));
        assert_eq!(plan.fault_for(0, 3), None);
    }

    #[test]
    fn later_injections_win_on_overlap() {
        let plan = FaultPlan::new()
            .inject(1, Fault::EvictCaches)
            .inject(1, Fault::Delay { ms: 5 });
        assert_eq!(plan.fault_for(1, 1), Some(&Fault::Delay { ms: 5 }));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(0xC0FFEE, 64);
        let b = FaultPlan::seeded(0xC0FFEE, 64);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.faulted_jobs() <= 64usize.div_ceil(8));
        for entry in &a.entries {
            assert!(entry.job < 64);
        }
        let c = FaultPlan::seeded(0xBEEF, 64);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn seeded_plan_on_an_empty_queue_is_empty() {
        assert!(FaultPlan::seeded(7, 0).is_empty());
    }
}
