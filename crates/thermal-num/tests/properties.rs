//! Property-based tests for the numerical thermal references.

use proptest::prelude::*;
use ptherm_thermal_num::fdm::{rasterize_rect, FdmSolver};
use ptherm_thermal_num::rect_integral::{rect_temperature_quadrature, rect_unit_integral};
use ptherm_thermal_num::transient::ThermalRc;

fn micro() -> impl Strategy<Value = f64> {
    (0.1f64.ln()..10.0f64.ln()).prop_map(|l| l.exp() * 1e-6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The corner closed form equals adaptive quadrature at random
    /// exterior field points and depths.
    #[test]
    fn corner_formula_equals_quadrature(
        w in micro(), l in micro(),
        fx in 1.2..6.0f64, fy in 1.2..6.0f64,
        z_rel in 0.0..3.0f64,
    ) {
        let s = w.max(l);
        let (x, y, z) = (fx * s, fy * s, z_rel * s);
        let exact = rect_unit_integral(w, l, x, y, z)
            / (2.0 * std::f64::consts::PI * 148.0 * w * l);
        let quad = rect_temperature_quadrature(1.0, 148.0, w, l, x, y, z, 1e-12)
            .expect("smooth integrand outside the source");
        let rel = (exact - quad).abs() / exact.abs().max(1e-300);
        prop_assert!(rel < 1e-5, "({x:.2e},{y:.2e},{z:.2e}): rel {rel:.2e}");
    }

    /// The unit integral is symmetric under reflections and monotone
    /// decreasing in depth.
    #[test]
    fn unit_integral_symmetries(w in micro(), l in micro(), x in -5.0..5.0f64, y in -5.0..5.0f64) {
        let (x, y) = (x * 1e-6, y * 1e-6);
        let base = rect_unit_integral(w, l, x, y, 0.0);
        prop_assert!(base > 0.0);
        let mirrored = rect_unit_integral(w, l, -x, y, 0.0);
        prop_assert!((base - mirrored).abs() / base < 1e-10);
        let deep = rect_unit_integral(w, l, x, y, 3.0 * w);
        prop_assert!(deep < base);
    }

    /// Rasterization conserves power for random blocks (clipped to the
    /// die where necessary).
    #[test]
    fn rasterize_conserves_power(
        cx in 0.1..0.9f64, cy in 0.1..0.9f64,
        w in 0.05..0.4f64, l in 0.05..0.4f64,
        p in 0.01..2.0f64,
    ) {
        let die = 1e-3;
        let map = rasterize_rect(24, 24, die, die, cx * die, cy * die, w * die, l * die, p);
        let sum: f64 = map.iter().sum();
        prop_assert!((sum - p).abs() < 1e-12 * p.max(1.0));
        prop_assert!(map.iter().all(|&v| v >= 0.0));
    }

    /// FDM linearity: scaling the power map scales the rises.
    #[test]
    fn fdm_is_linear_in_power(p in 0.05..2.0f64) {
        let solver = FdmSolver {
            die_w: 1e-3, die_l: 1e-3, thickness: 0.3e-3, k: 148.0,
            sink_temperature: 300.0, nx: 12, ny: 12, nz: 5,
        };
        let base = rasterize_rect(12, 12, 1e-3, 1e-3, 0.4e-3, 0.6e-3, 0.2e-3, 0.2e-3, 1.0);
        let scaled: Vec<f64> = base.iter().map(|v| v * p).collect();
        let s1 = solver.solve(&base).expect("solves");
        let s2 = solver.solve(&scaled).expect("solves");
        for iy in (0..12).step_by(4) {
            for ix in (0..12).step_by(4) {
                let r1 = s1.surface_cell(ix, iy) - 300.0;
                let r2 = s2.surface_cell(ix, iy) - 300.0;
                prop_assert!((r2 - p * r1).abs() < 1e-6 * (1.0 + p * r1.abs()));
            }
        }
    }

    /// RC step response: simulation matches the analytic exponential for
    /// random networks.
    #[test]
    fn rc_simulation_matches_closed_form(rth in 100.0..5000.0f64, tau_ms in 0.5..50.0f64, p_mw in 1.0..50.0f64) {
        let rc = ThermalRc { rth, cth: tau_ms * 1e-3 / rth };
        let p = p_mw * 1e-3;
        let traj = rc.simulate(|_, _| p, 4.0 * rc.tau(), 4000);
        for frac in [0.3, 1.0, 2.5] {
            let t = frac * rc.tau();
            let sim = traj.sample(t)[0];
            let exact = rc.step_response(p, t);
            prop_assert!((sim - exact).abs() < 2e-3 * rc.steady_rise(p), "t {t}: {sim} vs {exact}");
        }
    }
}
