//! Numerical thermal references for the `ptherm` workspace.
//!
//! The paper's thermal contribution (§3) is a set of *closed forms* —
//! Eqs. (16)–(21) — for the surface temperature of rectangular heat sources
//! on a silicon die. Closed forms need ground truth to be judged against;
//! this crate provides three independent sources of it, plus the synthetic
//! measurement bench that replaces the paper's 0.35 µm test chip:
//!
//! * [`rect_integral`] — the **exact** solution of the paper's Eq. (17)
//!   (surface integral of `1/r` over a rectangle) via the corner-term
//!   primitive, for any field point including depth offsets, cross-checked
//!   by adaptive quadrature,
//! * [`fdm`] — a steady-state 3-D finite-difference conduction solver on
//!   the real die geometry (adiabatic top/sides, isothermal bottom) — the
//!   reference for the method-of-images boundary treatment (Figs. 6–7) and
//!   the "true" thermal resistance behind Fig. 10,
//! * [`transient`] — lumped thermal-RC transients (the physics behind the
//!   oscilloscope waveforms of Fig. 9),
//! * [`measurement`] — the virtual measurement rig: pulsed-gate drive,
//!   series-resistor current sensing, scope noise, calibration at several
//!   ambient temperatures and exponential-fit extraction of `R_th`/`C_th`,
//!   mirroring the paper's §4.2 procedure.

pub mod fdm;
pub mod ladder;
pub mod measurement;
pub mod rect_integral;
pub mod transient;

pub use fdm::{FdmSolution, FdmSolver, SolveFdmError};
pub use ladder::{LadderStage, ThermalLadder};
pub use measurement::{MeasurementOutcome, SelfHeatingRig};
pub use rect_integral::{rect_surface_temperature, rect_unit_integral};
pub use transient::ThermalRc;
