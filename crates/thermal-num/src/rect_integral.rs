//! Exact evaluation of the paper's Eq. (17): the surface temperature of a
//! uniformly dissipating rectangle on a semi-infinite substrate.
//!
//! The paper states Eq. (17) "cannot be solved analytically" and builds the
//! Eq. (18)/(19)/(20) approximations instead. In fact the integral has a
//! classical closed form (the potential of a uniformly charged rectangle):
//!
//! ```text
//! ∬ du dv / √(u² + v² + z²)  =  Σ_corners ± F(u, v)
//! F(u, v) = u·ln(v + r) + v·ln(u + r) − z·atan(u·v / (z·r)),   r = √(u² + v² + z²)
//! ```
//!
//! so this module provides the *exact* reference the paper's approximations
//! are measured against in the Fig. 5 reproduction — machine-precision
//! accurate and fast. The adaptive-quadrature evaluator cross-checks the
//! corner formula in the tests (two independent routes to Eq. 17).
//!
//! Geometry convention: the rectangle is centred at the origin with width
//! `w` along x and length `l` along y; the field point is `(x, y)` on the
//! surface, optionally at depth `z` below it (used by the method-of-images
//! bottom mirror). With the adiabatic-top half-space Green's function
//! `1/(2πk r)` (twice the full-space value), the temperature rise is
//! `P/(2πk·w·l)` times the integral.

use ptherm_math::quadrature::{adaptive_simpson_2d, IntegrateError};

/// Corner primitive `F(u, v)` for offset depth `z ≥ 0`.
fn corner(u: f64, v: f64, z: f64) -> f64 {
    let r = (u * u + v * v + z * z).sqrt();
    let term_u = if u == 0.0 {
        0.0
    } else {
        // v + r >= 0 always; it vanishes only when u = z = 0 (handled above).
        u * (v + r).max(f64::MIN_POSITIVE).ln()
    };
    let term_v = if v == 0.0 {
        0.0
    } else {
        v * (u + r).max(f64::MIN_POSITIVE).ln()
    };
    let term_z = if z == 0.0 || r == 0.0 {
        0.0
    } else {
        z * (u * v / (z * r)).atan()
    };
    term_u + term_v - term_z
}

/// Exact value of `∬_rect du dv / √((x−u)² + (y−v)² + z²)` for a `w × l`
/// rectangle centred at the origin. Units: metres.
///
/// Valid for every field point, including points inside the rectangle at
/// `z = 0` (the singularity is integrable and the closed form absorbs it).
///
/// # Panics
///
/// Panics if `w` or `l` is not strictly positive.
pub fn rect_unit_integral(w: f64, l: f64, x: f64, y: f64, z: f64) -> f64 {
    assert!(w > 0.0 && l > 0.0, "rectangle dimensions must be positive");
    let z = z.abs();
    // Substituting u' = u - x, v' = v - y maps the integral to the corner
    // primitive evaluated at the four shifted corners.
    let u1 = -w / 2.0 - x;
    let u2 = w / 2.0 - x;
    let v1 = -l / 2.0 - y;
    let v2 = l / 2.0 - y;
    corner(u2, v2, z) - corner(u1, v2, z) - corner(u2, v1, z) + corner(u1, v1, z)
}

/// Exact surface-temperature rise (kelvin) of the paper's Eq. (17): a
/// `w × l` rectangle dissipating `power` watts uniformly, observed at
/// `(x, y)` on the surface of a semi-infinite substrate of conductivity `k`
/// with an adiabatic top (heat spreads into the half space only).
///
/// # Panics
///
/// Panics if dimensions, power scale or conductivity are non-positive.
pub fn rect_surface_temperature(power: f64, k: f64, w: f64, l: f64, x: f64, y: f64) -> f64 {
    assert!(k > 0.0, "thermal conductivity must be positive");
    power / (2.0 * std::f64::consts::PI * k * w * l) * rect_unit_integral(w, l, x, y, 0.0)
}

/// Same quantity as [`rect_surface_temperature`] but evaluated by adaptive
/// quadrature — the slow, independent route used to validate the corner
/// formula. Not reliable *on* the source at `z = 0` (integrand singular);
/// keep the field point outside the rectangle or at `z > 0`.
///
/// # Errors
///
/// Propagates [`IntegrateError`] from the quadrature.
#[allow(clippy::too_many_arguments)]
pub fn rect_temperature_quadrature(
    power: f64,
    k: f64,
    w: f64,
    l: f64,
    x: f64,
    y: f64,
    z: f64,
    tol: f64,
) -> Result<f64, IntegrateError> {
    let integral = adaptive_simpson_2d(
        |u, v| {
            let dx = x - u;
            let dy = y - v;
            1.0 / (dx * dx + dy * dy + z * z).sqrt()
        },
        -w / 2.0,
        w / 2.0,
        -l / 2.0,
        l / 2.0,
        tol,
        40,
    )?;
    Ok(power / (2.0 * std::f64::consts::PI * k * w * l) * integral)
}

#[cfg(test)]
mod tests {
    use super::*;

    const K_SI: f64 = 148.0;

    #[test]
    fn corner_formula_matches_quadrature_outside() {
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        for (x, y) in [(1e-6, 0.0), (0.0, 0.5e-6), (2e-6, 1.5e-6), (-3e-6, 0.2e-6)] {
            let exact = rect_surface_temperature(p, K_SI, w, l, x, y);
            let quad = rect_temperature_quadrature(p, K_SI, w, l, x, y, 0.0, 1e-13).unwrap();
            let rel = (exact - quad).abs() / exact.abs();
            assert!(rel < 1e-6, "({x:.1e},{y:.1e}): {exact} vs {quad}");
        }
    }

    #[test]
    fn corner_formula_matches_quadrature_at_depth() {
        let (w, l, p) = (2e-6, 1e-6, 5e-3);
        // Depth offsets as used by the bottom-mirror images.
        for z in [0.5e-6, 2e-6, 10e-6] {
            let exact = p / (2.0 * std::f64::consts::PI * K_SI * w * l)
                * rect_unit_integral(w, l, 0.3e-6, -0.2e-6, z);
            let quad =
                rect_temperature_quadrature(p, K_SI, w, l, 0.3e-6, -0.2e-6, z, 1e-13).unwrap();
            assert!(
                (exact - quad).abs() / exact.abs() < 1e-6,
                "z = {z}: {exact} vs {quad}"
            );
        }
    }

    #[test]
    fn center_value_matches_paper_eq18() {
        // Eq. (18): T(0) = P/(2πk W L)·[L ln((c+W)/(c−W)) + W ln((c+L)/(c−L))],
        // c = sqrt(W² + L²). The corner formula must reproduce it exactly.
        let (w, l, p): (f64, f64, f64) = (1e-6, 0.1e-6, 10e-3);
        let c = (w * w + l * l).sqrt();
        let eq18 = p / (2.0 * std::f64::consts::PI * K_SI * w * l)
            * (l * ((c + w) / (c - w)).ln() + w * ((c + l) / (c - l)).ln());
        let exact = rect_surface_temperature(p, K_SI, w, l, 0.0, 0.0);
        assert!((exact - eq18).abs() / eq18 < 1e-12, "{exact} vs {eq18}");
    }

    #[test]
    fn far_field_approaches_point_source() {
        // Eq. (16): T = P/(2πk r) far from the source.
        let (w, l, p) = (1e-6, 0.5e-6, 1e-3);
        let r = 50e-6;
        let t = rect_surface_temperature(p, K_SI, w, l, r, 0.0);
        let point = p / (2.0 * std::f64::consts::PI * K_SI * r);
        assert!((t - point).abs() / point < 1e-3, "{t} vs {point}");
    }

    #[test]
    fn symmetry_of_the_field() {
        let (w, l, p) = (3e-6, 1e-6, 2e-3);
        let t = |x: f64, y: f64| rect_surface_temperature(p, K_SI, w, l, x, y);
        let sym = |a: f64, b: f64| ((a - b) / b).abs() < 1e-12;
        assert!(sym(t(1e-6, 2e-6), t(-1e-6, 2e-6)));
        assert!(sym(t(1e-6, 2e-6), t(1e-6, -2e-6)));
        // 90° rotation with swapped dimensions.
        let t_rot = rect_surface_temperature(p, K_SI, l, w, 2e-6, 1e-6);
        assert!((t(1e-6, 2e-6) - t_rot).abs() / t_rot < 1e-12);
    }

    #[test]
    fn scaling_homogeneity() {
        // T(λx; λW, λL) = T(x; W, L)/λ — the 1/r kernel's scale law.
        let (w, l, p) = (1e-6, 0.4e-6, 1e-3);
        let lambda = 7.0;
        let t1 = rect_surface_temperature(p, K_SI, w, l, 2e-6, 1e-6);
        let t2 = rect_surface_temperature(
            p,
            K_SI,
            lambda * w,
            lambda * l,
            lambda * 2e-6,
            lambda * 1e-6,
        );
        assert!((t2 - t1 / lambda).abs() / t2 < 1e-12);
    }

    #[test]
    fn interior_values_are_finite_and_peak_at_center() {
        let (w, l, p) = (1e-6, 0.1e-6, 10e-3);
        let center = rect_surface_temperature(p, K_SI, w, l, 0.0, 0.0);
        assert!(center.is_finite() && center > 0.0);
        for (x, y) in [(0.2e-6, 0.0), (0.45e-6, 0.04e-6), (0.5e-6, 0.05e-6)] {
            let t = rect_surface_temperature(p, K_SI, w, l, x, y);
            assert!(t.is_finite());
            assert!(t < center, "({x:.2e},{y:.2e}) must be below the peak");
        }
    }

    #[test]
    fn paper_example_magnitude() {
        // Fig. 5's example: W = 1 um, L = 0.1 um transistor dissipating
        // 10 mW. Peak rise should be tens of kelvin (the figure's scale).
        let t0 = rect_surface_temperature(10e-3, 148.0, 1e-6, 0.1e-6, 0.0, 0.0);
        assert!(t0 > 10.0 && t0 < 200.0, "peak rise = {t0:.1} K");
    }

    #[test]
    fn linearity_in_power() {
        let t1 = rect_surface_temperature(1e-3, K_SI, 1e-6, 1e-6, 0.0, 0.0);
        let t2 = rect_surface_temperature(3e-3, K_SI, 1e-6, 1e-6, 0.0, 0.0);
        assert!((t2 / t1 - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_degenerate_rectangle() {
        rect_unit_integral(0.0, 1e-6, 0.0, 0.0, 0.0);
    }
}
