//! Lumped thermal-RC transients.
//!
//! The paper's Fig. 9 shows "an exponential increment of the device
//! operating temperature associated to the charging process of the thermal
//! capacitance of the transistor": a first-order RC. This module provides
//! that lumped model (plus an optional package node) and the square-wave
//! drive used by the measurement protocol (3 Hz gating in the paper).

use ptherm_math::ode::{rk4, OdeTrajectory};

/// First-order lumped thermal network: junction-to-sink resistance and
/// junction capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRc {
    /// Thermal resistance, K/W.
    pub rth: f64,
    /// Thermal capacitance, J/K.
    pub cth: f64,
}

impl ThermalRc {
    /// Time constant `τ = R_th · C_th`, s.
    pub fn tau(&self) -> f64 {
        self.rth * self.cth
    }

    /// Steady-state temperature rise at constant power, K.
    pub fn steady_rise(&self, power: f64) -> f64 {
        self.rth * power
    }

    /// Analytic step response: rise at time `t` after applying `power` from
    /// a cold start, K.
    pub fn step_response(&self, power: f64, t: f64) -> f64 {
        self.steady_rise(power) * (1.0 - (-t / self.tau()).exp())
    }

    /// Integrates the junction temperature under a time-varying power
    /// `power(t, delta_t)` (the power may depend on the current rise —
    /// that's exactly the electro-thermal feedback of a heating transistor).
    ///
    /// Returns the trajectory of the temperature *rise* above ambient.
    pub fn simulate<P>(&self, power: P, duration: f64, steps: usize) -> OdeTrajectory
    where
        P: Fn(f64, f64) -> f64,
    {
        let rth = self.rth;
        let cth = self.cth;
        rk4(
            move |t, y| {
                let dt_rise = y[0];
                vec![(power(t, dt_rise) - dt_rise / rth) / cth]
            },
            0.0,
            duration,
            &[0.0],
            steps,
        )
    }
}

/// Square-wave power drive: `power` during the ON fraction of each period,
/// zero otherwise (the paper gates its device at 3 Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWaveDrive {
    /// ON-state power, W.
    pub power: f64,
    /// Gating frequency, Hz.
    pub frequency: f64,
    /// ON duty cycle in (0, 1].
    pub duty: f64,
}

impl SquareWaveDrive {
    /// Power at time `t`, W.
    pub fn at(&self, t: f64) -> f64 {
        let phase = (t * self.frequency).fract();
        if phase < self.duty {
            self.power
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> ThermalRc {
        // ~1000 K/W and 50 us time constant: a small MOSFET's ballpark.
        ThermalRc {
            rth: 1000.0,
            cth: 5e-8,
        }
    }

    #[test]
    fn tau_and_steady_state() {
        let r = rc();
        assert!((r.tau() - 5e-5).abs() < 1e-18);
        assert_eq!(r.steady_rise(10e-3), 10.0);
    }

    #[test]
    fn simulated_step_matches_analytic() {
        let r = rc();
        let p = 10e-3;
        let traj = r.simulate(|_, _| p, 5.0 * r.tau(), 2000);
        for &frac in &[0.2, 0.5, 1.0] {
            let t = 5.0 * r.tau() * frac;
            let sim = traj.sample(t)[0];
            let exact = r.step_response(p, t);
            assert!(
                (sim - exact).abs() < 1e-3 * r.steady_rise(p),
                "t={t}: {sim} vs {exact}"
            );
        }
    }

    #[test]
    fn square_wave_reaches_quasi_steady_cycling() {
        let r = rc();
        let drive = SquareWaveDrive {
            power: 10e-3,
            frequency: 3.0,
            duty: 0.5,
        };
        // 3 Hz is far slower than tau = 50 us: each half-period fully
        // settles, exactly like the paper's scope traces.
        let traj = r.simulate(move |t, _| drive.at(t), 1.0, 60_000);
        // Just before the end of the first ON half-period: fully risen.
        let t_on_end = 0.5 / 3.0 - 1e-4;
        let rise = traj.sample(t_on_end)[0];
        assert!((rise - 10.0).abs() < 0.05, "rise = {rise}");
        // Just before the end of the OFF half-period: fully decayed.
        let t_off_end = 1.0 / 3.0 - 1e-4;
        let fall = traj.sample(t_off_end)[0];
        assert!(fall < 0.05, "fall = {fall}");
    }

    #[test]
    fn feedback_power_reduces_final_rise() {
        // Power that sags with temperature (negative TC device) settles
        // below the constant-power steady state.
        let r = rc();
        let p0 = 10e-3;
        let traj = r.simulate(move |_, d_t| p0 * (1.0 - 0.01 * d_t), 10.0 * r.tau(), 4000);
        let end = traj.y.last().unwrap()[0];
        assert!(end < r.steady_rise(p0));
        // Analytic fixed point: dT = rth p0 (1 - 0.01 dT).
        let expect = r.rth * p0 / (1.0 + 0.01 * r.rth * p0);
        assert!((end - expect).abs() < 0.01 * expect, "{end} vs {expect}");
    }

    #[test]
    fn duty_cycle_shapes_the_wave() {
        let d = SquareWaveDrive {
            power: 1.0,
            frequency: 10.0,
            duty: 0.25,
        };
        assert_eq!(d.at(0.01), 1.0);
        assert_eq!(d.at(0.03), 0.0);
        assert_eq!(d.at(0.1 + 0.01), 1.0);
    }
}
