//! Lumped thermal-RC transients.
//!
//! The paper's Fig. 9 shows "an exponential increment of the device
//! operating temperature associated to the charging process of the thermal
//! capacitance of the transistor": a first-order RC. This module provides
//! that lumped model (plus an optional package node) and the square-wave
//! drive used by the measurement protocol (3 Hz gating in the paper).

use ptherm_math::ode::{rk4, OdeTrajectory};

/// First-order lumped thermal network: junction-to-sink resistance and
/// junction capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRc {
    /// Thermal resistance, K/W.
    pub rth: f64,
    /// Thermal capacitance, J/K.
    pub cth: f64,
}

impl ThermalRc {
    /// Time constant `τ = R_th · C_th`, s. Zero when either element is
    /// zero — the network settles instantaneously (see
    /// [`Self::step_response`]).
    pub fn tau(&self) -> f64 {
        self.rth * self.cth
    }

    /// Steady-state temperature rise at constant power, K.
    pub fn steady_rise(&self, power: f64) -> f64 {
        self.rth * power
    }

    /// Analytic step response: rise at time `t` after applying `power` from
    /// a cold start, K.
    ///
    /// A degenerate network (`cth == 0` or `rth == 0`, so `τ == 0`)
    /// settles instantaneously: the response is the steady-state limit
    /// `R_th · P` for every `t > 0` (and its `t → 0⁺` limit at `t = 0`)
    /// rather than the `0/0` NaN the exponential form would produce.
    pub fn step_response(&self, power: f64, t: f64) -> f64 {
        let tau = self.tau();
        if tau <= 0.0 {
            return self.steady_rise(power);
        }
        self.steady_rise(power) * (1.0 - (-t / tau).exp())
    }

    /// Integrates the junction temperature under a time-varying power
    /// `power(t, delta_t)` (the power may depend on the current rise —
    /// that's exactly the electro-thermal feedback of a heating transistor).
    ///
    /// Returns the trajectory of the temperature *rise* above ambient.
    ///
    /// # Stability
    ///
    /// The integrator sub-steps internally so the RK4 step never exceeds
    /// `τ/2` — far inside the explicit stability bound of `~2.78·τ` — so a
    /// caller-friendly coarse `steps` (sized for output resolution) can no
    /// longer make a stiff network diverge silently. The returned
    /// trajectory records every internal step; when no sub-stepping is
    /// needed the result is bit-identical to the previous behaviour.
    ///
    /// Sub-stepping is capped at [`Self::MAX_SUBSTEPS`] per output step:
    /// past that the network settles thousands of times faster than the
    /// caller can observe (`h > 64·τ`, residual transients `< e⁻¹²⁸`),
    /// so the integration switches to the quasi-static fixed point
    /// `ΔT = R_th · P(t, ΔT)` — the same limit a degenerate network
    /// (`τ == 0`, zero capacitance or resistance) uses, matching the
    /// steady-state limit of [`Self::step_response`]. The cap also
    /// bounds the recorded trajectory to `steps · MAX_SUBSTEPS` points,
    /// so a pathologically stiff RC cannot exhaust memory.
    pub fn simulate<P>(&self, power: P, duration: f64, steps: usize) -> OdeTrajectory
    where
        P: Fn(f64, f64) -> f64,
    {
        assert!(steps > 0, "need at least one step");
        assert!(duration > 0.0, "need a forward time span");
        let rth = self.rth;
        let cth = self.cth;
        let tau = self.tau();
        // Sub-step so h <= tau/2: RK4's linear stability limit is
        // ~2.78*tau and its accuracy degrades well before that.
        let h = duration / steps as f64;
        // NaN/inf ratios (degenerate or denormal tau) fail this guard
        // and take the quasi-static path too.
        let ratio = h / (0.5 * tau);
        let resolvable = tau > 0.0 && ratio.is_finite() && ratio <= Self::MAX_SUBSTEPS as f64;
        if !resolvable {
            return self.simulate_quasi_static(power, duration, steps);
        }
        let substeps = (ratio.ceil() as usize).max(1);
        rk4(
            move |t, y| {
                let dt_rise = y[0];
                vec![(power(t, dt_rise) - dt_rise / rth) / cth]
            },
            0.0,
            duration,
            &[0.0],
            steps * substeps,
        )
    }

    /// Largest internal sub-step factor [`Self::simulate`] resolves a
    /// stiff transient with before switching to quasi-static tracking.
    pub const MAX_SUBSTEPS: usize = 128;

    /// The fast-settling limit of [`Self::simulate`] (`τ == 0`, or
    /// `τ ≪` the output step): the rise tracks the instantaneous fixed
    /// point `ΔT = R_th · P(t, ΔT)`, found by damped iteration from the
    /// previous sample (feedback powers are smooth in ΔT on physical
    /// devices, so a handful of iterations suffice).
    fn simulate_quasi_static<P>(&self, power: P, duration: f64, steps: usize) -> OdeTrajectory
    where
        P: Fn(f64, f64) -> f64,
    {
        let h = duration / steps as f64;
        let mut rise = 0.0;
        let mut out_t = Vec::with_capacity(steps + 1);
        let mut out_y = Vec::with_capacity(steps + 1);
        for k in 0..=steps {
            let t = h * k as f64;
            if self.rth == 0.0 {
                rise = 0.0;
            } else {
                for _ in 0..64 {
                    let next = self.rth * power(t, rise);
                    let moved = 0.5 * (next - rise);
                    rise += moved;
                    if moved.abs() <= 1e-12 * rise.abs().max(1e-300) {
                        break;
                    }
                }
            }
            out_t.push(t);
            out_y.push(vec![rise]);
        }
        OdeTrajectory { t: out_t, y: out_y }
    }
}

/// Square-wave power drive: `power` during the ON fraction of each period,
/// zero otherwise (the paper gates its device at 3 Hz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWaveDrive {
    /// ON-state power, W.
    pub power: f64,
    /// Gating frequency, Hz.
    pub frequency: f64,
    /// ON duty cycle in (0, 1].
    pub duty: f64,
}

impl SquareWaveDrive {
    /// Power at time `t`, W.
    pub fn at(&self, t: f64) -> f64 {
        let phase = (t * self.frequency).fract();
        if phase < self.duty {
            self.power
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> ThermalRc {
        // ~1000 K/W and 50 us time constant: a small MOSFET's ballpark.
        ThermalRc {
            rth: 1000.0,
            cth: 5e-8,
        }
    }

    #[test]
    fn tau_and_steady_state() {
        let r = rc();
        assert!((r.tau() - 5e-5).abs() < 1e-18);
        assert_eq!(r.steady_rise(10e-3), 10.0);
    }

    #[test]
    fn simulated_step_matches_analytic() {
        let r = rc();
        let p = 10e-3;
        let traj = r.simulate(|_, _| p, 5.0 * r.tau(), 2000);
        for &frac in &[0.2, 0.5, 1.0] {
            let t = 5.0 * r.tau() * frac;
            let sim = traj.sample(t)[0];
            let exact = r.step_response(p, t);
            assert!(
                (sim - exact).abs() < 1e-3 * r.steady_rise(p),
                "t={t}: {sim} vs {exact}"
            );
        }
    }

    #[test]
    fn stiff_step_no_longer_diverges() {
        // Regression: duration = 1 s over 100 caller steps on a 50 us
        // network hands rk4 h = 10 ms = 200*tau, far past the ~2.78*tau
        // stability bound — the old fixed-step integration overflowed to
        // +/-inf. Internal sub-stepping must keep it on the analytic
        // curve instead.
        let r = rc();
        let p = 10e-3;
        let traj = r.simulate(|_, _| p, 1.0, 100);
        assert!(traj.y.iter().all(|y| y[0].is_finite()));
        let end = traj.y.last().unwrap()[0];
        let exact = r.step_response(p, 1.0);
        assert!(
            (end - exact).abs() < 1e-3 * r.steady_rise(p),
            "{end} vs {exact}"
        );
        // Every recorded point stays physical (no overshoot blow-up).
        assert!(traj
            .y
            .iter()
            .all(|y| y[0] >= -1e-9 && y[0] <= 1.01 * r.steady_rise(p)));
    }

    #[test]
    fn non_stiff_simulation_is_unchanged_by_substepping() {
        // h <= tau/2 already: the sub-step factor is 1 and the trajectory
        // is bit-identical to a direct rk4 call.
        let r = rc();
        let p = 10e-3;
        let steps = 2000;
        let duration = 5.0 * r.tau(); // h = tau/400
        let traj = r.simulate(|_, _| p, duration, steps);
        assert_eq!(traj.t.len(), steps + 1);
        let direct = rk4(
            |_, y| vec![(p - y[0] / r.rth) / r.cth],
            0.0,
            duration,
            &[0.0],
            steps,
        );
        assert_eq!(traj, direct);
    }

    #[test]
    fn pathologically_stiff_rc_stays_bounded_in_time_and_memory() {
        // tau = 1 ns over a 1 s span: resolving it explicitly would need
        // ~2e9 sub-steps (previously an OOM/hang). The sub-step cap
        // switches to quasi-static tracking: trajectory length stays at
        // the caller's resolution and every sample sits on the steady
        // value.
        let r = ThermalRc {
            rth: 1e3,
            cth: 1e-12,
        };
        let p = 10e-3;
        let traj = r.simulate(|_, _| p, 1.0, 100);
        assert_eq!(traj.t.len(), 101);
        for y in &traj.y {
            assert!((y[0] - r.steady_rise(p)).abs() < 1e-9 * r.steady_rise(p));
        }
        // Denormal tau must not overflow the sub-step arithmetic either.
        let denormal = ThermalRc {
            rth: 1e-300,
            cth: 1e-300,
        };
        let traj = denormal.simulate(|_, _| 1.0, 1.0, 4);
        assert_eq!(traj.t.len(), 5);
        assert!(traj.y.iter().all(|y| y[0].is_finite()));
    }

    #[test]
    fn zero_capacitance_settles_instantaneously() {
        let r = ThermalRc {
            rth: 1000.0,
            cth: 0.0,
        };
        assert_eq!(r.tau(), 0.0);
        let p = 10e-3;
        // Analytic: steady limit everywhere, including t = 0, never NaN.
        for t in [0.0, 1e-9, 1.0] {
            let resp = r.step_response(p, t);
            assert!(resp.is_finite());
            assert!((resp - r.steady_rise(p)).abs() < 1e-12, "t={t}: {resp}");
        }
        // Simulation: quasi-static tracking of the fixed point, honouring
        // feedback (P sags 1%/K -> rise solves dT = rth p0 (1-0.01 dT)).
        let p0 = 10e-3;
        let traj = r.simulate(move |_, d_t| p0 * (1.0 - 0.01 * d_t), 1.0, 10);
        let expect = r.rth * p0 / (1.0 + 0.01 * r.rth * p0);
        for y in &traj.y {
            assert!(y[0].is_finite());
            assert!(
                (y[0] - expect).abs() < 1e-9 * expect,
                "{} vs {expect}",
                y[0]
            );
        }
    }

    #[test]
    fn zero_resistance_pins_the_rise_at_zero() {
        let r = ThermalRc {
            rth: 0.0,
            cth: 5e-8,
        };
        assert_eq!(r.tau(), 0.0);
        for t in [0.0, 1.0] {
            let resp = r.step_response(1.0, t);
            assert!(resp.is_finite());
            assert_eq!(resp, 0.0);
        }
        let traj = r.simulate(|_, _| 1.0, 1.0, 10);
        assert!(traj.y.iter().all(|y| y[0] == 0.0));
    }

    #[test]
    fn square_wave_reaches_quasi_steady_cycling() {
        let r = rc();
        let drive = SquareWaveDrive {
            power: 10e-3,
            frequency: 3.0,
            duty: 0.5,
        };
        // 3 Hz is far slower than tau = 50 us: each half-period fully
        // settles, exactly like the paper's scope traces.
        let traj = r.simulate(move |t, _| drive.at(t), 1.0, 60_000);
        // Just before the end of the first ON half-period: fully risen.
        let t_on_end = 0.5 / 3.0 - 1e-4;
        let rise = traj.sample(t_on_end)[0];
        assert!((rise - 10.0).abs() < 0.05, "rise = {rise}");
        // Just before the end of the OFF half-period: fully decayed.
        let t_off_end = 1.0 / 3.0 - 1e-4;
        let fall = traj.sample(t_off_end)[0];
        assert!(fall < 0.05, "fall = {fall}");
    }

    #[test]
    fn feedback_power_reduces_final_rise() {
        // Power that sags with temperature (negative TC device) settles
        // below the constant-power steady state.
        let r = rc();
        let p0 = 10e-3;
        let traj = r.simulate(move |_, d_t| p0 * (1.0 - 0.01 * d_t), 10.0 * r.tau(), 4000);
        let end = traj.y.last().unwrap()[0];
        assert!(end < r.steady_rise(p0));
        // Analytic fixed point: dT = rth p0 (1 - 0.01 dT).
        let expect = r.rth * p0 / (1.0 + 0.01 * r.rth * p0);
        assert!((end - expect).abs() < 0.01 * expect, "{end} vs {expect}");
    }

    #[test]
    fn duty_cycle_shapes_the_wave() {
        let d = SquareWaveDrive {
            power: 1.0,
            frequency: 10.0,
            duty: 0.25,
        };
        assert_eq!(d.at(0.01), 1.0);
        assert_eq!(d.at(0.03), 0.0);
        assert_eq!(d.at(0.1 + 0.01), 1.0);
    }
}
