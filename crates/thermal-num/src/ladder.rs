//! Multi-node thermal RC ladders — device → die → package → ambient.
//!
//! *Extension beyond the paper's single-pole treatment.* Real self-heating
//! transients show several time constants: the device heats in
//! microseconds, the die in milliseconds, the package in seconds. A ladder
//! of `N` RC stages captures this and lets the measurement rig be stressed
//! with realistic multi-exponential waveforms (the single-pole fit then
//! reports an *effective* R_th — exactly what a real bench does).
//!
//! Stage `i` has capacitance `C_i` to thermal ground and resistance `R_i`
//! toward stage `i+1` (the last resistance reaches ambient). Power enters
//! at stage 0:
//!
//! ```text
//! C_i dT_i/dt = (T_{i-1} − T_i)/R_{i-1}·[i>0] + P·[i=0] − (T_i − T_{i+1})/R_i
//! ```

use ptherm_math::ode::OdeTrajectory;
use ptherm_math::tridiag::solve_tridiagonal;
use std::fmt;

/// One RC stage of the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderStage {
    /// Resistance from this node toward the next (or ambient), K/W.
    pub rth: f64,
    /// Capacitance of this node, J/K.
    pub cth: f64,
}

/// Error for ladder construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildLadderError {
    /// Explanation.
    pub detail: &'static str,
}

impl fmt::Display for BuildLadderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid thermal ladder: {}", self.detail)
    }
}

impl std::error::Error for BuildLadderError {}

/// A series thermal RC ladder with power injected at stage 0.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalLadder {
    stages: Vec<LadderStage>,
}

impl ThermalLadder {
    /// Builds a ladder from stages (device-side first).
    ///
    /// # Errors
    ///
    /// Rejects empty ladders and non-positive R/C values.
    pub fn new(stages: Vec<LadderStage>) -> Result<Self, BuildLadderError> {
        if stages.is_empty() {
            return Err(BuildLadderError {
                detail: "no stages",
            });
        }
        if stages
            .iter()
            .any(|s| s.rth.is_nan() || s.cth.is_nan() || s.rth <= 0.0 || s.cth <= 0.0)
        {
            return Err(BuildLadderError {
                detail: "non-positive R or C",
            });
        }
        Ok(ThermalLadder { stages })
    }

    /// Stages, device-side first.
    pub fn stages(&self) -> &[LadderStage] {
        &self.stages
    }

    /// Total steady-state resistance to ambient, K/W.
    pub fn total_resistance(&self) -> f64 {
        self.stages.iter().map(|s| s.rth).sum()
    }

    /// Steady-state rise of stage 0 at constant power, K.
    pub fn steady_rise(&self, power: f64) -> f64 {
        power * self.total_resistance()
    }

    /// Integrates the ladder under power `power(t, rise0)` injected at
    /// stage 0 (the power may depend on the device-node rise — electro-
    /// thermal feedback). Returns the trajectory of all node rises.
    ///
    /// Ladders are stiff (time constants spanning many decades), so the
    /// integrator is semi-implicit backward Euler: the linear network is
    /// solved implicitly (tridiagonal system, unconditionally stable) while
    /// the power feedback is lagged by one step. Pick `steps` for the
    /// *accuracy* you need on the slowest time constant, not for stability.
    pub fn simulate<P>(&self, power: P, duration: f64, steps: usize) -> OdeTrajectory
    where
        P: Fn(f64, f64) -> f64,
    {
        assert!(steps > 0, "need at least one step");
        assert!(duration > 0.0, "need a forward time span");
        let n = self.stages.len();
        let dt = duration / steps as f64;

        // dT/dt = A·T + b with tridiagonal A; backward Euler solves
        // (I − dt·A)·T_new = T_old + dt·b. Assemble M = I − dt·A once.
        let mut lower = vec![0.0; n.saturating_sub(1)];
        let mut diag = vec![0.0; n];
        let mut upper = vec![0.0; n.saturating_sub(1)];
        for i in 0..n {
            let c = self.stages[i].cth;
            let mut a_ii = -1.0 / (self.stages[i].rth * c);
            if i > 0 {
                a_ii -= 1.0 / (self.stages[i - 1].rth * c);
                lower[i - 1] = -dt / (self.stages[i - 1].rth * c);
            }
            if i + 1 < n {
                upper[i] = -dt / (self.stages[i].rth * c);
            }
            diag[i] = 1.0 - dt * a_ii;
        }

        let mut t = 0.0;
        let mut y = vec![0.0; n];
        let mut out_t = vec![0.0];
        let mut out_y = vec![y.clone()];
        let mut rhs = vec![0.0; n];
        for _ in 0..steps {
            let p = power(t, y[0]);
            rhs.copy_from_slice(&y);
            rhs[0] += dt * p / self.stages[0].cth;
            y = solve_tridiagonal(&lower, &diag, &upper, &rhs)
                .expect("backward-Euler ladder matrix is diagonally dominant");
            t += dt;
            out_t.push(t);
            out_y.push(y.clone());
        }
        OdeTrajectory { t: out_t, y: out_y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_die_package() -> ThermalLadder {
        ThermalLadder::new(vec![
            LadderStage {
                rth: 500.0,
                cth: 2e-8,
            }, // device: tau 10 us
            LadderStage {
                rth: 300.0,
                cth: 1e-5,
            }, // die: tau 3 ms
            LadderStage {
                rth: 200.0,
                cth: 5e-3,
            }, // package: tau 1 s
        ])
        .expect("valid ladder")
    }

    #[test]
    fn construction_is_validated() {
        assert!(ThermalLadder::new(vec![]).is_err());
        assert!(ThermalLadder::new(vec![LadderStage { rth: 0.0, cth: 1.0 }]).is_err());
    }

    #[test]
    fn steady_state_is_the_series_resistance() {
        let ladder = device_die_package();
        assert_eq!(ladder.total_resistance(), 1000.0);
        // Long simulation approaches the steady rise.
        let p = 10e-3;
        let traj = ladder.simulate(move |_, _| p, 20.0, 400_000);
        let end = traj.y.last().expect("nonempty")[0];
        let expect = ladder.steady_rise(p);
        assert!((end - expect).abs() / expect < 0.02, "{end} vs {expect}");
    }

    #[test]
    fn node_rises_are_ordered_device_hottest() {
        let ladder = device_die_package();
        let traj = ladder.simulate(|_, _| 10e-3, 5.0, 100_000);
        let last = traj.y.last().expect("nonempty");
        assert!(last[0] > last[1] && last[1] > last[2], "{last:?}");
    }

    #[test]
    fn multiple_time_constants_are_visible() {
        // The device node settles quickly toward the partial steady state,
        // then creeps as the die and package charge.
        let ladder = device_die_package();
        let p = 10e-3;
        let traj = ladder.simulate(move |_, _| p, 10.0, 400_000);
        let t_fast = traj.sample(1e-4)[0]; // after ~10 device taus
        let t_mid = traj.sample(0.05)[0]; // die settled
        let t_slow = traj.sample(9.0)[0]; // package settled
        assert!(t_fast > 0.6 * p * 500.0, "device plateau {t_fast}");
        assert!(t_mid > t_fast * 1.2, "die creep: {t_mid} vs {t_fast}");
        assert!(t_slow > t_mid * 1.1, "package creep: {t_slow} vs {t_mid}");
    }

    #[test]
    fn single_stage_matches_thermal_rc() {
        use crate::transient::ThermalRc;
        let rc = ThermalRc {
            rth: 800.0,
            cth: 1e-5,
        };
        let ladder = ThermalLadder::new(vec![LadderStage {
            rth: rc.rth,
            cth: rc.cth,
        }])
        .expect("valid ladder");
        let p = 5e-3;
        let tau = rc.tau();
        let traj = ladder.simulate(move |_, _| p, 5.0 * tau, 20_000);
        for frac in [0.5, 1.0, 3.0] {
            let t = frac * tau;
            let a = traj.sample(t)[0];
            let b = rc.step_response(p, t);
            assert!(
                (a - b).abs() < 1e-3 * rc.steady_rise(p),
                "t = {t}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn stiff_ladder_stays_stable_at_huge_steps() {
        // Time constants span 10 us .. 1 s; a 0.5 s step is 50000x the
        // fastest stage. Backward Euler must stay bounded and land on the
        // series-resistance steady state regardless (regression guard:
        // this simulate must never be switched to a fixed-step explicit
        // integrator).
        let ladder = device_die_package();
        let p = 10e-3;
        let traj = ladder.simulate(move |_, _| p, 20.0, 40);
        assert!(traj
            .y
            .iter()
            .all(|nodes| nodes.iter().all(|t| t.is_finite())));
        let end = traj.y.last().expect("nonempty")[0];
        let expect = ladder.steady_rise(p);
        assert!((end - expect).abs() / expect < 0.05, "{end} vs {expect}");
    }

    #[test]
    fn feedback_power_couples_to_device_node() {
        // Negative feedback on the device rise settles below constant power.
        let ladder = device_die_package();
        let p0 = 10e-3;
        let traj = ladder.simulate(move |_, rise0| p0 * (1.0 - 0.0005 * rise0), 20.0, 400_000);
        let end = traj.y.last().expect("nonempty")[0];
        assert!(end < ladder.steady_rise(p0));
    }
}
