//! The virtual self-heating measurement bench (substitute for the paper's
//! fabricated 0.35 µm test chip, §4.2 / Figs. 9–10).
//!
//! The paper's protocol, reproduced step for step:
//!
//! 1. the device is gated ON/OFF with a slow square wave (3 Hz),
//! 2. the drain current flows through a small series sense resistor whose
//!    voltage drop is recorded on an oscilloscope,
//! 3. traces captured at several ambient temperatures (30/35/40 °C)
//!    calibrate the voltage-to-temperature slope (drain current is linear
//!    in temperature for small excursions),
//! 4. the exponential charging of the thermal capacitance is fitted to get
//!    `ΔT_SH` and `τ`, whence `R_th = ΔT_SH / P` and `C_th = τ / R_th`.
//!
//! The rig is generic over the device: any `I_D(T)` law can be measured
//! (the experiments plug in the α-power model from `ptherm-device`).
//! Electro-thermal feedback is honoured — the instantaneous power depends
//! on the junction temperature, which depends on the dissipated power —
//! and white scope noise with a deterministic seed emulates the
//! measurement-floor error bars of the paper's Fig. 10.

use crate::transient::ThermalRc;
use ptherm_math::fit::{fit_exp_saturation, linear_least_squares, FitError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A captured oscilloscope trace of the sense-resistor voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeTrace {
    /// Sample times, s (spanning one ON half-period).
    pub time: Vec<f64>,
    /// Sense-resistor voltage at each sample, V.
    pub voltage: Vec<f64>,
    /// Ambient (chuck) temperature during the capture, K.
    pub ambient: f64,
}

/// Voltage-to-temperature calibration extracted from multi-ambient traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Sense voltage at the reference ambient, V.
    pub v_ref: f64,
    /// Reference ambient, K.
    pub t_ref: f64,
    /// Sensitivity `dV/dT`, V/K (negative for above-ZTC bias).
    pub dv_dt: f64,
}

/// Extracted self-heating measurement result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementOutcome {
    /// Steady self-heating temperature rise `ΔT_SH`, K.
    pub delta_t: f64,
    /// Thermal time constant, s.
    pub tau: f64,
    /// Dissipated power at the settled operating point, W.
    pub power: f64,
    /// Extracted thermal resistance `ΔT_SH / P`, K/W.
    pub rth: f64,
    /// Extracted thermal capacitance `τ / R_th`, J/K.
    pub cth: f64,
}

/// Error produced by the measurement pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// The underlying curve fit failed.
    Fit(FitError),
    /// The calibration slope is too small to invert (device at ZTC bias).
    FlatCalibration {
        /// Fitted slope, V/K.
        dv_dt: f64,
    },
    /// Invalid rig configuration.
    BadConfig {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Fit(e) => write!(f, "measurement fit failed: {e}"),
            MeasureError::FlatCalibration { dv_dt } => {
                write!(f, "calibration slope {dv_dt:.3e} V/K too flat to invert")
            }
            MeasureError::BadConfig { detail } => write!(f, "bad rig config: {detail}"),
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<FitError> for MeasureError {
    fn from(e: FitError) -> Self {
        MeasureError::Fit(e)
    }
}

/// The virtual measurement bench.
///
/// `dut_current` maps junction temperature (K) to saturated drain current
/// (A) at the applied gate bias.
pub struct SelfHeatingRig<F: Fn(f64) -> f64> {
    /// Device current law `I_D(T_junction)`.
    pub dut_current: F,
    /// Drain supply voltage, V.
    pub supply: f64,
    /// Series sense resistance, Ω.
    pub sense_resistance: f64,
    /// True thermal network of the device + die (what the measurement is
    /// trying to recover).
    pub thermal: ThermalRc,
    /// Gating frequency, Hz (paper: 3 Hz).
    pub gate_frequency: f64,
    /// RMS scope noise, V.
    pub noise_rms: f64,
    /// Noise seed (deterministic experiments).
    pub seed: u64,
}

impl<F: Fn(f64) -> f64> SelfHeatingRig<F> {
    fn validate(&self) -> Result<(), MeasureError> {
        let positives = [
            self.supply,
            self.sense_resistance,
            self.thermal.rth,
            self.thermal.cth,
            self.gate_frequency,
        ];
        if positives.iter().any(|v| v.is_nan() || *v <= 0.0) {
            return Err(MeasureError::BadConfig {
                detail: "supply, sense resistance, thermal RC and frequency must be positive"
                    .into(),
            });
        }
        Ok(())
    }

    /// Instantaneous dissipated power for a junction rise `d_t` above
    /// `ambient`: `P = I·V_DS` with `V_DS = supply − I·R_s`.
    fn device_power(&self, ambient: f64, d_t: f64) -> f64 {
        let i = (self.dut_current)(ambient + d_t);
        let vds = (self.supply - i * self.sense_resistance).max(0.0);
        i * vds
    }

    /// Captures the sense-voltage trace over the first ON half-period at
    /// `ambient`, with `samples` points.
    ///
    /// # Errors
    ///
    /// [`MeasureError::BadConfig`] for invalid configurations.
    pub fn capture(&self, ambient: f64, samples: usize) -> Result<ScopeTrace, MeasureError> {
        self.validate()?;
        if samples < 16 {
            return Err(MeasureError::BadConfig {
                detail: format!("need at least 16 samples, got {samples}"),
            });
        }
        let on_time = 0.5 / self.gate_frequency;
        // Simulate the junction rise over the ON interval (device always ON
        // within it, so the drive is just the feedback power).
        let steps = (samples * 8).max(1024);
        let traj = self
            .thermal
            .simulate(|_, d_t| self.device_power(ambient, d_t), on_time, steps);

        let mut rng = StdRng::seed_from_u64(self.seed ^ ambient.to_bits());
        let mut gauss = move || {
            // Box-Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };

        let mut time = Vec::with_capacity(samples);
        let mut voltage = Vec::with_capacity(samples);
        for k in 0..samples {
            let t = on_time * (k as f64 + 0.5) / samples as f64;
            let d_t = traj.sample(t)[0];
            let i = (self.dut_current)(ambient + d_t);
            let v = i * self.sense_resistance + self.noise_rms * gauss();
            time.push(t);
            voltage.push(v);
        }
        Ok(ScopeTrace {
            time,
            voltage,
            ambient,
        })
    }

    /// Calibrates the voltage-temperature slope from traces at several
    /// ambients (paper: 30/35/40 °C): the *initial* sample of each trace is
    /// taken before appreciable self-heating, so its voltage reflects the
    /// ambient directly.
    ///
    /// # Errors
    ///
    /// See [`MeasureError`]. Needs at least two ambients.
    pub fn calibrate(&self, ambients: &[f64], samples: usize) -> Result<Calibration, MeasureError> {
        if ambients.len() < 2 {
            return Err(MeasureError::BadConfig {
                detail: "calibration needs at least two ambient temperatures".into(),
            });
        }
        let mut temps = Vec::with_capacity(ambients.len());
        let mut volts = Vec::with_capacity(ambients.len());
        for &ambient in ambients {
            let trace = self.capture(ambient, samples)?;
            // Average the first few samples: early enough that self-heating
            // is negligible, averaged to beat the noise down.
            let n_head = (samples / 64).clamp(2, 16);
            let v0 = trace.voltage[..n_head].iter().sum::<f64>() / n_head as f64;
            temps.push(ambient);
            volts.push(v0);
        }
        let fit = linear_least_squares(&temps, &volts, 2, |t| vec![1.0, t])?;
        let t_ref = temps[0];
        Ok(Calibration {
            v_ref: fit.parameters[0] + fit.parameters[1] * t_ref,
            t_ref,
            dv_dt: fit.parameters[1],
        })
    }

    /// Runs the full §4.2 pipeline: capture at `ambient`, fit the
    /// exponential, convert through `calibration`, report `R_th` and `C_th`.
    ///
    /// # Errors
    ///
    /// See [`MeasureError`].
    pub fn measure(
        &self,
        ambient: f64,
        calibration: Calibration,
        samples: usize,
    ) -> Result<MeasurementOutcome, MeasureError> {
        if calibration.dv_dt.abs() < 1e-12 {
            return Err(MeasureError::FlatCalibration {
                dv_dt: calibration.dv_dt,
            });
        }
        let trace = self.capture(ambient, samples)?;
        let fit = fit_exp_saturation(&trace.time, &trace.voltage)?;
        // Voltage excursion -> temperature excursion through the calibration
        // slope (dy is negative above the ZTC point; ΔT is positive).
        let delta_t = fit.dy / calibration.dv_dt;
        // Settled operating point from the fitted asymptote.
        let v_ss = fit.y0 + fit.dy;
        let i_ss = v_ss / self.sense_resistance;
        let power = i_ss * (self.supply - v_ss).max(0.0);
        let rth = delta_t / power;
        Ok(MeasurementOutcome {
            delta_t,
            tau: fit.tau,
            power,
            rth,
            cth: fit.tau / rth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A well-behaved DUT: 5 mA nominal with -0.3%/K temperature
    /// coefficient (negative TC = biased above the ZTC point).
    fn dut(t_k: f64) -> f64 {
        5e-3 * (1.0 - 0.003 * (t_k - 300.0))
    }

    fn rig(noise: f64) -> SelfHeatingRig<fn(f64) -> f64> {
        SelfHeatingRig {
            dut_current: dut,
            supply: 3.3,
            sense_resistance: 20.0,
            thermal: ThermalRc {
                rth: 800.0,
                cth: 2e-5,
            },
            gate_frequency: 3.0,
            noise_rms: noise,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn trace_shows_exponential_current_sag() {
        let r = rig(0.0);
        let trace = r.capture(303.15, 512).unwrap();
        // Voltage must fall monotonically (apart from noise = 0) and settle.
        assert!(trace.voltage[0] > *trace.voltage.last().unwrap());
        let head_drop = trace.voltage[0] - trace.voltage[64];
        let tail_drop = trace.voltage[256] - trace.voltage[511];
        assert!(head_drop > 5.0 * tail_drop, "exponential settling");
    }

    #[test]
    fn calibration_recovers_device_tc() {
        let r = rig(0.0);
        let cal = r
            .calibrate(&[303.15, 308.15, 313.15], 512)
            .expect("calibration succeeds");
        // dV/dT = R_s · dI/dT = 20 · (-0.003 · 5e-3) = -3e-4 V/K.
        assert!((cal.dv_dt + 3.0e-4).abs() < 2e-5, "dv_dt = {}", cal.dv_dt);
    }

    #[test]
    fn noiseless_measurement_recovers_thermal_network() {
        let r = rig(0.0);
        let cal = r.calibrate(&[303.15, 308.15, 313.15], 512).unwrap();
        let m = r.measure(303.15, cal, 1024).unwrap();
        // True Rth = 800 K/W; self-heating power ~ 16 mW, ΔT ~ 12 K with
        // feedback. Extraction error should be a few percent.
        assert!((m.rth - 800.0).abs() / 800.0 < 0.08, "rth = {}", m.rth);
        assert!((m.cth - 2e-5).abs() / 2e-5 < 0.12, "cth = {}", m.cth);
        assert!(m.delta_t > 2.0 && m.delta_t < 50.0, "dT = {}", m.delta_t);
    }

    #[test]
    fn noisy_measurement_still_close() {
        let r = rig(2e-4); // ~noise at the mV level on a ~100 mV signal
        let cal = r.calibrate(&[303.15, 308.15, 313.15], 1024).unwrap();
        let m = r.measure(303.15, cal, 2048).unwrap();
        assert!((m.rth - 800.0).abs() / 800.0 < 0.2, "rth = {}", m.rth);
    }

    #[test]
    fn measurement_is_repeatable_with_same_seed() {
        let r = rig(1e-4);
        let cal = r.calibrate(&[303.15, 313.15], 512).unwrap();
        let a = r.measure(303.15, cal, 512).unwrap();
        let b = r.measure(303.15, cal, 512).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ambient_shifts_do_not_break_extraction() {
        // The paper repeats at three ambients to check linearity: extracted
        // Rth should be ambient-independent to first order.
        let r = rig(0.0);
        let cal = r.calibrate(&[303.15, 308.15, 313.15], 512).unwrap();
        let m30 = r.measure(303.15, cal, 1024).unwrap();
        let m40 = r.measure(313.15, cal, 1024).unwrap();
        assert!((m30.rth - m40.rth).abs() / m30.rth < 0.05);
    }

    #[test]
    fn config_errors_are_reported() {
        let mut r = rig(0.0);
        r.sense_resistance = 0.0;
        assert!(matches!(
            r.capture(300.0, 512),
            Err(MeasureError::BadConfig { .. })
        ));
        let r = rig(0.0);
        assert!(matches!(
            r.capture(300.0, 4),
            Err(MeasureError::BadConfig { .. })
        ));
        assert!(matches!(
            r.calibrate(&[300.0], 512),
            Err(MeasureError::BadConfig { .. })
        ));
    }

    #[test]
    fn flat_calibration_is_rejected() {
        let r = rig(0.0);
        let cal = Calibration {
            v_ref: 0.1,
            t_ref: 300.0,
            dv_dt: 0.0,
        };
        assert!(matches!(
            r.measure(300.0, cal, 512),
            Err(MeasureError::FlatCalibration { .. })
        ));
    }
}
