//! Steady-state 3-D finite-difference conduction solver.
//!
//! Discretizes the die as `nx × ny × nz` brick cells of silicon with the
//! paper's boundary conditions (§3, Fig. 4):
//!
//! * **top and four sides adiabatic** — natural (no-flux) Neumann boundaries
//!   in the cell-centred scheme,
//! * **bottom isothermal** at the heat-sink temperature — Dirichlet via
//!   half-cell ghost coupling.
//!
//! Power enters through a per-top-cell power map (W per cell). The
//! discretized operator is symmetric positive definite and is solved by
//! Jacobi-preconditioned conjugate gradients.
//!
//! This is the "HotSpot-style" numerical reference used to validate the
//! analytical model's method of images (Figs. 6–7) and to define the true
//! thermal resistance of the finite die in the Fig. 10 experiment.

use ptherm_math::cg::{solve_cg, SolveCgError};
use ptherm_math::CsrMatrix;
use std::fmt;

/// Error produced by [`FdmSolver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveFdmError {
    /// Grid or geometry parameters are invalid.
    BadGeometry {
        /// Explanation.
        detail: String,
    },
    /// The power map does not match the grid.
    PowerMapMismatch {
        /// Cells expected (`nx · ny`).
        expected: usize,
        /// Cells provided.
        found: usize,
    },
    /// The linear solve failed.
    LinearSolve(SolveCgError),
}

impl fmt::Display for SolveFdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveFdmError::BadGeometry { detail } => write!(f, "bad fdm geometry: {detail}"),
            SolveFdmError::PowerMapMismatch { expected, found } => {
                write!(f, "power map has {found} cells, grid needs {expected}")
            }
            SolveFdmError::LinearSolve(e) => write!(f, "fdm linear solve failed: {e}"),
        }
    }
}

impl std::error::Error for SolveFdmError {}

/// Finite-difference solver for one die geometry.
#[derive(Debug, Clone)]
pub struct FdmSolver {
    /// Die width (x), m.
    pub die_w: f64,
    /// Die depth (y), m.
    pub die_l: f64,
    /// Substrate thickness (z), m.
    pub thickness: f64,
    /// Thermal conductivity, W/(m·K).
    pub k: f64,
    /// Heat-sink (bottom) temperature, K.
    pub sink_temperature: f64,
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Grid cells along z.
    pub nz: usize,
}

/// Solved temperature field.
#[derive(Debug, Clone)]
pub struct FdmSolution {
    nx: usize,
    ny: usize,
    nz: usize,
    die_w: f64,
    die_l: f64,
    /// Cell-centre temperatures, indexed `ix + nx·(iy + ny·iz)`, K.
    temperatures: Vec<f64>,
    /// CG iterations spent.
    pub iterations: usize,
}

impl FdmSolution {
    /// Temperature of the cell `(ix, iy)` in the top (surface) layer, K.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn surface_cell(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny, "surface cell out of range");
        self.temperatures[ix + self.nx * iy]
    }

    /// Bilinear sample of the surface temperature at physical `(x, y)`
    /// (die coordinates, origin at the die corner), K.
    pub fn surface_at(&self, x: f64, y: f64) -> f64 {
        let dx = self.die_w / self.nx as f64;
        let dy = self.die_l / self.ny as f64;
        // Cell-centre coordinates; clamp into the valid interpolation range.
        let fx = (x / dx - 0.5).clamp(0.0, (self.nx - 1) as f64);
        let fy = (y / dy - 0.5).clamp(0.0, (self.ny - 1) as f64);
        let ix = (fx as usize).min(self.nx - 2);
        let iy = (fy as usize).min(self.ny - 2);
        let wx = fx - ix as f64;
        let wy = fy - iy as f64;
        let t = |i: usize, j: usize| self.surface_cell(i, j);
        (1.0 - wx) * (1.0 - wy) * t(ix, iy)
            + wx * (1.0 - wy) * t(ix + 1, iy)
            + (1.0 - wx) * wy * t(ix, iy + 1)
            + wx * wy * t(ix + 1, iy + 1)
    }

    /// Peak surface temperature, K.
    pub fn surface_peak(&self) -> f64 {
        self.temperatures[..self.nx * self.ny]
            .iter()
            .fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn grid(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Full temperature of cell `(ix, iy, iz)` (iz = 0 is the surface), K.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn cell(&self, ix: usize, iy: usize, iz: usize) -> f64 {
        assert!(
            ix < self.nx && iy < self.ny && iz < self.nz,
            "cell out of range"
        );
        self.temperatures[ix + self.nx * (iy + self.ny * iz)]
    }
}

impl FdmSolver {
    fn validate(&self) -> Result<(), SolveFdmError> {
        let ok_dims = self.die_w > 0.0 && self.die_l > 0.0 && self.thickness > 0.0;
        let ok_grid = self.nx >= 2 && self.ny >= 2 && self.nz >= 2;
        let ok_phys = self.k > 0.0 && self.sink_temperature > 0.0;
        if !(ok_dims && ok_grid && ok_phys) {
            return Err(SolveFdmError::BadGeometry {
                detail: format!(
                    "dims ({}, {}, {}), grid ({}, {}, {}), k {}, sink {}",
                    self.die_w,
                    self.die_l,
                    self.thickness,
                    self.nx,
                    self.ny,
                    self.nz,
                    self.k,
                    self.sink_temperature
                ),
            });
        }
        Ok(())
    }

    /// Solves the steady temperature field for `power_map` (watts per top
    /// cell, row-major `nx × ny`).
    ///
    /// # Errors
    ///
    /// See [`SolveFdmError`].
    pub fn solve(&self, power_map: &[f64]) -> Result<FdmSolution, SolveFdmError> {
        self.validate()?;
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        if power_map.len() != nx * ny {
            return Err(SolveFdmError::PowerMapMismatch {
                expected: nx * ny,
                found: power_map.len(),
            });
        }
        let dx = self.die_w / nx as f64;
        let dy = self.die_l / ny as f64;
        let dz = self.thickness / nz as f64;
        let n = nx * ny * nz;
        let idx = |ix: usize, iy: usize, iz: usize| ix + nx * (iy + ny * iz);

        // Face conductances, W/K.
        let gx = self.k * dy * dz / dx;
        let gy = self.k * dx * dz / dy;
        let gz = self.k * dx * dy / dz;
        // Bottom Dirichlet: half-cell distance to the sink plane.
        let g_sink = self.k * dx * dy / (dz / 2.0);

        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(7 * n);
        let mut rhs = vec![0.0; n];

        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = idx(ix, iy, iz);
                    let mut diag = 0.0;
                    let mut couple = |j: usize, g: f64, triplets: &mut Vec<(usize, usize, f64)>| {
                        triplets.push((i, j, -g));
                        diag += g;
                    };
                    if ix > 0 {
                        couple(idx(ix - 1, iy, iz), gx, &mut triplets);
                    }
                    if ix + 1 < nx {
                        couple(idx(ix + 1, iy, iz), gx, &mut triplets);
                    }
                    if iy > 0 {
                        couple(idx(ix, iy - 1, iz), gy, &mut triplets);
                    }
                    if iy + 1 < ny {
                        couple(idx(ix, iy + 1, iz), gy, &mut triplets);
                    }
                    if iz > 0 {
                        couple(idx(ix, iy, iz - 1), gz, &mut triplets);
                    }
                    if iz + 1 < nz {
                        couple(idx(ix, iy, iz + 1), gz, &mut triplets);
                    }
                    if iz == nz - 1 {
                        // Dirichlet bottom through the half-cell conductance.
                        diag += g_sink;
                        rhs[i] += g_sink * self.sink_temperature;
                    }
                    if iz == 0 {
                        rhs[i] += power_map[ix + nx * iy];
                    }
                    triplets.push((i, i, diag));
                }
            }
        }

        let a = CsrMatrix::from_triplets(n, &triplets)
            .expect("triplet indices are in range by construction");
        let sol = solve_cg(&a, &rhs, 1e-10, 20 * n).map_err(SolveFdmError::LinearSolve)?;
        Ok(FdmSolution {
            nx,
            ny,
            nz,
            die_w: self.die_w,
            die_l: self.die_l,
            temperatures: sol.x,
            iterations: sol.iterations,
        })
    }

    /// Thermal resistance (K/W) seen by a `w × l` source centred at
    /// `(cx, cy)` on the die surface: solves the field for that source alone
    /// and reports the source-averaged temperature rise per watt.
    ///
    /// # Errors
    ///
    /// See [`SolveFdmError`].
    pub fn source_thermal_resistance(
        &self,
        w: f64,
        l: f64,
        cx: f64,
        cy: f64,
    ) -> Result<f64, SolveFdmError> {
        self.validate()?;
        let power = 1.0;
        let map = rasterize_rect(
            self.nx, self.ny, self.die_w, self.die_l, cx, cy, w, l, power,
        );
        let sol = self.solve(&map)?;
        // Power-weighted average temperature over the source footprint.
        let mut t_avg = 0.0;
        let mut p_tot = 0.0;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let p = map[ix + self.nx * iy];
                if p > 0.0 {
                    t_avg += p * sol.surface_cell(ix, iy);
                    p_tot += p;
                }
            }
        }
        Ok((t_avg / p_tot - self.sink_temperature) / power)
    }
}

/// Rasterizes a `w × l` rectangle centred at `(cx, cy)` dissipating `power`
/// onto an `nx × ny` top-cell power map (area-weighted on boundary cells).
#[allow(clippy::too_many_arguments)]
pub fn rasterize_rect(
    nx: usize,
    ny: usize,
    die_w: f64,
    die_l: f64,
    cx: f64,
    cy: f64,
    w: f64,
    l: f64,
    power: f64,
) -> Vec<f64> {
    let dx = die_w / nx as f64;
    let dy = die_l / ny as f64;
    let x0 = cx - w / 2.0;
    let x1 = cx + w / 2.0;
    let y0 = cy - l / 2.0;
    let y1 = cy + l / 2.0;
    let mut map = vec![0.0; nx * ny];
    let mut covered = 0.0;
    for iy in 0..ny {
        let cy0 = iy as f64 * dy;
        let cy1 = cy0 + dy;
        let oy = (y1.min(cy1) - y0.max(cy0)).max(0.0);
        if oy == 0.0 {
            continue;
        }
        for ix in 0..nx {
            let cx0 = ix as f64 * dx;
            let cx1 = cx0 + dx;
            let ox = (x1.min(cx1) - x0.max(cx0)).max(0.0);
            if ox == 0.0 {
                continue;
            }
            let a = ox * oy;
            map[ix + nx * iy] = a;
            covered += a;
        }
    }
    if covered > 0.0 {
        for v in &mut map {
            *v *= power / covered;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_die() -> FdmSolver {
        FdmSolver {
            die_w: 1e-3,
            die_l: 1e-3,
            thickness: 0.3e-3,
            k: 148.0,
            sink_temperature: 300.0,
            nx: 16,
            ny: 16,
            nz: 6,
        }
    }

    #[test]
    fn zero_power_gives_sink_temperature() {
        let s = small_die();
        let sol = s.solve(&vec![0.0; 16 * 16]).unwrap();
        for iy in 0..16 {
            for ix in 0..16 {
                assert!((sol.surface_cell(ix, iy) - 300.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn uniform_power_matches_1d_conduction() {
        // Uniform heating makes the problem 1-D: ΔT_surface =
        // P·(t − dz/2 + dz/2)/(k·A)... with cell centres, the top-cell
        // temperature sits (nz−1) full cells + half cell above the sink.
        let s = small_die();
        let p_total = 1.0;
        let map = vec![p_total / (16.0 * 16.0); 16 * 16];
        let sol = s.solve(&map).unwrap();
        let dz = s.thickness / s.nz as f64;
        let area = s.die_w * s.die_l;
        let depth = dz * (s.nz as f64 - 1.0) + dz / 2.0;
        let expect = 300.0 + p_total * depth / (s.k * area);
        let got = sol.surface_cell(8, 8);
        assert!(
            (got - expect).abs() / (expect - 300.0) < 1e-6,
            "{got} vs {expect}"
        );
    }

    #[test]
    fn hotspot_peaks_over_the_source() {
        let s = small_die();
        let map = rasterize_rect(16, 16, 1e-3, 1e-3, 0.25e-3, 0.75e-3, 0.1e-3, 0.1e-3, 0.5);
        let sol = s.solve(&map).unwrap();
        // Hottest cell must be inside the source footprint.
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for iy in 0..16 {
            for ix in 0..16 {
                let t = sol.surface_cell(ix, iy);
                if t > best.2 {
                    best = (ix, iy, t);
                }
            }
        }
        let (bx, by, bt) = best;
        assert!(bt > 300.0);
        // Source centred at cell (4, 12) for this grid.
        assert!(
            (bx as i64 - 4).abs() <= 1 && (by as i64 - 12).abs() <= 1,
            "peak at ({bx},{by})"
        );
    }

    #[test]
    fn superposition_holds() {
        // The operator is linear: field(a + b) = field(a) + field(b) - sink.
        let s = small_die();
        let m1 = rasterize_rect(16, 16, 1e-3, 1e-3, 0.3e-3, 0.3e-3, 0.1e-3, 0.1e-3, 0.2);
        let m2 = rasterize_rect(16, 16, 1e-3, 1e-3, 0.7e-3, 0.6e-3, 0.2e-3, 0.1e-3, 0.4);
        let both: Vec<f64> = m1.iter().zip(&m2).map(|(a, b)| a + b).collect();
        let s1 = s.solve(&m1).unwrap();
        let s2 = s.solve(&m2).unwrap();
        let s12 = s.solve(&both).unwrap();
        for iy in (0..16).step_by(5) {
            for ix in (0..16).step_by(5) {
                let lin = s1.surface_cell(ix, iy) + s2.surface_cell(ix, iy) - 300.0;
                let direct = s12.surface_cell(ix, iy);
                assert!(
                    (lin - direct).abs() < 1e-6,
                    "({ix},{iy}): {lin} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn energy_balance_through_the_bottom() {
        // In steady state all injected power exits through the sink:
        // sum over bottom cells of g_sink (T_cell - T_sink) = P_total.
        let s = small_die();
        let p_total = 0.7;
        let map = rasterize_rect(16, 16, 1e-3, 1e-3, 0.5e-3, 0.5e-3, 0.3e-3, 0.2e-3, p_total);
        let sol = s.solve(&map).unwrap();
        let dz = s.thickness / s.nz as f64;
        let dx = s.die_w / s.nx as f64;
        let dy = s.die_l / s.ny as f64;
        let g_sink = s.k * dx * dy / (dz / 2.0);
        let mut q_out = 0.0;
        for iy in 0..16 {
            for ix in 0..16 {
                q_out += g_sink * (sol.cell(ix, iy, 5) - 300.0);
            }
        }
        assert!((q_out - p_total).abs() / p_total < 1e-6, "q_out = {q_out}");
    }

    #[test]
    fn adiabatic_edges_have_zero_normal_gradient() {
        // The cell-centred scheme enforces no-flux structurally (no coupling
        // beyond the boundary), so the outermost two cells should be close
        // when the source is far away. On this deliberately coarse 16x16
        // grid the residual one-cell difference can reach ~20% of the local
        // rise near rows aligned with the source; the method-of-images
        // integration tests make the sharper comparison on finer grids.
        let s = small_die();
        let map = rasterize_rect(16, 16, 1e-3, 1e-3, 0.5e-3, 0.5e-3, 0.1e-3, 0.1e-3, 0.5);
        let sol = s.solve(&map).unwrap();
        for iy in 0..16 {
            let a = sol.surface_cell(0, iy);
            let b = sol.surface_cell(1, iy);
            let rel = (a - b).abs() / (a - 300.0).abs().max(1e-12);
            assert!(rel < 0.25, "row {iy}: edge gradient {rel}");
        }
    }

    #[test]
    fn rasterize_conserves_power() {
        let map = rasterize_rect(8, 8, 1e-3, 1e-3, 0.2e-3, 0.9e-3, 0.3e-3, 0.3e-3, 2.5);
        let sum: f64 = map.iter().sum();
        assert!((sum - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let mut s = small_die();
        s.nx = 1;
        assert!(matches!(
            s.solve(&[0.0; 16]),
            Err(SolveFdmError::BadGeometry { .. })
        ));
        let s = small_die();
        assert!(matches!(
            s.solve(&[0.0; 3]),
            Err(SolveFdmError::PowerMapMismatch { .. })
        ));
    }

    #[test]
    fn thermal_resistance_scales_inversely_with_source_size() {
        let s = small_die();
        let r_small = s
            .source_thermal_resistance(50e-6, 50e-6, 0.5e-3, 0.5e-3)
            .unwrap();
        let r_big = s
            .source_thermal_resistance(200e-6, 200e-6, 0.5e-3, 0.5e-3)
            .unwrap();
        assert!(r_small > r_big, "{r_small} vs {r_big}");
        assert!(r_small > 0.0);
    }

    #[test]
    fn surface_interpolation_is_continuous() {
        let s = small_die();
        let map = rasterize_rect(16, 16, 1e-3, 1e-3, 0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.5);
        let sol = s.solve(&map).unwrap();
        let a = sol.surface_at(0.50e-3, 0.50e-3);
        let b = sol.surface_at(0.50e-3 + 1e-6, 0.50e-3);
        assert!((a - b).abs() < 0.5, "interpolation jump: {a} vs {b}");
        assert!(a > 300.0);
    }
}
