//! Chip geometry, block floorplans and power maps.
//!
//! The paper's block-level thermal model (§3.3, Fig. 6) works on a set of
//! rectangular power sources inside a die with adiabatic sides and an
//! isothermal bottom. This crate owns that geometry:
//!
//! * [`Block`] — a named rectangle with a power assignment,
//! * [`ChipGeometry`] — die dimensions, substrate thickness, conductivity
//!   and heat-sink temperature,
//! * [`Floorplan`] — validated block collection with overlap / bounds
//!   checks, rasterization onto grid power maps, and seeded generators for
//!   synthetic chips (regular tiles and the paper's three-block layout).
//!
//! Coordinates: origin at the lower-left die corner; block positions are
//! their **centres** (matching the paper's "rectangles located at (x_i,
//! y_i)" in Eq. 21).

pub mod fingerprint;
pub mod generator;

use fingerprint::Fingerprinter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular power source on the die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name, unique within a floorplan.
    pub name: String,
    /// Centre x, m.
    pub cx: f64,
    /// Centre y, m.
    pub cy: f64,
    /// Width (x extent), m.
    pub w: f64,
    /// Length (y extent), m.
    pub l: f64,
    /// Dissipated power, W.
    pub power: f64,
}

impl Block {
    /// Creates a block from centre, size and power.
    pub fn new(name: impl Into<String>, cx: f64, cy: f64, w: f64, l: f64, power: f64) -> Self {
        Block {
            name: name.into(),
            cx,
            cy,
            w,
            l,
            power,
        }
    }

    /// Area, m².
    pub fn area(&self) -> f64 {
        self.w * self.l
    }

    /// Power density, W/m².
    pub fn power_density(&self) -> f64 {
        self.power / self.area()
    }

    /// Axis-aligned bounds `(x0, y0, x1, y1)`.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        (
            self.cx - self.w / 2.0,
            self.cy - self.l / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.l / 2.0,
        )
    }

    fn overlaps(&self, other: &Block) -> bool {
        let (ax0, ay0, ax1, ay1) = self.bounds();
        let (bx0, by0, bx1, by1) = other.bounds();
        ax0 < bx1 && bx0 < ax1 && ay0 < by1 && by0 < ay1
    }
}

/// Die geometry and thermal boundary data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// Die width (x), m.
    pub width: f64,
    /// Die depth (y), m.
    pub length: f64,
    /// Substrate thickness, m.
    pub thickness: f64,
    /// Substrate thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Heat-sink temperature at the die bottom, K.
    pub sink_temperature: f64,
}

impl ChipGeometry {
    /// A 1 mm × 1 mm die (the paper's Fig. 6 example) with a 300 µm
    /// substrate on a 300 K sink.
    pub fn paper_1mm() -> Self {
        ChipGeometry {
            width: 1e-3,
            length: 1e-3,
            thickness: 0.3e-3,
            conductivity: 148.0,
            sink_temperature: 300.0,
        }
    }
}

/// Error produced by [`Floorplan::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildFloorplanError {
    /// A block extends beyond the die.
    OutOfBounds {
        /// Offending block name.
        block: String,
    },
    /// Two blocks overlap.
    Overlap {
        /// First block.
        a: String,
        /// Second block.
        b: String,
    },
    /// A block has non-positive dimensions or negative power.
    BadBlock {
        /// Offending block name.
        block: String,
        /// Explanation.
        detail: String,
    },
    /// Duplicate block name.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
}

impl fmt::Display for BuildFloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildFloorplanError::OutOfBounds { block } => {
                write!(f, "block {block} extends beyond the die")
            }
            BuildFloorplanError::Overlap { a, b } => write!(f, "blocks {a} and {b} overlap"),
            BuildFloorplanError::BadBlock { block, detail } => {
                write!(f, "block {block} is invalid: {detail}")
            }
            BuildFloorplanError::DuplicateName { name } => {
                write!(f, "duplicate block name {name}")
            }
        }
    }
}

impl std::error::Error for BuildFloorplanError {}

/// A validated floorplan: blocks inside the die, pairwise non-overlapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    geometry: ChipGeometry,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Validates and builds a floorplan.
    ///
    /// # Errors
    ///
    /// See [`BuildFloorplanError`].
    pub fn new(geometry: ChipGeometry, blocks: Vec<Block>) -> Result<Self, BuildFloorplanError> {
        for b in &blocks {
            let dims_ok = b.w > 0.0 && b.l > 0.0;
            if !dims_ok || !b.power.is_finite() || b.power < 0.0 {
                return Err(BuildFloorplanError::BadBlock {
                    block: b.name.clone(),
                    detail: format!("w {}, l {}, power {}", b.w, b.l, b.power),
                });
            }
            let (x0, y0, x1, y1) = b.bounds();
            let eps = 1e-12;
            if x0 < -eps || y0 < -eps || x1 > geometry.width + eps || y1 > geometry.length + eps {
                return Err(BuildFloorplanError::OutOfBounds {
                    block: b.name.clone(),
                });
            }
        }
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                if blocks[i].name == blocks[j].name {
                    return Err(BuildFloorplanError::DuplicateName {
                        name: blocks[i].name.clone(),
                    });
                }
                if blocks[i].overlaps(&blocks[j]) {
                    return Err(BuildFloorplanError::Overlap {
                        a: blocks[i].name.clone(),
                        b: blocks[j].name.clone(),
                    });
                }
            }
        }
        Ok(Floorplan { geometry, blocks })
    }

    /// Die geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.geometry
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Mutable access to block powers (geometry is fixed after validation;
    /// powers are what co-simulation iterates on).
    pub fn set_power(&mut self, block_index: usize, power: f64) {
        assert!(
            power.is_finite() && power >= 0.0,
            "power must be finite and non-negative"
        );
        self.blocks[block_index].power = power;
    }

    /// Total dissipated power, W.
    pub fn total_power(&self) -> f64 {
        self.blocks.iter().map(|b| b.power).sum()
    }

    /// Rasterizes all blocks onto an `nx × ny` top-surface power map
    /// (row-major, W per cell) for the finite-difference reference solver.
    pub fn power_map(&self, nx: usize, ny: usize) -> Vec<f64> {
        let mut map = vec![0.0; nx * ny];
        for b in &self.blocks {
            for &(cell, fraction) in
                &rasterize_stencil(nx, ny, self.geometry.width, self.geometry.length, b)
            {
                map[cell] += b.power * fraction;
            }
        }
        map
    }

    /// Stable content fingerprint of the **full** floorplan: die
    /// geometry, every block rectangle, every block name and every
    /// recorded power. Any edit — including [`Self::set_power`] —
    /// changes it. Use this to key anything that reads power
    /// assignments; thermal-operator caching wants the narrower
    /// [`Self::geometry_fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprinter::new("ptherm.floorplan.v1");
        self.write_geometry(&mut f);
        for b in &self.blocks {
            f.write_str(&b.name);
            f.write_f64(b.power);
        }
        f.finish()
    }

    /// Stable fingerprint of exactly what the thermal influence
    /// operator reads: die geometry (dimensions, thickness,
    /// conductivity, sink temperature) and every block rectangle —
    /// **not** block names or powers (the operator is per-watt and
    /// name-blind, see `ThermalOperator`). Two floorplans with equal
    /// geometry fingerprints yield bit-identical operators at equal
    /// image orders, which is what makes it a safe cache key.
    pub fn geometry_fingerprint(&self) -> u64 {
        let mut f = Fingerprinter::new("ptherm.floorplan.geometry.v1");
        self.write_geometry(&mut f);
        f.finish()
    }

    /// [`Self::geometry_fingerprint`] extended with an `nx × ny` tile
    /// grid — the key of grid-resolved precomputations (the spatial map
    /// operator's Green's-function kernels and rasterization stencils
    /// read exactly the geometry plus the grid dimensions). Like the
    /// geometry fingerprint it is power- and name-blind, so a fleet
    /// cache entry survives `set_power` edits.
    pub fn grid_fingerprint(&self, nx: usize, ny: usize) -> u64 {
        let mut f = Fingerprinter::new("ptherm.floorplan.grid.v1");
        self.write_geometry(&mut f);
        f.write_u64(nx as u64);
        f.write_u64(ny as u64);
        f.finish()
    }

    /// Shared geometry payload of both fingerprints.
    fn write_geometry(&self, f: &mut Fingerprinter) {
        f.write_f64(self.geometry.width);
        f.write_f64(self.geometry.length);
        f.write_f64(self.geometry.thickness);
        f.write_f64(self.geometry.conductivity);
        f.write_f64(self.geometry.sink_temperature);
        f.write_u64(self.blocks.len() as u64);
        for b in &self.blocks {
            f.write_f64(b.cx);
            f.write_f64(b.cy);
            f.write_f64(b.w);
            f.write_f64(b.l);
        }
    }

    /// The paper's Fig. 6 scenario: three logic blocks inside a 1 mm die.
    /// Powers follow the figure's relative sizes (one large warm block, two
    /// small hot blocks).
    pub fn paper_three_blocks() -> Self {
        let geometry = ChipGeometry::paper_1mm();
        let blocks = vec![
            Block::new("blk-a", 0.30e-3, 0.70e-3, 0.40e-3, 0.30e-3, 0.35),
            Block::new("blk-b", 0.75e-3, 0.55e-3, 0.25e-3, 0.25e-3, 0.30),
            Block::new("blk-c", 0.35e-3, 0.25e-3, 0.30e-3, 0.20e-3, 0.25),
        ];
        Floorplan::new(geometry, blocks).expect("paper layout is valid")
    }
}

/// Area-overlap rasterization stencil of one block on an `nx × ny`
/// tile grid over a `die_w × die_l` die: the covered cells (row-major,
/// `ix + nx·iy`) and the fraction of the block's power each receives.
/// Fractions are normalized over the covered area, so they sum to 1 and
/// rasterization conserves power exactly whatever the block/grid
/// alignment. [`Floorplan::power_map`] applies a stencil per block with
/// its recorded power; the spatial map engine caches stencils so
/// per-scenario power vectors rasterize with no geometry work.
pub fn rasterize_stencil(
    nx: usize,
    ny: usize,
    die_w: f64,
    die_l: f64,
    b: &Block,
) -> Vec<(usize, f64)> {
    let dx = die_w / nx as f64;
    let dy = die_l / ny as f64;
    let (x0, y0, x1, y1) = b.bounds();
    let mut cells = Vec::new();
    let mut covered = 0.0;
    for iy in 0..ny {
        let cy0 = iy as f64 * dy;
        let cy1 = cy0 + dy;
        let oy = (y1.min(cy1) - y0.max(cy0)).max(0.0);
        if oy == 0.0 {
            continue;
        }
        for ix in 0..nx {
            let cx0 = ix as f64 * dx;
            let cx1 = cx0 + dx;
            let ox = (x1.min(cx1) - x0.max(cx0)).max(0.0);
            if ox == 0.0 {
                continue;
            }
            let a = ox * oy;
            cells.push((ix + nx * iy, a));
            covered += a;
        }
    }
    if covered > 0.0 {
        for (_, f) in &mut cells {
            *f /= covered;
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_is_valid_and_summing() {
        let fp = Floorplan::paper_three_blocks();
        assert_eq!(fp.blocks().len(), 3);
        assert!((fp.total_power() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let g = ChipGeometry::paper_1mm();
        let err = Floorplan::new(
            g,
            vec![Block::new("b", 0.95e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.1)],
        )
        .unwrap_err();
        assert!(matches!(err, BuildFloorplanError::OutOfBounds { .. }));
    }

    #[test]
    fn overlap_is_rejected() {
        let g = ChipGeometry::paper_1mm();
        let err = Floorplan::new(
            g,
            vec![
                Block::new("a", 0.5e-3, 0.5e-3, 0.3e-3, 0.3e-3, 0.1),
                Block::new("b", 0.6e-3, 0.6e-3, 0.3e-3, 0.3e-3, 0.1),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, BuildFloorplanError::Overlap { .. }));
    }

    #[test]
    fn touching_blocks_are_allowed() {
        let g = ChipGeometry::paper_1mm();
        let fp = Floorplan::new(
            g,
            vec![
                Block::new("a", 0.25e-3, 0.5e-3, 0.5e-3, 0.5e-3, 0.1),
                Block::new("b", 0.75e-3, 0.5e-3, 0.5e-3, 0.5e-3, 0.1),
            ],
        );
        assert!(fp.is_ok());
    }

    #[test]
    fn bad_blocks_and_duplicates_rejected() {
        let g = ChipGeometry::paper_1mm();
        assert!(matches!(
            Floorplan::new(g, vec![Block::new("a", 0.5e-3, 0.5e-3, 0.0, 0.1e-3, 0.1)]),
            Err(BuildFloorplanError::BadBlock { .. })
        ));
        assert!(matches!(
            Floorplan::new(
                g,
                vec![Block::new("a", 0.5e-3, 0.5e-3, -0.1e-3, 0.1e-3, 0.1)]
            ),
            Err(BuildFloorplanError::BadBlock { .. })
        ));
        assert!(matches!(
            Floorplan::new(
                g,
                vec![
                    Block::new("a", 0.2e-3, 0.2e-3, 0.1e-3, 0.1e-3, 0.1),
                    Block::new("a", 0.7e-3, 0.7e-3, 0.1e-3, 0.1e-3, 0.1),
                ]
            ),
            Err(BuildFloorplanError::DuplicateName { .. })
        ));
    }

    #[test]
    fn power_map_conserves_power() {
        let fp = Floorplan::paper_three_blocks();
        let map = fp.power_map(32, 32);
        let total: f64 = map.iter().sum();
        assert!((total - fp.total_power()).abs() < 1e-12);
    }

    #[test]
    fn set_power_updates_totals() {
        let mut fp = Floorplan::paper_three_blocks();
        fp.set_power(0, 1.0);
        assert!((fp.total_power() - (1.0 + 0.30 + 0.25)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power must be finite")]
    fn set_power_rejects_nan() {
        let mut fp = Floorplan::paper_three_blocks();
        fp.set_power(0, f64::NAN);
    }

    #[test]
    fn fingerprint_tracks_content_and_geometry_fingerprint_ignores_power() {
        let fp = Floorplan::paper_three_blocks();
        let same = Floorplan::paper_three_blocks();
        assert_eq!(fp.fingerprint(), same.fingerprint());
        assert_eq!(fp.geometry_fingerprint(), same.geometry_fingerprint());

        // set_power changes the full fingerprint but not the geometry one.
        let mut powered = fp.clone();
        powered.set_power(1, 0.9);
        assert_ne!(fp.fingerprint(), powered.fingerprint());
        assert_eq!(fp.geometry_fingerprint(), powered.geometry_fingerprint());

        // A geometry edit changes both.
        let mut blocks = fp.blocks().to_vec();
        blocks[0].cx += 1e-5;
        let moved = Floorplan::new(*fp.geometry(), blocks).unwrap();
        assert_ne!(fp.fingerprint(), moved.fingerprint());
        assert_ne!(fp.geometry_fingerprint(), moved.geometry_fingerprint());

        // So does a die-geometry edit (sink temperature is operator input).
        let hot_sink = Floorplan::new(
            ChipGeometry {
                sink_temperature: 320.0,
                ..*fp.geometry()
            },
            fp.blocks().to_vec(),
        )
        .unwrap();
        assert_ne!(fp.geometry_fingerprint(), hot_sink.geometry_fingerprint());
    }

    #[test]
    fn block_names_affect_only_the_full_fingerprint() {
        let g = ChipGeometry::paper_1mm();
        let a = Floorplan::new(
            g,
            vec![Block::new("a", 0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.1)],
        )
        .unwrap();
        let b = Floorplan::new(
            g,
            vec![Block::new("b", 0.5e-3, 0.5e-3, 0.2e-3, 0.2e-3, 0.1)],
        )
        .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.geometry_fingerprint(), b.geometry_fingerprint());
    }

    #[test]
    fn block_accessors() {
        let b = Block::new("x", 1.0, 2.0, 0.5, 0.25, 2.0);
        assert_eq!(b.area(), 0.125);
        assert_eq!(b.power_density(), 16.0);
        assert_eq!(b.bounds(), (0.75, 1.875, 1.25, 2.125));
    }
}
