//! Stable content fingerprints for floorplans and derived operators.
//!
//! The fleet layer (`ptherm-fleet`) amortizes expensive precomputations —
//! thermal influence operators and implicit transient propagators —
//! across jobs by keying a bounded cache on **what the computation
//! actually reads**. That key must be
//!
//! * **content-based** (two floorplans with identical geometry hash
//!   identically, wherever they were built),
//! * **bitwise-exact** (fingerprint equality must imply the derived
//!   operator is bit-identical, so a cache hit can never change a
//!   result — the property the fleet test suite asserts), and
//! * **cheap and dependency-free** (hashing must be nanoseconds next to
//!   the ~tens-of-milliseconds factorizations it deduplicates).
//!
//! [`Fingerprinter`] is a 64-bit FNV-1a accumulator over *tagged*
//! primitives: every write mixes a domain tag byte before the payload,
//! so `["ab", "c"]` and `["a", "bc"]` (and an `f64` run vs a `u64` run)
//! cannot collide by concatenation. Floats are hashed by their IEEE bit
//! pattern — semantically equal but bitwise distinct values (`0.0` vs
//! `-0.0`) fingerprint differently, which costs at worst a spurious
//! cache miss, never a wrong hit.

/// Incremental 64-bit content hasher (FNV-1a core, tagged writes).
///
/// # Example
///
/// ```
/// use ptherm_floorplan::fingerprint::Fingerprinter;
///
/// let mut a = Fingerprinter::new("demo");
/// a.write_f64(1.5);
/// let mut b = Fingerprinter::new("demo");
/// b.write_f64(1.5);
/// assert_eq!(a.finish(), b.finish());
/// let mut c = Fingerprinter::new("demo");
/// c.write_f64(-1.5);
/// assert_ne!(a.finish(), c.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprinter {
    /// A fresh accumulator, domain-separated by `domain` so fingerprints
    /// of different object kinds never collide structurally.
    pub fn new(domain: &str) -> Self {
        let mut f = Fingerprinter { state: FNV_OFFSET };
        f.write_str(domain);
        f
    }

    fn write_byte(&mut self, byte: u8) {
        self.state ^= u64::from(byte);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    fn write_tagged(&mut self, tag: u8, bytes: &[u8]) {
        self.write_byte(tag);
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Mixes in an unsigned integer.
    pub fn write_u64(&mut self, value: u64) {
        self.write_tagged(b'u', &value.to_le_bytes());
    }

    /// Mixes in a float by IEEE-754 bit pattern.
    pub fn write_f64(&mut self, value: f64) {
        self.write_tagged(b'f', &value.to_bits().to_le_bytes());
    }

    /// Mixes in a string (length-prefixed via the tag scheme).
    pub fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        self.write_tagged(b's', value.as_bytes());
    }

    /// Mixes in a whole float slice, length-prefixed.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u64(values.len() as u64);
        for &v in values {
            self.write_f64(v);
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        // One final avalanche round (splitmix64) so low-entropy inputs
        // still spread across the whole word.
        let mut z = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fingerprinter::new("t");
        a.write_f64(1.0);
        a.write_f64(2.0);
        let mut b = Fingerprinter::new("t");
        b.write_f64(2.0);
        b.write_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprinter::new("t");
        c.write_f64(1.0);
        c.write_f64(2.0);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn domains_separate() {
        let a = Fingerprinter::new("one").finish();
        let b = Fingerprinter::new("two").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn string_concatenation_does_not_collide() {
        let mut a = Fingerprinter::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprinter::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn slice_boundaries_do_not_collide() {
        let mut a = Fingerprinter::new("t");
        a.write_f64_slice(&[1.0, 2.0]);
        a.write_f64_slice(&[3.0]);
        let mut b = Fingerprinter::new("t");
        b.write_f64_slice(&[1.0]);
        b.write_f64_slice(&[2.0, 3.0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn negative_zero_is_distinct() {
        let mut a = Fingerprinter::new("t");
        a.write_f64(0.0);
        let mut b = Fingerprinter::new("t");
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
