//! Synthetic floorplan generators for block-level experiments.

use crate::{Block, BuildFloorplanError, ChipGeometry, Floorplan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clips `block` to the die, rejecting blocks that lie entirely
/// outside it.
///
/// Blocks already inside the die (the only thing the generators below
/// produce for sane inputs) are returned **bit-identical** — clipping
/// never perturbs a valid layout, so operator fingerprints and rows are
/// unchanged. A block protruding past an edge is clamped to the die
/// boundary (centre and extent recomputed from the clipped bounds,
/// power preserved); one with no area left inside is rejected as
/// [`BuildFloorplanError::OutOfBounds`]. Every generator in this module
/// routes its blocks through this function, so a rounding- or
/// caller-induced protrusion can never reach the thermal operator as an
/// out-of-range image source.
///
/// # Errors
///
/// [`BuildFloorplanError::OutOfBounds`] if the block does not intersect
/// the die interior.
pub fn clip_to_die(geometry: &ChipGeometry, block: Block) -> Result<Block, BuildFloorplanError> {
    let (x0, y0, x1, y1) = block.bounds();
    if x0 >= 0.0 && y0 >= 0.0 && x1 <= geometry.width && y1 <= geometry.length {
        return Ok(block);
    }
    let (cx0, cy0) = (x0.max(0.0), y0.max(0.0));
    let (cx1, cy1) = (x1.min(geometry.width), y1.min(geometry.length));
    if cx1 <= cx0 || cy1 <= cy0 {
        return Err(BuildFloorplanError::OutOfBounds { block: block.name });
    }
    Ok(Block::new(
        block.name,
        (cx0 + cx1) / 2.0,
        (cy0 + cy1) / 2.0,
        cx1 - cx0,
        cy1 - cy0,
        block.power,
    ))
}

fn clipped_floorplan(
    geometry: ChipGeometry,
    blocks: Vec<Block>,
) -> Result<Floorplan, BuildFloorplanError> {
    let blocks = blocks
        .into_iter()
        .map(|b| clip_to_die(&geometry, b))
        .collect::<Result<Vec<_>, _>>()?;
    Floorplan::new(geometry, blocks)
}

/// Regular `rows × cols` tiling of the die with uniform gutter spacing;
/// per-tile powers are drawn from `[p_min, p_max)` with a seeded RNG.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`] (cannot occur for sane inputs — tiles
/// never overlap by construction).
///
/// # Panics
///
/// Panics if `rows`/`cols` are zero or `p_min > p_max`.
pub fn tiled(
    geometry: ChipGeometry,
    rows: usize,
    cols: usize,
    p_min: f64,
    p_max: f64,
    seed: u64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(rows > 0 && cols > 0, "need at least one tile");
    assert!(p_min <= p_max && p_min >= 0.0, "bad power range");
    let mut rng = StdRng::seed_from_u64(seed);
    let gutter = 0.1; // 10% of the pitch between tiles
    let pitch_x = geometry.width / cols as f64;
    let pitch_y = geometry.length / rows as f64;
    let w = pitch_x * (1.0 - gutter);
    let l = pitch_y * (1.0 - gutter);
    let mut blocks = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let power = if p_min == p_max {
                p_min
            } else {
                rng.gen_range(p_min..p_max)
            };
            blocks.push(Block::new(
                format!("tile-{r}-{c}"),
                (c as f64 + 0.5) * pitch_x,
                (r as f64 + 0.5) * pitch_y,
                w,
                l,
                power,
            ));
        }
    }
    clipped_floorplan(geometry, blocks)
}

/// A floorplan whose blocks are exactly the tiles of an `nx × ny` grid
/// over the die, with per-tile powers from `power(tile_index)` — the
/// configuration on which the FFT map engine must reproduce the dense
/// influence operator exactly (blocks coincide with map tiles), used by
/// its cross-validation tests and the `map` bench.
///
/// Blocks are sized a hair (1e-9 relative) under the tile pitch so
/// floating-point rounding of touching bounds can never trip the
/// overlap check; the shrink keeps every block strictly inside its own
/// tile (single-cell rasterization stencils) and moves the Eq. 20
/// kernel by ~1e-9 relative — far below any cross-validation bar.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`] (cannot occur for sane inputs).
///
/// # Panics
///
/// Panics if `nx`/`ny` are zero.
pub fn tile_aligned(
    geometry: ChipGeometry,
    nx: usize,
    ny: usize,
    power: impl Fn(usize) -> f64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(nx > 0 && ny > 0, "need at least one tile");
    let pitch_x = geometry.width / nx as f64;
    let pitch_y = geometry.length / ny as f64;
    let shrink = 1.0 - 1e-9;
    let blocks = (0..nx * ny)
        .map(|i| {
            let (ix, iy) = (i % nx, i / nx);
            Block::new(
                format!("t{ix}-{iy}"),
                (ix as f64 + 0.5) * pitch_x,
                (iy as f64 + 0.5) * pitch_y,
                pitch_x * shrink,
                pitch_y * shrink,
                power(i),
            )
        })
        .collect();
    clipped_floorplan(geometry, blocks)
}

/// A single centred hotspot block covering `fraction` of the die area and
/// dissipating `power` — the minimal thermal scenario.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`].
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn hotspot(
    geometry: ChipGeometry,
    fraction: f64,
    power: f64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
    let scale = fraction.sqrt();
    let block = Block::new(
        "hotspot",
        geometry.width / 2.0,
        geometry.length / 2.0,
        geometry.width * scale,
        geometry.length * scale,
        power,
    );
    clipped_floorplan(geometry, vec![block])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_is_valid_and_repeatable() {
        let g = ChipGeometry::paper_1mm();
        let a = tiled(g, 4, 4, 0.01, 0.1, 9).unwrap();
        let b = tiled(g, 4, 4, 0.01, 0.1, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.blocks().len(), 16);
        assert!(a.total_power() > 0.16 && a.total_power() < 1.6);
    }

    #[test]
    fn tiled_uniform_power_option() {
        let g = ChipGeometry::paper_1mm();
        let fp = tiled(g, 2, 3, 0.05, 0.05, 0).unwrap();
        for b in fp.blocks() {
            assert_eq!(b.power, 0.05);
        }
    }

    #[test]
    fn tile_aligned_blocks_sit_on_tile_centers_inside_their_tiles() {
        let g = ChipGeometry::paper_1mm();
        let fp = tile_aligned(g, 5, 3, |i| 0.001 * i as f64).unwrap();
        assert_eq!(fp.blocks().len(), 15);
        let (px, py) = (g.width / 5.0, g.length / 3.0);
        for (i, b) in fp.blocks().iter().enumerate() {
            let (ix, iy) = (i % 5, i / 5);
            assert_eq!(b.cx, (ix as f64 + 0.5) * px);
            assert_eq!(b.cy, (iy as f64 + 0.5) * py);
            // Strictly inside its own tile.
            let (x0, y0, x1, y1) = b.bounds();
            assert!(x0 > ix as f64 * px && x1 < (ix + 1) as f64 * px);
            assert!(y0 > iy as f64 * py && y1 < (iy + 1) as f64 * py);
            assert_eq!(b.power, 0.001 * i as f64);
        }
    }

    #[test]
    fn hotspot_covers_requested_fraction() {
        let g = ChipGeometry::paper_1mm();
        let fp = hotspot(g, 0.25, 1.0).unwrap();
        let b = &fp.blocks()[0];
        let frac = b.area() / (g.width * g.length);
        assert!((frac - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction in (0, 1]")]
    fn hotspot_fraction_validated() {
        let _ = hotspot(ChipGeometry::paper_1mm(), 1.5, 1.0);
    }

    #[test]
    fn clipping_is_bitwise_identity_for_in_die_blocks() {
        // The corrected generators clip every block, so a block that is
        // already inside the die must survive untouched — operator rows
        // and fingerprints built from generator plans cannot move.
        let g = ChipGeometry::paper_1mm();
        let block = Block::new("b", 2.3e-4, 7.1e-4, 1.3e-4, 0.9e-4, 0.025);
        let clipped = clip_to_die(&g, block.clone()).unwrap();
        assert_eq!(block, clipped);
        // A boundary-touching block is in-die and equally untouched.
        let flush = Block::new("f", g.width / 2.0, g.length / 2.0, g.width, g.length, 1.0);
        assert_eq!(flush, clip_to_die(&g, flush.clone()).unwrap());
    }

    #[test]
    fn protruding_blocks_are_clamped_to_the_die() {
        let g = ChipGeometry::paper_1mm();
        // Sticks 0.2 mm past the right edge: keep the in-die half.
        let block = Block::new("edge", g.width, 5e-4, 4e-4, 2e-4, 0.5);
        let clipped = clip_to_die(&g, block).unwrap();
        let (x0, y0, x1, y1) = clipped.bounds();
        assert_eq!(x1, g.width);
        assert!((x0 - (g.width - 2e-4)).abs() < 1e-18);
        assert!((y0 - 4e-4).abs() < 1e-18 && (y1 - 6e-4).abs() < 1e-18);
        assert_eq!(clipped.power, 0.5, "power is preserved, not rescaled");
    }

    #[test]
    fn fully_outside_blocks_are_rejected_not_silently_kept() {
        let g = ChipGeometry::paper_1mm();
        let gone = Block::new("gone", 2.0 * g.width, 5e-4, 1e-4, 1e-4, 0.1);
        assert_eq!(
            clip_to_die(&g, gone),
            Err(BuildFloorplanError::OutOfBounds {
                block: "gone".into()
            })
        );
    }

    #[test]
    fn generators_are_unchanged_by_the_clipping_guard() {
        // Regression pin: sane-input generator plans are bit-identical
        // to the direct Floorplan::new construction — the guard only
        // ever fires on blocks that actually protrude.
        let g = ChipGeometry::paper_1mm();
        let fp = tile_aligned(g, 5, 3, |i| 0.001 * i as f64).unwrap();
        let (px, py) = (g.width / 5.0, g.length / 3.0);
        let shrink = 1.0 - 1e-9;
        let direct: Vec<Block> = (0..15)
            .map(|i| {
                let (ix, iy) = (i % 5, i / 5);
                Block::new(
                    format!("t{ix}-{iy}"),
                    (ix as f64 + 0.5) * px,
                    (iy as f64 + 0.5) * py,
                    px * shrink,
                    py * shrink,
                    0.001 * i as f64,
                )
            })
            .collect();
        assert_eq!(fp, Floorplan::new(g, direct).unwrap());
        assert_eq!(
            hotspot(g, 1.0, 2.0).unwrap().blocks()[0].bounds(),
            (0.0, 0.0, g.width, g.length)
        );
    }
}
