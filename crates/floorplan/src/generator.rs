//! Synthetic floorplan generators for block-level experiments.

use crate::{Block, BuildFloorplanError, ChipGeometry, Floorplan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Regular `rows × cols` tiling of the die with uniform gutter spacing;
/// per-tile powers are drawn from `[p_min, p_max)` with a seeded RNG.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`] (cannot occur for sane inputs — tiles
/// never overlap by construction).
///
/// # Panics
///
/// Panics if `rows`/`cols` are zero or `p_min > p_max`.
pub fn tiled(
    geometry: ChipGeometry,
    rows: usize,
    cols: usize,
    p_min: f64,
    p_max: f64,
    seed: u64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(rows > 0 && cols > 0, "need at least one tile");
    assert!(p_min <= p_max && p_min >= 0.0, "bad power range");
    let mut rng = StdRng::seed_from_u64(seed);
    let gutter = 0.1; // 10% of the pitch between tiles
    let pitch_x = geometry.width / cols as f64;
    let pitch_y = geometry.length / rows as f64;
    let w = pitch_x * (1.0 - gutter);
    let l = pitch_y * (1.0 - gutter);
    let mut blocks = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let power = if p_min == p_max {
                p_min
            } else {
                rng.gen_range(p_min..p_max)
            };
            blocks.push(Block::new(
                format!("tile-{r}-{c}"),
                (c as f64 + 0.5) * pitch_x,
                (r as f64 + 0.5) * pitch_y,
                w,
                l,
                power,
            ));
        }
    }
    Floorplan::new(geometry, blocks)
}

/// A floorplan whose blocks are exactly the tiles of an `nx × ny` grid
/// over the die, with per-tile powers from `power(tile_index)` — the
/// configuration on which the FFT map engine must reproduce the dense
/// influence operator exactly (blocks coincide with map tiles), used by
/// its cross-validation tests and the `map` bench.
///
/// Blocks are sized a hair (1e-9 relative) under the tile pitch so
/// floating-point rounding of touching bounds can never trip the
/// overlap check; the shrink keeps every block strictly inside its own
/// tile (single-cell rasterization stencils) and moves the Eq. 20
/// kernel by ~1e-9 relative — far below any cross-validation bar.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`] (cannot occur for sane inputs).
///
/// # Panics
///
/// Panics if `nx`/`ny` are zero.
pub fn tile_aligned(
    geometry: ChipGeometry,
    nx: usize,
    ny: usize,
    power: impl Fn(usize) -> f64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(nx > 0 && ny > 0, "need at least one tile");
    let pitch_x = geometry.width / nx as f64;
    let pitch_y = geometry.length / ny as f64;
    let shrink = 1.0 - 1e-9;
    let blocks = (0..nx * ny)
        .map(|i| {
            let (ix, iy) = (i % nx, i / nx);
            Block::new(
                format!("t{ix}-{iy}"),
                (ix as f64 + 0.5) * pitch_x,
                (iy as f64 + 0.5) * pitch_y,
                pitch_x * shrink,
                pitch_y * shrink,
                power(i),
            )
        })
        .collect();
    Floorplan::new(geometry, blocks)
}

/// A single centred hotspot block covering `fraction` of the die area and
/// dissipating `power` — the minimal thermal scenario.
///
/// # Errors
///
/// Propagates [`BuildFloorplanError`].
///
/// # Panics
///
/// Panics if `fraction` is outside `(0, 1]`.
pub fn hotspot(
    geometry: ChipGeometry,
    fraction: f64,
    power: f64,
) -> Result<Floorplan, BuildFloorplanError> {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0, 1]");
    let scale = fraction.sqrt();
    let block = Block::new(
        "hotspot",
        geometry.width / 2.0,
        geometry.length / 2.0,
        geometry.width * scale,
        geometry.length * scale,
        power,
    );
    Floorplan::new(geometry, vec![block])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_is_valid_and_repeatable() {
        let g = ChipGeometry::paper_1mm();
        let a = tiled(g, 4, 4, 0.01, 0.1, 9).unwrap();
        let b = tiled(g, 4, 4, 0.01, 0.1, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.blocks().len(), 16);
        assert!(a.total_power() > 0.16 && a.total_power() < 1.6);
    }

    #[test]
    fn tiled_uniform_power_option() {
        let g = ChipGeometry::paper_1mm();
        let fp = tiled(g, 2, 3, 0.05, 0.05, 0).unwrap();
        for b in fp.blocks() {
            assert_eq!(b.power, 0.05);
        }
    }

    #[test]
    fn tile_aligned_blocks_sit_on_tile_centers_inside_their_tiles() {
        let g = ChipGeometry::paper_1mm();
        let fp = tile_aligned(g, 5, 3, |i| 0.001 * i as f64).unwrap();
        assert_eq!(fp.blocks().len(), 15);
        let (px, py) = (g.width / 5.0, g.length / 3.0);
        for (i, b) in fp.blocks().iter().enumerate() {
            let (ix, iy) = (i % 5, i / 5);
            assert_eq!(b.cx, (ix as f64 + 0.5) * px);
            assert_eq!(b.cy, (iy as f64 + 0.5) * py);
            // Strictly inside its own tile.
            let (x0, y0, x1, y1) = b.bounds();
            assert!(x0 > ix as f64 * px && x1 < (ix + 1) as f64 * px);
            assert!(y0 > iy as f64 * py && y1 < (iy + 1) as f64 * py);
            assert_eq!(b.power, 0.001 * i as f64);
        }
    }

    #[test]
    fn hotspot_covers_requested_fraction() {
        let g = ChipGeometry::paper_1mm();
        let fp = hotspot(g, 0.25, 1.0).unwrap();
        let b = &fp.blocks()[0];
        let frac = b.area() / (g.width * g.length);
        assert!((frac - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "fraction in (0, 1]")]
    fn hotspot_fraction_validated() {
        let _ = hotspot(ChipGeometry::paper_1mm(), 1.5, 1.0);
    }
}
