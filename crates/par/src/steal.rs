//! Work-stealing job queues for heterogeneous workloads.
//!
//! The sweep engine's shared-cursor scheduling is ideal when work items
//! are similar-sized scenario solves. A *fleet* queue is different: its
//! items are whole jobs — a 4-scenario transient next to a 500-scenario
//! steady-state sweep on a bigger floorplan — so per-item cost varies by
//! orders of magnitude and a single global cursor serializes every claim
//! through one cache line. [`StealQueues`] gives each worker its own
//! deque: workers pop locally (front) until empty, then steal from the
//! *back* of a sibling's deque — the classic split that keeps owner and
//! thief on opposite ends. Implemented with per-queue mutexes (no
//! `unsafe`): lock traffic is one uncontended lock per pop in the common
//! case, which is noise next to jobs that run for microseconds or more.
//!
//! Claims are exactly-once whatever the interleaving, and the steal
//! counter ([`StealQueues::steals`]) makes imbalance observable in fleet
//! reports.
//!
//! Two admission modes share the stealing discipline:
//!
//! * **batch** ([`StealQueues::split`]) — a fixed index range dealt out
//!   up front; workers drain with the non-blocking [`StealQueues::pop`]
//!   and `None` means the run is over. This is how the fleet engine
//!   runs a collected job list.
//! * **streaming** ([`StealQueues::bounded`]) — an initially empty set
//!   of deques that producers feed live through [`StealQueues::push`]
//!   under a hard capacity bound (the backpressure seam: an over-full
//!   queue refuses with a typed [`PushError`] instead of buffering
//!   without limit), while workers block in [`StealQueues::pop_wait`]
//!   until an item lands or [`StealQueues::close`] declares the stream
//!   over. This is how the fleet *server* admits socket traffic
//!   directly into the scheduler.
//!
//! # Example
//!
//! ```
//! use ptherm_par::steal::StealQueues;
//!
//! let queues = StealQueues::split(2, 5); // items 0..5 over 2 workers
//! let mut claimed: Vec<usize> = std::iter::from_fn(|| queues.pop(0)).collect();
//! claimed.sort_unstable();
//! assert_eq!(claimed, vec![0, 1, 2, 3, 4]); // worker 0 drained + stole all
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a streaming push was refused. The queue is unchanged either way;
/// the producer owns the item again and decides (refuse upstream, shed,
/// retry later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue already holds `capacity` items: admission would exceed
    /// the backpressure bound.
    Full {
        /// Queued depth observed at refusal time.
        depth: usize,
        /// The bound set by [`StealQueues::bounded`].
        capacity: usize,
    },
    /// [`StealQueues::close`] was called: the stream is over and no new
    /// item may be admitted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full { depth, capacity } => {
                write!(f, "queue full (depth {depth}/{capacity})")
            }
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// Per-worker job deques with steal-from-the-back rebalancing.
///
/// Generic over the queued item (`usize` job indices for the batch
/// fleet engine, whole job envelopes for the streaming fleet server).
#[derive(Debug)]
pub struct StealQueues<T = usize> {
    queues: Vec<Mutex<VecDeque<T>>>,
    steals: AtomicU64,
    /// Items currently queued (not yet claimed), across all deques.
    depth: AtomicUsize,
    /// Streaming bound; `usize::MAX` in batch mode.
    capacity: usize,
    /// Round-robin cursor spreading pushes over the deques.
    next_push: AtomicUsize,
    /// Set by [`Self::close`]; pushes refuse and drained waiters leave.
    closed: AtomicBool,
    /// Pairs with `sleep` for [`Self::pop_wait`] parking. Pushers take
    /// this lock around their notify so a waiter cannot check-then-park
    /// between the push and the wakeup.
    sleep_lock: Mutex<()>,
    sleep: Condvar,
}

impl StealQueues<usize> {
    /// Distributes items `0..total` over `workers` deques in contiguous
    /// runs (worker 0 gets the first run, and so on), front-loading the
    /// remainder. Contiguous runs preserve submission locality — a
    /// worker tends to run neighbouring jobs, which for a fleet means
    /// neighbouring floorplans and warmer caches — while stealing
    /// repairs whatever imbalance the run lengths hide.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn split(workers: usize, total: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let base = total / workers;
        let extra = total % workers;
        let mut queues = Vec::with_capacity(workers);
        let mut next = 0;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            queues.push(Mutex::new((next..next + take).collect()));
            next += take;
        }
        StealQueues {
            queues,
            steals: AtomicU64::new(0),
            depth: AtomicUsize::new(total),
            capacity: usize::MAX,
            next_push: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep: Condvar::new(),
        }
    }
}

impl<T> StealQueues<T> {
    /// An empty streaming queue set: `workers` deques fed live through
    /// [`Self::push`], holding at most `capacity` queued items in total.
    /// Workers claim with [`Self::pop_wait`]; [`Self::close`] ends the
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `capacity` is zero (a queue that
    /// can hold nothing would refuse every admission).
    pub fn bounded(workers: usize, capacity: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(capacity > 0, "capacity must be positive");
        StealQueues {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            steals: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            capacity,
            next_push: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep: Condvar::new(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Items currently queued (admitted, not yet claimed). The live
    /// backpressure signal a server's metrics report.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The admission bound of a [`Self::bounded`] queue set
    /// (`usize::MAX` for a batch [`StealQueues::split`]).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Admits one item, spreading pushes round-robin over the worker
    /// deques, and wakes a parked worker.
    ///
    /// The capacity check reserves a slot atomically, so concurrent
    /// producers can never overshoot the bound: at most `capacity`
    /// items are queued at any instant.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the queue already holds `capacity`
    /// items, [`PushError::Closed`] after [`Self::close`]. The item is
    /// handed back inside the error-free contract: on `Err` it was
    /// never enqueued (the caller still owns it — it is not consumed
    /// because `push` takes it by value and drops it only on success).
    pub fn push(&self, item: T) -> Result<(), PushError> {
        if self.is_closed() {
            return Err(PushError::Closed);
        }
        // Reserve a depth slot before touching any deque: strict bound
        // under concurrent producers.
        let mut depth = self.depth.load(Ordering::Relaxed);
        loop {
            if depth >= self.capacity {
                return Err(PushError::Full {
                    depth,
                    capacity: self.capacity,
                });
            }
            match self.depth.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => depth = now,
            }
        }
        let slot = self.next_push.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.lock(slot).push_back(item);
        // Notify under the sleep lock so a worker that just found every
        // deque empty cannot park between our push and this wakeup.
        let guard = self.sleep_guard();
        self.sleep.notify_one();
        drop(guard);
        Ok(())
    }

    /// Ends the stream: further pushes refuse with
    /// [`PushError::Closed`], and once the deques drain every
    /// [`Self::pop_wait`] returns `None`. Items already queued are
    /// still claimed and run — close-then-drain is the graceful
    /// shutdown path.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let guard = self.sleep_guard();
        self.sleep.notify_all();
        drop(guard);
    }

    /// Claims the next job for `worker`: its own deque's front, else the
    /// back of the first non-empty sibling (scanning from `worker + 1`
    /// round-robin, so thieves spread instead of mobbing worker 0).
    /// Returns `None` only when every deque is empty at the moment of
    /// the scan — and since batch mode never re-queues items, `None` is
    /// stable there: the queues have run dry for good. (A streaming
    /// worker wanting to block for the next admission uses
    /// [`Self::pop_wait`] instead.)
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop(&self, worker: usize) -> Option<T> {
        assert!(worker < self.queues.len(), "worker index out of range");
        if let Some(job) = self.lock(worker).pop_front() {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        for offset in 1..self.queues.len() {
            let victim = (worker + offset) % self.queues.len();
            if let Some(job) = self.lock(victim).pop_back() {
                self.depth.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// [`Self::pop`] that parks until an item is admitted or the stream
    /// ends: returns `Some` for every claimed item and `None` exactly
    /// when the queue is closed **and** drained. The streaming worker
    /// loop is simply `while let Some(job) = queues.pop_wait(w)`.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop_wait(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(job) = self.pop(worker) {
                return Some(job);
            }
            let guard = self.sleep_guard();
            // Re-check under the sleep lock: a push that landed after
            // our scan notified under this same lock, so either we see
            // its depth here or our wait sees its notification.
            if self.depth() > 0 {
                continue;
            }
            if self.is_closed() {
                return None;
            }
            drop(
                self.sleep
                    .wait(guard)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            );
        }
    }

    /// Number of cross-worker steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn lock(&self, idx: usize) -> MutexGuard<'_, VecDeque<T>> {
        // Job indices carry no state; a panicked worker cannot poison
        // anything another worker must not see.
        match self.queues[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn sleep_guard(&self) -> MutexGuard<'_, ()> {
        match self.sleep_lock.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_item_exactly_once() {
        for (workers, total) in [(1, 7), (3, 10), (4, 4), (5, 3), (8, 0)] {
            let q = StealQueues::split(workers, total);
            let mut all = Vec::new();
            for w in 0..workers {
                while let Some(job) = q.pop(w) {
                    all.push(job);
                }
            }
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>(), "{workers}x{total}");
            assert_eq!(q.depth(), 0);
        }
    }

    #[test]
    fn idle_workers_steal() {
        let q = StealQueues::split(2, 6);
        // Worker 1 drains everything: its own 3 plus 3 steals.
        let mut got = Vec::new();
        while let Some(job) = q.pop(1) {
            got.push(job);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.steals(), 3);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steals_come_from_the_back() {
        let q = StealQueues::split(2, 4); // worker 0 holds [0, 1]
        assert_eq!(q.pop(1), Some(2)); // own front
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(1)); // steal takes the victim's back
        assert_eq!(q.pop(0), Some(0)); // owner still pops its front
    }

    #[test]
    fn concurrent_claims_are_exactly_once() {
        let total = 10_000;
        for workers in [2, 4, 8] {
            let q = StealQueues::split(workers, total);
            let claimed = crate::par_workers(workers, |w| {
                let mut mine = Vec::new();
                while let Some(job) = q.pop(w) {
                    mine.push(job);
                }
                mine
            });
            let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>(), "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn out_of_range_worker_is_rejected() {
        let q = StealQueues::split(2, 2);
        let _ = q.pop(2);
    }

    #[test]
    fn bounded_push_claims_round_trip() {
        let q: StealQueues<String> = StealQueues::bounded(2, 8);
        assert_eq!(q.depth(), 0);
        assert!(q.push("a".into()).is_ok());
        assert!(q.push("b".into()).is_ok());
        assert_eq!(q.depth(), 2);
        let mut got = vec![q.pop_wait(0).expect("item"), q.pop_wait(1).expect("item")];
        got.sort();
        assert_eq!(got, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_refuses_with_typed_depth() {
        let q: StealQueues<u32> = StealQueues::bounded(1, 2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(
            q.push(3),
            Err(PushError::Full {
                depth: 2,
                capacity: 2
            })
        );
        // Claiming one item frees a slot.
        assert_eq!(q.pop(0), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(
            PushError::Full {
                depth: 2,
                capacity: 2
            }
            .to_string(),
            "queue full (depth 2/2)"
        );
    }

    #[test]
    fn close_refuses_new_pushes_but_drains_queued_items() {
        let q: StealQueues<u32> = StealQueues::bounded(2, 8);
        assert!(q.push(7).is_ok());
        q.close();
        assert_eq!(q.push(8), Err(PushError::Closed));
        // The queued item still drains, then the stream reports over.
        assert_eq!(q.pop_wait(0), Some(7));
        assert_eq!(q.pop_wait(0), None);
        assert_eq!(q.pop_wait(1), None);
    }

    #[test]
    fn pop_wait_parks_until_an_item_lands() {
        let q: StealQueues<u32> = StealQueues::bounded(1, 4);
        std::thread::scope(|scope| {
            let consumer = scope.spawn(|| q.pop_wait(0));
            // Give the consumer a moment to park, then feed it.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(q.push(42).is_ok());
            assert_eq!(consumer.join().expect("join"), Some(42));
        });
    }

    #[test]
    fn streaming_claims_are_exactly_once_under_concurrency() {
        let total: usize = 2_000;
        let workers = 4;
        let q: StealQueues<usize> = StealQueues::bounded(workers, total);
        std::thread::scope(|scope| {
            let producers: Vec<_> = (0..2)
                .map(|p| {
                    let q = &q;
                    scope.spawn(move || {
                        for i in (p..total).step_by(2) {
                            // Capacity equals the total, so every push
                            // must be admitted.
                            q.push(i).expect("under capacity");
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..workers)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(item) = q.pop_wait(w) {
                            mine.push(item);
                        }
                        mine
                    })
                })
                .collect();
            for p in producers {
                p.join().expect("producer");
            }
            q.close();
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|c| c.join().expect("consumer"))
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>());
        });
        assert_eq!(q.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = StealQueues::<u32>::bounded(1, 0);
    }
}
