//! Work-stealing job queues for heterogeneous workloads.
//!
//! The sweep engine's shared-cursor scheduling is ideal when work items
//! are similar-sized scenario solves. A *fleet* queue is different: its
//! items are whole jobs — a 4-scenario transient next to a 500-scenario
//! steady-state sweep on a bigger floorplan — so per-item cost varies by
//! orders of magnitude and a single global cursor serializes every claim
//! through one cache line. [`StealQueues`] gives each worker its own
//! deque: workers pop locally (front) until empty, then steal from the
//! *back* of a sibling's deque — the classic split that keeps owner and
//! thief on opposite ends. Implemented with per-queue mutexes (no
//! `unsafe`): lock traffic is one uncontended lock per pop in the common
//! case, which is noise next to jobs that run for microseconds or more.
//!
//! Claims are exactly-once whatever the interleaving, and the steal
//! counter ([`StealQueues::steals`]) makes imbalance observable in fleet
//! reports.
//!
//! # Example
//!
//! ```
//! use ptherm_par::steal::StealQueues;
//!
//! let queues = StealQueues::split(2, 5); // items 0..5 over 2 workers
//! let mut claimed: Vec<usize> = std::iter::from_fn(|| queues.pop(0)).collect();
//! claimed.sort_unstable();
//! assert_eq!(claimed, vec![0, 1, 2, 3, 4]); // worker 0 drained + stole all
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-worker job deques with steal-from-the-back rebalancing.
#[derive(Debug)]
pub struct StealQueues {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueues {
    /// Distributes items `0..total` over `workers` deques in contiguous
    /// runs (worker 0 gets the first run, and so on), front-loading the
    /// remainder. Contiguous runs preserve submission locality — a
    /// worker tends to run neighbouring jobs, which for a fleet means
    /// neighbouring floorplans and warmer caches — while stealing
    /// repairs whatever imbalance the run lengths hide.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn split(workers: usize, total: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let base = total / workers;
        let extra = total % workers;
        let mut queues = Vec::with_capacity(workers);
        let mut next = 0;
        for w in 0..workers {
            let take = base + usize::from(w < extra);
            queues.push(Mutex::new((next..next + take).collect()));
            next += take;
        }
        StealQueues {
            queues,
            steals: AtomicU64::new(0),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Claims the next job for `worker`: its own deque's front, else the
    /// back of the first non-empty sibling (scanning from `worker + 1`
    /// round-robin, so thieves spread instead of mobbing worker 0).
    /// Returns `None` only when every deque is empty at the moment of
    /// the scan — and since no items are ever re-queued, `None` is
    /// stable: the queues have run dry for good.
    ///
    /// # Panics
    ///
    /// Panics if `worker >= self.workers()`.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        assert!(worker < self.queues.len(), "worker index out of range");
        if let Some(job) = self.lock(worker).pop_front() {
            return Some(job);
        }
        for offset in 1..self.queues.len() {
            let victim = (worker + offset) % self.queues.len();
            if let Some(job) = self.lock(victim).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Number of cross-worker steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn lock(&self, idx: usize) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        // Job indices carry no state; a panicked worker cannot poison
        // anything another worker must not see.
        match self.queues[idx].lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_every_item_exactly_once() {
        for (workers, total) in [(1, 7), (3, 10), (4, 4), (5, 3), (8, 0)] {
            let q = StealQueues::split(workers, total);
            let mut all = Vec::new();
            for w in 0..workers {
                while let Some(job) = q.pop(w) {
                    all.push(job);
                }
            }
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>(), "{workers}x{total}");
        }
    }

    #[test]
    fn idle_workers_steal() {
        let q = StealQueues::split(2, 6);
        // Worker 1 drains everything: its own 3 plus 3 steals.
        let mut got = Vec::new();
        while let Some(job) = q.pop(1) {
            got.push(job);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(q.steals(), 3);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steals_come_from_the_back() {
        let q = StealQueues::split(2, 4); // worker 0 holds [0, 1]
        assert_eq!(q.pop(1), Some(2)); // own front
        assert_eq!(q.pop(1), Some(3));
        assert_eq!(q.pop(1), Some(1)); // steal takes the victim's back
        assert_eq!(q.pop(0), Some(0)); // owner still pops its front
    }

    #[test]
    fn concurrent_claims_are_exactly_once() {
        let total = 10_000;
        for workers in [2, 4, 8] {
            let q = StealQueues::split(workers, total);
            let claimed = crate::par_workers(workers, |w| {
                let mut mine = Vec::new();
                while let Some(job) = q.pop(w) {
                    mine.push(job);
                }
                mine
            });
            let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..total).collect::<Vec<_>>(), "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "worker index out of range")]
    fn out_of_range_worker_is_rejected() {
        let q = StealQueues::split(2, 2);
        let _ = q.pop(2);
    }
}
