//! Minimal data-parallel runtime for the `ptherm` workspace.
//!
//! The sweep engine's workload is embarrassingly parallel: thousands of
//! independent fixed-point solves over one shared, immutable
//! [`ThermalOperator`](../ptherm_core/cosim/struct.ThermalOperator.html).
//! That shape needs exactly one primitive — a parallel indexed map with
//! per-worker state — which this crate provides on top of
//! `std::thread::scope`, with dynamic (work-stealing-style) assignment so
//! uneven items (e.g. runaway scenarios that bail early next to
//! slow-converging ones) do not leave threads idle.
//!
//! In an environment with crates.io access this is the role `rayon` would
//! play; the API is deliberately small so swapping it out stays easy.
//!
//! # Example
//!
//! ```
//! let squares = ptherm_par::par_map_with(
//!     4,            // worker threads
//!     &[1u64, 2, 3, 4, 5][..],
//!     || 0u64,      // per-worker scratch state
//!     |scratch, _index, &x| {
//!         *scratch += 1; // e.g. count items this worker handled
//!         x * x
//!     },
//! );
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sensible worker count: the machine's available parallelism, or 1 if
/// it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` workers, preserving input order in
/// the output.
///
/// Items are claimed one at a time from a shared atomic counter, so
/// workloads with very uneven per-item cost still balance. With
/// `threads <= 1` the map runs inline on the calling thread (no spawn
/// cost, exact same results).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(threads, items, || (), |(), i, item| f(i, item))
}

/// [`par_map`] with per-worker mutable scratch state.
///
/// `init` runs once on each worker thread; the state it returns is passed
/// to every call that worker makes. This is what lets the sweep engine
/// give each thread one reusable solve workspace instead of allocating
/// per scenario.
pub fn par_map_with<T, R, S, F, I>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    produced.push((i, f(&mut state, i, &items[i])));
                }
                produced
            }));
        }
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 16] {
            let got = par_map(threads, &items, |_, &x| x * 3);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_workloads_complete() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(8, &items, |_, &x| {
            // Make early items much slower than late ones.
            let spins = if x < 4 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_state_is_reused() {
        let items: Vec<usize> = (0..100).collect();
        // Each worker counts how many items it handled; totals must cover
        // every item exactly once.
        let counts = par_map_with(
            4,
            &items,
            || 0usize,
            |count, _, _| {
                *count += 1;
                *count
            },
        );
        // Per-item values are the worker-local running count: all >= 1.
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map(8, &[] as &[u32], |_, &x| x);
        assert!(got.is_empty());
    }
}
