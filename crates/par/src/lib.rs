//! Minimal data-parallel runtime for the `ptherm` workspace.
//!
//! The sweep engine's workloads are embarrassingly parallel: thousands of
//! independent fixed-point solves over one shared, immutable
//! [`ThermalOperator`](../ptherm_core/cosim/struct.ThermalOperator.html),
//! and the row-wise build of that operator itself. Three primitives on
//! top of `std::thread::scope` cover them:
//!
//! * [`par_map`] / [`par_map_with`] — parallel indexed map with dynamic
//!   (work-stealing-style) assignment, so uneven items (e.g. runaway
//!   scenarios that bail early next to slow-converging ones) do not
//!   leave threads idle, plus optional per-worker state;
//! * [`par_workers`] — raw scoped workers for self-scheduling loops (the
//!   batched sweep pulls scenario indices from a shared atomic counter);
//! * [`par_partition_mut`] — splits one `&mut [T]` into contiguous
//!   unit-aligned pieces, one per worker, for filling disjoint rows of a
//!   matrix in place.
//!
//! In an environment with crates.io access this is the role `rayon` would
//! play; the API is deliberately small so swapping it out stays easy.
//!
//! # Example
//!
//! ```
//! let squares = ptherm_par::par_map_with(
//!     4,            // worker threads
//!     &[1u64, 2, 3, 4, 5][..],
//!     || 0u64,      // per-worker scratch state
//!     |scratch, _index, &x| {
//!         *scratch += 1; // e.g. count items this worker handled
//!         x * x
//!     },
//! );
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

pub mod cancel;
pub mod steal;

pub use cancel::CancelToken;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding [`default_threads`]: set
/// `PTHERM_THREADS=n` to pin every default-threaded code path in the
/// workspace to `n` workers. This is how containerized deployments cap
/// worker counts below the host's CPU count, and how the CI
/// thread-invariance matrix runs the whole test suite at 1, 2 and 8
/// workers without code changes.
pub const THREADS_ENV: &str = "PTHERM_THREADS";

/// A sensible worker count: the [`THREADS_ENV`] override when set to a
/// positive integer, otherwise the machine's available parallelism, or
/// 1 if neither can be determined.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` workers, preserving input order in
/// the output.
///
/// Items are claimed one at a time from a shared atomic counter, so
/// workloads with very uneven per-item cost still balance. With
/// `threads <= 1` the map runs inline on the calling thread (no spawn
/// cost, exact same results).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(threads, items, || (), |(), i, item| f(i, item))
}

/// [`par_map`] with per-worker mutable scratch state.
///
/// `init` runs once on each worker thread; the state it returns is passed
/// to every call that worker makes. This is what lets the sweep engine
/// give each thread one reusable solve workspace instead of allocating
/// per scenario.
pub fn par_map_with<T, R, S, F, I>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut produced: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    produced.push((i, f(&mut state, i, &items[i])));
                }
                produced
            }));
        }
        for handle in handles {
            // A worker that unwound re-raises with its original payload so
            // callers' `catch_unwind` (the fleet's panic isolation) still
            // sees the real panic, not a synthetic join message.
            let produced = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            for (i, r) in produced {
                results[i] = Some(r);
            }
        }
    });

    results
        .into_iter()
        // lint:allow(panic-freedom) — the shared cursor hands out every
        // index in 0..len exactly once, so every slot is filled.
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Runs `f(worker_index)` on `threads` scoped workers and returns their
/// results in worker order.
///
/// The raw building block for self-scheduling loops: workers typically
/// share an `AtomicUsize` cursor and claim work items until it runs dry
/// (the batched sweep engine refills solver lanes this way). With
/// `threads <= 1` the single worker runs inline on the calling thread.
pub fn par_workers<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || f(w))).collect();
        handles
            .into_iter()
            // Re-raise a worker's own panic payload; see par_map_with.
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Splits `data` into at most `threads` contiguous pieces aligned to
/// `unit` elements and runs `f(first_unit_index, piece)` on each piece on
/// its own scoped worker.
///
/// This is the in-place counterpart of [`par_map`] for filling a shared
/// row-major buffer: each worker owns a disjoint run of whole units
/// (matrix rows), so no synchronization is needed. The split is static —
/// appropriate when per-unit cost is roughly uniform, as it is for
/// influence-matrix rows. With `threads <= 1` (or a single piece) `f`
/// runs inline.
///
/// # Panics
///
/// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`.
pub fn par_partition_mut<T, F>(threads: usize, data: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit must be non-zero");
    assert!(
        data.len().is_multiple_of(unit),
        "data must hold whole units"
    );
    let units = data.len() / unit;
    let threads = threads.max(1).min(units.max(1));
    if threads <= 1 {
        f(0, data);
        return;
    }
    // Spread `units` over workers, front-loading the remainder.
    let base = units / threads;
    let extra = units % threads;
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first = 0;
        for w in 0..threads {
            let take = (base + usize::from(w < extra)) * unit;
            let (piece, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = first;
            first += take / unit;
            scope.spawn(move || f(start, piece));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 16] {
            let got = par_map(threads, &items, |_, &x| x * 3);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn uneven_workloads_complete() {
        let items: Vec<u64> = (0..64).collect();
        let got = par_map(8, &items, |_, &x| {
            // Make early items much slower than late ones.
            let spins = if x < 4 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn worker_state_is_reused() {
        let items: Vec<usize> = (0..100).collect();
        // Each worker counts how many items it handled; totals must cover
        // every item exactly once.
        let counts = par_map_with(
            4,
            &items,
            || 0usize,
            |count, _, _| {
                *count += 1;
                *count
            },
        );
        // Per-item values are the worker-local running count: all >= 1.
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn env_override_pins_default_threads() {
        // The only test in this process touching the variable; restore
        // whatever the harness (e.g. the CI thread matrix) set.
        let previous = std::env::var(THREADS_ENV).ok();
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var(THREADS_ENV, "not a number");
        assert!(default_threads() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(default_threads() >= 1);
        match previous {
            Some(value) => std::env::set_var(THREADS_ENV, value),
            None => std::env::remove_var(THREADS_ENV),
        }
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_input() {
        let got: Vec<u32> = par_map(8, &[] as &[u32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn workers_drain_a_shared_counter() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        for threads in [1, 4] {
            next.store(0, Ordering::Relaxed);
            let claimed = par_workers(threads, |w| {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 100 {
                        break;
                    }
                    mine.push(i);
                }
                (w, mine)
            });
            assert_eq!(claimed.len(), threads);
            let mut all: Vec<usize> = claimed.into_iter().flat_map(|(_, v)| v).collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn partition_covers_every_unit_once() {
        // 10 rows of 3 over several worker counts, including more workers
        // than rows.
        for threads in [1, 3, 4, 16] {
            let mut data = vec![0u32; 30];
            par_partition_mut(threads, &mut data, 3, |first_row, piece| {
                for (r, row) in piece.chunks_mut(3).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (0..10).flat_map(|r| [r + 1; 3]).collect();
            assert_eq!(data, want, "threads = {threads}");
        }
    }

    #[test]
    fn partition_handles_empty_data() {
        let mut data: Vec<u8> = Vec::new();
        par_partition_mut(4, &mut data, 5, |_, piece| {
            assert!(piece.is_empty());
        });
    }

    #[test]
    #[should_panic(expected = "whole units")]
    fn partition_rejects_ragged_data() {
        let mut data = vec![0u8; 7];
        par_partition_mut(2, &mut data, 3, |_, _| {});
    }
}
