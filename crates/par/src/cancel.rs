//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheaply-cloneable shared flag that solver hot
//! loops poll at natural checkpoints — once per Picard iteration, once
//! per transient step, once per rendered map — and stop early when it
//! fires. Cancellation is always *cooperative*: nothing kills a thread,
//! the solve simply retires its remaining work as cancelled at the next
//! checkpoint, leaving every workspace and cache in a reusable state.
//!
//! Three trigger modes compose into one token:
//!
//! * **explicit** — [`CancelToken::cancel`] fires the token from any
//!   thread (a shutdown path, a client disconnect);
//! * **deadline** — [`CancelToken::with_deadline`] arms a wall-clock
//!   budget; the first poll at or past the deadline latches the token
//!   (the fleet's per-job `deadline_ms` protocol field uses this);
//! * **check budget** — [`CancelToken::after_checks`] fires after a
//!   fixed number of [`is_cancelled`](CancelToken::is_cancelled) polls.
//!   Polls happen once per solver checkpoint, so "cancel at Picard
//!   iteration *k*" is expressible deterministically — this is what the
//!   cancellation-checkpoint proptests and the fault-injection harness
//!   use to land a cancellation on an exact iteration regardless of
//!   wall-clock speed.
//!
//! Once fired a token stays fired (it latches); polling is one relaxed
//! atomic load on the fast path, so checkpoints are effectively free
//! next to a GEMM-backed Picard step.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll budget sentinel meaning "no check budget armed".
const NO_BUDGET: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Remaining `is_cancelled` polls before the token auto-fires, or
    /// [`NO_BUDGET`]. Decremented with a saturating CAS loop so the
    /// counter never wraps under concurrent polling.
    polls_left: AtomicU64,
    /// Wall-clock instant past which any poll latches the token.
    deadline: Option<Instant>,
    /// When the token was created — the reference point for
    /// [`CancelToken::elapsed`], reported on deadline-exceeded errors.
    started: Instant,
}

/// A shared, latching cancellation flag. See the [module docs](self).
///
/// Clones share one flag: cancelling any clone cancels them all. The
/// token is `Send + Sync`; hand `&CancelToken` (or a clone) to each
/// worker.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::build(None, NO_BUDGET)
    }

    /// A token that fires at the first poll on or after `budget` from
    /// now (or earlier, via [`cancel`](Self::cancel)).
    pub fn with_deadline(budget: Duration) -> Self {
        Self::build(Some(Instant::now() + budget), NO_BUDGET)
    }

    /// A token that fires on the `n+1`-th [`is_cancelled`](Self::is_cancelled)
    /// poll: the first `n` polls return `false`, every later poll
    /// `true`. `after_checks(0)` is cancelled from the first poll.
    ///
    /// Deterministic by construction — solver checkpoints poll exactly
    /// once per iteration/step, so this lands a cancellation on an
    /// exact iteration independent of machine speed.
    pub fn after_checks(n: u64) -> Self {
        Self::build(None, n)
    }

    fn build(deadline: Option<Instant>, polls_left: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                polls_left: AtomicU64::new(polls_left),
                deadline,
                started: Instant::now(),
            }),
        }
    }

    /// Fires the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Polls the token: `true` once it has fired. This is the solver
    /// checkpoint call — it also *advances* the poll budget of
    /// [`after_checks`](Self::after_checks) tokens and latches an
    /// expired [`with_deadline`](Self::with_deadline) token, so hot
    /// loops should poll exactly once per checkpoint.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if self.consume_poll() || self.past_deadline() {
            self.cancel();
            return true;
        }
        false
    }

    /// Reads the flag without consuming a poll or checking the
    /// deadline — for observers (e.g. the fleet deciding *after* a
    /// solve whether a short report means "cancelled" or "done").
    pub fn fired(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Time since the token was created. The fleet reports this as
    /// `elapsed_ms` on deadline-exceeded result lines.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// True when a check budget was armed and this poll exhausted it.
    fn consume_poll(&self) -> bool {
        let polls = &self.inner.polls_left;
        let mut left = polls.load(Ordering::Relaxed);
        loop {
            if left == NO_BUDGET {
                return false;
            }
            if left == 0 {
                return true;
            }
            match polls.compare_exchange_weak(left, left - 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return false,
                Err(seen) => left = seen,
            }
        }
    }

    fn past_deadline(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(!token.fired());
    }

    #[test]
    fn cancel_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(token.fired());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn check_budget_fires_on_the_exact_poll() {
        let token = CancelToken::after_checks(3);
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(!token.is_cancelled());
        assert!(token.is_cancelled(), "4th poll fires");
        assert!(token.is_cancelled(), "and it latches");
    }

    #[test]
    fn zero_check_budget_is_cancelled_immediately() {
        let token = CancelToken::after_checks(0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn fired_does_not_consume_the_poll_budget() {
        let token = CancelToken::after_checks(1);
        for _ in 0..10 {
            assert!(!token.fired());
        }
        assert!(!token.is_cancelled(), "first real poll still within budget");
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_latches_on_poll() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        // The deadline is already past; the first poll must latch it.
        assert!(token.is_cancelled());
        assert!(token.fired());
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(!token.fired());
    }

    #[test]
    fn elapsed_is_monotone() {
        let token = CancelToken::new();
        let a = token.elapsed();
        let b = token.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn concurrent_polls_consume_budget_exactly() {
        // 4 threads polling a 100-poll budget: exactly 100 polls return
        // false before the token latches for everyone.
        let token = CancelToken::after_checks(100);
        let live: usize = ptherm_par_test_helper(&token);
        assert_eq!(live, 100);
        assert!(token.fired());
    }

    fn ptherm_par_test_helper(token: &CancelToken) -> usize {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut live = 0usize;
                        loop {
                            if token.is_cancelled() {
                                return live;
                            }
                            live += 1;
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
    }
}
