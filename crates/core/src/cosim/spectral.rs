//! The spectral Picard backend: advancing batched Eq. 21 fixed points
//! in `O(N log N)` per lane, without materializing the `n × n`
//! influence matrix.
//!
//! The dense [`ThermalOperator`](crate::cosim::ThermalOperator) caps
//! the co-simulation at a few hundred blocks: the build is
//! `O(n²·images)` and every Picard step pays an `O(n²)` GEMM column.
//! But the map engine (`crate::thermal::map`) already proved that on a
//! **uniform tile grid** the same truncated image sum is four cyclic
//! convolutions — so the influence operator can be *applied* spectrally
//! inside the Picard loop instead of merely rendering maps after it:
//!
//! ```text
//! scatter   block powers → tile grid        (equivalent-source stencils)
//! convolve  one FFT, 4 mirrored products, one IFFT   (the map kernels)
//! sample    tile rise field → block sites   (centre-tile gather)
//! ```
//!
//! # Exactness and the CG fallback
//!
//! Sampling is exact: every block centre sits on a tile centre (that is
//! what [`infer_grid`] establishes), and the spectral field at a tile
//! centre is the *same truncated image sum* the dense operator
//! evaluates there — term for term, same truncation window. All error
//! is therefore source-side: a block that coincides with one grid tile
//! scatters to exactly that tile and reproduces its dense operator
//! column to floating-point rounding (≤ 1e-6 K at the fixed point,
//! asserted by `tests/spectral_validation.rs`), while a block that is
//! wider/narrower than a tile or straddles several is only
//! *approximated* by its area-overlap stencil. For those blocks the
//! build measures the near-field rasterization error against the exact
//! per-watt image sum and, where it exceeds the configured tolerance,
//! solves a small conjugate-gradient least-squares problem
//! ([`ptherm_math::cg::solve_cg`] on the normal equations, with a
//! power-conservation row) for an **equivalent source** on the tiles
//! around the block — the refined stencil reproduces the block's exact
//! near field at the surrounding tile centres far better than raw
//! area overlap, and conserves total power for the far field. A CG
//! breakdown falls back to the area-overlap stencil (never an error).
//!
//! Floorplans whose block centres sit on *no* uniform grid (up to
//! [`MAX_GRID_AXIS`] tiles per axis) are rejected with the typed
//! [`SpectralGridError`]; the sweep engine's `Auto` backend falls back
//! to the dense path and the fleet reports the typed error only when
//! spectral was requested explicitly.
//!
//! # Determinism
//!
//! The build is bit-identical across thread counts (the kernel assembly
//! is row-partitioned with identical per-entry arithmetic, the CG
//! refinement is a pure per-block function mapped in input order), and
//! the solve is per-lane: each lane's scatter → FFT → sample touches
//! only that lane's powers, so outcomes are bitwise invariant across
//! batch widths, worker counts and cache state — the same contract the
//! dense batched path holds, asserted by the invariance tests.

use crate::cosim::batch::{drive_picard, BatchPowerModel, BatchWorkspace, LaneStart};
use crate::cosim::sweep::SweepOutcome;
use crate::cosim::ElectroThermalSolver;
use crate::thermal::images::expand_images_iter;
use crate::thermal::map::{map_operator_fingerprint, MapOperator, MapWorkspace};
use crate::thermal::profile::BlockKernel;
use ptherm_floorplan::{Block, Floorplan};
use ptherm_math::cg::solve_cg;
use ptherm_math::{CsrMatrix, MultiVec};
use ptherm_par::CancelToken;
use std::fmt;

/// Largest uniform grid (tiles per axis) [`infer_grid`] will consider.
/// Beyond this the FFT planes stop paying for themselves and the
/// alignment test would accept nearly anything.
pub const MAX_GRID_AXIS: usize = 512;

/// How far (in tile units) a block centre may sit from the nearest tile
/// centre and still count as on-grid.
const GRID_ALIGN_TOLERANCE: f64 = 1e-6;

/// Default near-field rasterization tolerance, K per W: stencils whose
/// predicted per-watt rise at the surrounding tile centres deviates
/// from the exact image sum by more than this are CG-refined.
pub const DEFAULT_REFINEMENT_TOLERANCE: f64 = 1e-6;

/// Refinement support cap: blocks whose support patch would exceed this
/// many unknowns keep their area-overlap stencil (the normal-equations
/// assembly is `O(probes · support²)`).
const MAX_REFINEMENT_SUPPORT: usize = 256;

/// Why a floorplan cannot be served by the spectral backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpectralGridError {
    /// No uniform tile grid up to [`MAX_GRID_AXIS`] tiles per axis puts
    /// every block centre on a tile centre, so the centre-tile sampling
    /// step has no exact anchor.
    NoCoincidentGrid {
        /// The per-axis grid cap that was searched.
        max_axis: usize,
    },
}

impl fmt::Display for SpectralGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralGridError::NoCoincidentGrid { max_axis } => write!(
                f,
                "no uniform tile grid up to {max_axis} tiles per axis aligns every block centre"
            ),
        }
    }
}

impl std::error::Error for SpectralGridError {}

/// Smallest uniform `nx × ny` tile grid whose tile centres contain
/// every block centre, or the typed error if none exists up to
/// [`MAX_GRID_AXIS`] per axis. An empty floorplan is served by a `1 × 1`
/// grid. This is the spectral backend's compatibility test — cheap
/// enough that the `Auto` backend runs it per sweep.
pub fn infer_grid(floorplan: &Floorplan) -> Result<(usize, usize), SpectralGridError> {
    let g = floorplan.geometry();
    let nx = infer_axis(floorplan.blocks(), |b| b.cx, g.width)?;
    let ny = infer_axis(floorplan.blocks(), |b| b.cy, g.length)?;
    Ok((nx, ny))
}

fn infer_axis(
    blocks: &[Block],
    center: impl Fn(&Block) -> f64,
    extent: f64,
) -> Result<usize, SpectralGridError> {
    if blocks.is_empty() {
        return Ok(1);
    }
    'grid: for n in 1..=MAX_GRID_AXIS {
        for b in blocks {
            // On an n-tile axis, tile centres sit at (k + ½)·extent/n.
            let u = center(b) * n as f64 / extent - 0.5;
            if (u - u.round()).abs() > GRID_ALIGN_TOLERANCE {
                continue 'grid;
            }
        }
        return Ok(n);
    }
    Err(SpectralGridError::NoCoincidentGrid {
        max_axis: MAX_GRID_AXIS,
    })
}

/// Fingerprint of the spectral operator a build would produce: the map
/// operator's fingerprint (geometry × grid × image orders) mixed with
/// the refinement tolerance — everything the deterministic build reads.
/// Computable without building, which is what lets the fleet cache
/// decide hit/miss before paying for kernel assembly and refinement.
pub fn spectral_operator_fingerprint(
    floorplan: &Floorplan,
    lateral_order: usize,
    z_order: usize,
    nx: usize,
    ny: usize,
    tolerance: f64,
) -> u64 {
    let mut f = ptherm_floorplan::fingerprint::Fingerprinter::new("ptherm.spectral.v1");
    f.write_u64(map_operator_fingerprint(
        floorplan,
        lateral_order,
        z_order,
        nx,
        ny,
    ));
    f.write_u64(tolerance.to_bits());
    f.finish()
}

/// Precomputed spectral influence operator of one floorplan: the map
/// engine's parity-kernel spectra, per-block equivalent-source stencils
/// (area-overlap, CG-refined where the near-field error warrants it)
/// and the centre-tile sampling sites. Shareable across threads; each
/// worker brings its own [`SpectralScratch`].
///
/// # Example
///
/// ```
/// use ptherm_core::cosim::spectral::{SpectralOperator, SpectralScratch};
/// use ptherm_floorplan::{generator, ChipGeometry};
///
/// let fp = generator::tile_aligned(ChipGeometry::paper_1mm(), 8, 8, |_| 0.01).unwrap();
/// let op = SpectralOperator::build(&fp).expect("tile-aligned plans are grid-coincident");
/// assert_eq!((op.nx(), op.ny()), (8, 8));
/// let mut rises = vec![0.0; op.blocks()];
/// op.rises_into(&vec![0.01; 64], &mut SpectralScratch::new(), &mut rises);
/// assert!(rises.iter().all(|&r| r > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct SpectralOperator {
    map: MapOperator,
    /// Per-block equivalent-source stencils (tile index, W fraction).
    stencils: Vec<Vec<(u32, f64)>>,
    /// Tile each block's temperature is sampled at (its centre tile).
    sample_tiles: Vec<u32>,
    /// Blocks whose stencil was CG-refined.
    refined: usize,
    tolerance: f64,
    fingerprint: u64,
}

impl SpectralOperator {
    /// Builds the operator with the workspace accuracy defaults (lateral
    /// image order 2, depth series order 9), the default refinement
    /// tolerance and one worker per available CPU.
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when the floorplan's block centres sit on
    /// no uniform grid (see [`infer_grid`]).
    pub fn build(floorplan: &Floorplan) -> Result<Self, SpectralGridError> {
        Self::with_image_orders_threaded(
            floorplan,
            2,
            9,
            DEFAULT_REFINEMENT_TOLERANCE,
            ptherm_par::default_threads(),
        )
    }

    /// [`Self::build`] with explicit image orders, refinement tolerance
    /// (K per W of near-field stencil error before CG refinement kicks
    /// in) and worker count. The build is bit-identical from 1 to N
    /// threads. Block powers recorded in `floorplan` are ignored: the
    /// operator is per-watt and applies to any power vector.
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when the floorplan's block centres sit on
    /// no uniform grid (see [`infer_grid`]).
    pub fn with_image_orders_threaded(
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        tolerance: f64,
        threads: usize,
    ) -> Result<Self, SpectralGridError> {
        let (nx, ny) = infer_grid(floorplan)?;
        let map = MapOperator::with_image_orders_threaded(
            floorplan,
            nx,
            ny,
            lateral_order,
            z_order,
            threads,
        );
        let fingerprint =
            spectral_operator_fingerprint(floorplan, lateral_order, z_order, nx, ny, tolerance);

        let sample_tiles: Vec<u32> = floorplan
            .blocks()
            .iter()
            .map(|b| map.tile_of(b.cx, b.cy) as u32)
            .collect();
        let mut stencils: Vec<Vec<(u32, f64)>> = (0..floorplan.blocks().len())
            .map(|i| map.stencil_of(i).to_vec())
            .collect();

        // Blocks that coincide with one tile scatter exactly and skip
        // the (comparatively expensive) near-field check entirely — on a
        // tile-aligned floorplan the whole refinement stage is free.
        let (tile_w, tile_l) = map.tile_pitch();
        let suspects: Vec<usize> = floorplan
            .blocks()
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                stencils[*i].len() > 1
                    || (b.w - tile_w).abs() > 1e-9 * tile_w
                    || (b.l - tile_l).abs() > 1e-9 * tile_l
            })
            .map(|(i, _)| i)
            .collect();
        let mut refined = 0;
        if !suspects.is_empty() {
            let kernels = map.spatial_kernels(threads);
            let refiner = StencilRefiner {
                map: &map,
                kernels: &kernels,
                floorplan,
                tolerance,
            };
            // Pure per-block function mapped in input order: the result
            // is independent of the worker count.
            let refinements = ptherm_par::par_map(threads, &suspects, |_, &block| {
                refiner.refine(block, &stencils[block])
            });
            for (&block, refinement) in suspects.iter().zip(refinements) {
                if let Some(stencil) = refinement {
                    stencils[block] = stencil;
                    refined += 1;
                }
            }
        }

        Ok(SpectralOperator {
            map,
            stencils,
            sample_tiles,
            refined,
            tolerance,
            fingerprint,
        })
    }

    /// Stable content fingerprint (see [`spectral_operator_fingerprint`]):
    /// equal fingerprints imply bit-identical kernels, stencils and
    /// sampling sites — the contract the fleet cache relies on.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Inferred grid width in tiles.
    pub fn nx(&self) -> usize {
        self.map.nx()
    }

    /// Inferred grid height in tiles.
    pub fn ny(&self) -> usize {
        self.map.ny()
    }

    /// Number of floorplan blocks the operator serves.
    pub fn blocks(&self) -> usize {
        self.stencils.len()
    }

    /// Sink temperature the source floorplan declared, K.
    pub fn sink_temperature(&self) -> f64 {
        self.map.sink_temperature()
    }

    /// Lateral image order the kernels were built with.
    pub fn lateral_order(&self) -> usize {
        self.map.lateral_order()
    }

    /// Depth-series order the kernels were built with.
    pub fn z_order(&self) -> usize {
        self.map.z_order()
    }

    /// Near-field tolerance (K per W) the build refined against.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// How many blocks carry a CG-refined equivalent-source stencil.
    pub fn refined_blocks(&self) -> usize {
        self.refined
    }

    /// Per-watt temperature rises at every block site for one power
    /// vector: scatter through the equivalent-source stencils, one FFT
    /// apply on the tile torus, gather at the centre tiles. Zero
    /// allocation once `scratch` is warm.
    ///
    /// # Panics
    ///
    /// Panics if `block_powers` or `out` is not of length
    /// [`Self::blocks`].
    pub fn rises_into(&self, block_powers: &[f64], scratch: &mut SpectralScratch, out: &mut [f64]) {
        assert_eq!(block_powers.len(), self.blocks(), "power length mismatch");
        assert_eq!(out.len(), self.blocks(), "rise length mismatch");
        let tiles = self.map.tiles();
        scratch.tile_powers.clear();
        scratch.tile_powers.resize(tiles, 0.0);
        for (stencil, &p) in self.stencils.iter().zip(block_powers) {
            for &(cell, fraction) in stencil {
                scratch.tile_powers[cell as usize] += p * fraction;
            }
        }
        scratch.field.clear();
        scratch.field.resize(tiles, 0.0);
        self.map.rise_from_tiles_into(
            &scratch.tile_powers,
            &mut scratch.map_ws,
            &mut scratch.field,
        );
        for (r, &tile) in out.iter_mut().zip(&self.sample_tiles) {
            *r = scratch.field[tile as usize];
        }
    }
}

/// The per-block CG refinement stage: measures a stencil's near-field
/// error against the exact per-watt image sum and, where it exceeds the
/// tolerance, fits an equivalent source over the surrounding tiles.
struct StencilRefiner<'a> {
    map: &'a MapOperator,
    /// Spatial parity kernels, [`MapOperator::rise_map_direct`] indexing.
    kernels: &'a [Vec<f64>; 4],
    floorplan: &'a Floorplan,
    tolerance: f64,
}

impl StencilRefiner<'_> {
    /// Tile-to-tile per-watt rise `G(target, source)` through the four
    /// parity kernels — exactly the entry the FFT apply realizes.
    fn g(&self, ix: usize, iy: usize, jx: usize, jy: usize) -> f64 {
        let (mx, my) = self.map.torus();
        let [dd, sd, ds, ss] = self.kernels;
        let ddx = (ix + mx - jx) % mx;
        let sdx = ix + jx;
        let ddy = (iy + my - jy) % my;
        let sdy = iy + jy;
        dd[ddx + mx * ddy] + sd[sdx + mx * ddy] + ds[ddx + mx * sdy] + ss[sdx + mx * sdy]
    }

    /// Exact per-watt rise of `block` at the centre of tile `(tx, ty)`:
    /// the dense operator's truncated image sum, evaluated directly.
    fn exact_rise(&self, block: &Block, tx: usize, ty: usize) -> f64 {
        let g = self.floorplan.geometry();
        let kernel = BlockKernel::for_block(block, g.conductivity, 1.0);
        let (cx, cy) = self.map.tile_center(tx, ty);
        let mut rise = 0.0;
        for img in expand_images_iter(
            block.cx,
            block.cy,
            g.width,
            g.length,
            g.thickness,
            self.map.lateral_order(),
            self.map.z_order(),
        ) {
            rise += img.sign * kernel.rise(cx - img.cx, cy - img.cy, img.depth);
        }
        rise
    }

    /// Refined stencil for `block`, or `None` when the default already
    /// meets the tolerance, the patch is too large, or CG fails to beat
    /// the default (the area-overlap stencil is always a safe fallback).
    fn refine(&self, block: usize, default: &[(u32, f64)]) -> Option<Vec<(u32, f64)>> {
        let (nx, ny) = (self.map.nx(), self.map.ny());
        let b = &self.floorplan.blocks()[block];

        // Tile bounding box of the default stencil, grown by one ring
        // for the support (unknowns) and three for the probes.
        let mut x0 = usize::MAX;
        let mut x1 = 0usize;
        let mut y0 = usize::MAX;
        let mut y1 = 0usize;
        for &(cell, _) in default {
            let (cx, cy) = (cell as usize % nx, cell as usize / nx);
            x0 = x0.min(cx);
            x1 = x1.max(cx);
            y0 = y0.min(cy);
            y1 = y1.max(cy);
        }
        let clip_box = |x0: usize, x1: usize, y0: usize, y1: usize, ring: usize| {
            (
                x0.saturating_sub(ring),
                (x1 + ring).min(nx - 1),
                y0.saturating_sub(ring),
                (y1 + ring).min(ny - 1),
            )
        };
        let (sx0, sx1, sy0, sy1) = clip_box(x0, x1, y0, y1, 1);
        let (px0, px1, py0, py1) = clip_box(x0, x1, y0, y1, 3);
        let support: Vec<(usize, usize)> = (sy0..=sy1)
            .flat_map(|y| (sx0..=sx1).map(move |x| (x, y)))
            .collect();
        let probes: Vec<(usize, usize)> = (py0..=py1)
            .flat_map(|y| (px0..=px1).map(move |x| (x, y)))
            .collect();
        let m = support.len();
        if m > MAX_REFINEMENT_SUPPORT {
            return None;
        }

        // Exact per-watt near field and the default stencil's error.
        let exact: Vec<f64> = probes
            .iter()
            .map(|&(x, y)| self.exact_rise(b, x, y))
            .collect();
        let predicted = |stencil: &[(u32, f64)]| -> Vec<f64> {
            probes
                .iter()
                .map(|&(ix, iy)| {
                    stencil
                        .iter()
                        .map(|&(cell, q)| {
                            q * self.g(ix, iy, cell as usize % nx, cell as usize / nx)
                        })
                        .sum()
                })
                .collect()
        };
        let error = |pred: &[f64]| -> f64 {
            pred.iter()
                .zip(&exact)
                .map(|(p, e)| (p - e).abs())
                .fold(0.0f64, f64::max)
        };
        let default_error = error(&predicted(default));
        if default_error <= self.tolerance {
            return None;
        }

        // Least-squares equivalent source: minimize ‖A q − exact‖ over
        // the support, with a weighted Σq = 1 conservation row so the
        // far field (beyond the probes) keeps the right total power.
        // Solved through the normal equations AᵀA q = Aᵀb, SPD by
        // construction, with the map's own G columns as the basis.
        let a: Vec<f64> = probes
            .iter()
            .flat_map(|&(ix, iy)| {
                support
                    .iter()
                    .map(move |&(jx, jy)| self.g(ix, iy, jx, jy))
                    .collect::<Vec<f64>>()
            })
            .collect();
        let mut gram = vec![0.0; m * m];
        let mut rhs = vec![0.0; m];
        for p in 0..probes.len() {
            let row = &a[p * m..(p + 1) * m];
            for i in 0..m {
                rhs[i] += row[i] * exact[p];
                for j in 0..m {
                    gram[i * m + j] += row[i] * row[j];
                }
            }
        }
        let trace: f64 = (0..m).map(|i| gram[i * m + i]).sum();
        let weight = trace / m as f64;
        for i in 0..m {
            rhs[i] += weight;
            for j in 0..m {
                gram[i * m + j] += weight;
            }
        }
        let mut triplets = Vec::with_capacity(m * m);
        for i in 0..m {
            for j in 0..m {
                triplets.push((i, j, gram[i * m + j]));
            }
        }
        let matrix = CsrMatrix::from_triplets(m, &triplets).ok()?;
        let solution = solve_cg(&matrix, &rhs, 1e-12, 100 * m + 200).ok()?;

        let candidate: Vec<(u32, f64)> = support
            .iter()
            .zip(&solution.x)
            // lint:allow(float-compare) — exact-zero sparsity filter: CG leaves untouched entries at literal 0.0
            .filter(|(_, &q)| q != 0.0)
            .map(|(&(x, y), &q)| ((x + nx * y) as u32, q))
            .collect();
        (error(&predicted(&candidate)) < default_error).then_some(candidate)
    }
}

/// Reusable per-worker scratch for the spectral apply: the scattered
/// tile power grid, the rise field and the map engine's FFT panels.
/// Buffers size themselves on first use.
#[derive(Debug, Clone, Default)]
pub struct SpectralScratch {
    tile_powers: Vec<f64>,
    field: Vec<f64>,
    map_ws: MapWorkspace,
}

impl SpectralScratch {
    /// An empty scratch; buffers size themselves on first apply.
    pub fn new() -> Self {
        SpectralScratch::default()
    }
}

/// Batched fixed-point driver over one solver configuration and one
/// [`SpectralOperator`] — the spectral twin of
/// [`BatchedSolver`](crate::cosim::BatchedSolver), sharing the *same*
/// Picard skeleton (`drive_picard`): lane refill, damped update and
/// guard order are one piece of code, only the thermal apply differs.
///
/// # Example
///
/// ```
/// use ptherm_core::cosim::batch::{BatchWorkspace, FnBatchPower};
/// use ptherm_core::cosim::spectral::{SpectralBatchedSolver, SpectralOperator, SpectralScratch};
/// use ptherm_core::cosim::ElectroThermalSolver;
/// use ptherm_floorplan::{generator, ChipGeometry};
///
/// let fp = generator::tile_aligned(ChipGeometry::paper_1mm(), 6, 6, |_| 0.005).unwrap();
/// let solver = ElectroThermalSolver::new(fp.clone());
/// let op = SpectralOperator::build(&fp).unwrap();
/// let batched = SpectralBatchedSolver::new(&solver, &op);
/// let mut model = FnBatchPower::new(|id, _block, _t| 0.002 * (id + 1) as f64);
/// let outcomes = batched.solve(
///     &[300.0; 3],
///     &mut model,
///     &mut BatchWorkspace::new(),
///     &mut SpectralScratch::new(),
/// );
/// assert!(outcomes.iter().all(|o| o.is_converged()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpectralBatchedSolver<'a> {
    solver: &'a ElectroThermalSolver,
    operator: &'a SpectralOperator,
}

impl<'a> SpectralBatchedSolver<'a> {
    /// Couples a solver configuration with its spectral operator.
    ///
    /// # Panics
    ///
    /// Panics if `operator` was built for a different block count than
    /// `solver`'s floorplan.
    pub fn new(solver: &'a ElectroThermalSolver, operator: &'a SpectralOperator) -> Self {
        assert_eq!(
            operator.blocks(),
            solver.floorplan().blocks().len(),
            "operator/floorplan block-count mismatch"
        );
        SpectralBatchedSolver { solver, operator }
    }

    /// Solves one fixed batch: scenario `id = i` runs at ambient
    /// `ambients[i]`, outcomes return in input order.
    pub fn solve<M: BatchPowerModel + ?Sized>(
        &self,
        ambients: &[f64],
        model: &mut M,
        ws: &mut BatchWorkspace,
        scratch: &mut SpectralScratch,
    ) -> Vec<SweepOutcome> {
        let b = ambients.len();
        let mut out: Vec<Option<SweepOutcome>> = (0..b).map(|_| None).collect();
        let mut next = 0usize;
        self.drive(
            b,
            model,
            ws,
            scratch,
            None,
            &mut || {
                (next < b).then(|| {
                    let id = next;
                    next += 1;
                    LaneStart::cold(id, ambients[id])
                })
            },
            &mut |id, outcome| out[id] = Some(outcome),
        );
        out.into_iter()
            // lint:allow(panic-freedom) — the closure source yields each id in 0..b exactly once and the sink stores every retired lane
            .map(|o| o.expect("every scenario retired"))
            .collect()
    }

    /// The streaming entry point, mirroring
    /// [`BatchedSolver::drive`](crate::cosim::BatchedSolver::drive):
    /// same lane-refill semantics, same guard order (shared skeleton),
    /// but each live lane's rises come from one scatter → FFT → sample
    /// pass instead of a GEMM column.
    #[allow(clippy::too_many_arguments)]
    pub fn drive<M: BatchPowerModel + ?Sized>(
        &self,
        lanes: usize,
        model: &mut M,
        ws: &mut BatchWorkspace,
        scratch: &mut SpectralScratch,
        cancel: Option<&CancelToken>,
        source: &mut dyn FnMut() -> Option<LaneStart>,
        sink: &mut dyn FnMut(usize, SweepOutcome),
    ) {
        let operator = self.operator;
        let n = operator.blocks();
        let mut lane_powers = vec![0.0; n];
        let mut lane_rises = vec![0.0; n];
        drive_picard(
            self.solver,
            n,
            lanes,
            model,
            ws,
            cancel,
            source,
            sink,
            &mut |powers: &MultiVec, fresh: &mut MultiVec, alive: &[bool]| {
                for (lane, &live) in alive.iter().enumerate() {
                    if !live {
                        continue;
                    }
                    powers.copy_lane_into(lane, &mut lane_powers);
                    operator.rises_into(&lane_powers, scratch, &mut lane_rises);
                    for (i, &r) in lane_rises.iter().enumerate() {
                        fresh.set(i, lane, r);
                    }
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::batch::{BatchedSolver, FnBatchPower};
    use crate::cosim::ThermalOperator;
    use ptherm_floorplan::{generator, ChipGeometry};

    fn tile_aligned(nx: usize, ny: usize) -> Floorplan {
        generator::tile_aligned(ChipGeometry::paper_1mm(), nx, ny, |i| {
            0.002 + 0.001 * ((i * 7) % 13) as f64
        })
        .expect("aligned tiling is valid")
    }

    #[test]
    fn grid_inference_recovers_generator_grids() {
        assert_eq!(infer_grid(&tile_aligned(8, 8)), Ok((8, 8)));
        assert_eq!(infer_grid(&tile_aligned(6, 10)), Ok((6, 10)));
        let tiled = generator::tiled(ChipGeometry::paper_1mm(), 5, 7, 0.01, 0.02, 3)
            .expect("tiled plan is valid");
        assert_eq!(infer_grid(&tiled), Ok((7, 5)));
    }

    #[test]
    fn empty_floorplan_gets_the_degenerate_grid() {
        let fp = Floorplan::new(ChipGeometry::paper_1mm(), Vec::new()).unwrap();
        assert_eq!(infer_grid(&fp), Ok((1, 1)));
        let op = SpectralOperator::build(&fp).unwrap();
        assert_eq!(op.blocks(), 0);
    }

    #[test]
    fn paper_floorplan_has_no_coincident_grid() {
        // Centres at 0.30/0.75 mm on a 1 mm die: 0.3n − ½ and 0.75n − ½
        // are never simultaneously integers, so the typed error fires.
        let err = infer_grid(&Floorplan::paper_three_blocks()).unwrap_err();
        assert_eq!(
            err,
            SpectralGridError::NoCoincidentGrid {
                max_axis: MAX_GRID_AXIS
            }
        );
        assert!(err.to_string().contains("no uniform tile grid"));
        assert!(SpectralOperator::build(&Floorplan::paper_three_blocks()).is_err());
    }

    #[test]
    fn aligned_rises_match_the_dense_operator() {
        // Tile-coincident blocks scatter exactly: the spectral apply is
        // the dense operator's image sum term for term.
        let fp = tile_aligned(6, 5);
        let spectral = SpectralOperator::build(&fp).unwrap();
        assert_eq!(
            spectral.refined_blocks(),
            0,
            "aligned blocks skip refinement"
        );
        let dense = ThermalOperator::with_image_orders(&fp, 2, 9);
        let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
        let mut got = vec![0.0; powers.len()];
        spectral.rises_into(&powers, &mut SpectralScratch::new(), &mut got);
        let mut want = vec![0.0; powers.len()];
        dense.temperature_rises_into(&powers, &mut want);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() <= 1e-9, "block {i}: {g} vs {w}");
        }
    }

    #[test]
    fn refinement_beats_area_overlap_on_off_grid_blocks() {
        // Gutter-style blocks (0.9 of a tile pitch) scatter inexactly;
        // the CG equivalent source must land closer to the dense
        // operator than raw area overlap does.
        let fp = generator::tiled(ChipGeometry::paper_1mm(), 6, 6, 0.008, 0.02, 11)
            .expect("tiled plan is valid");
        let refined = SpectralOperator::with_image_orders_threaded(
            &fp,
            2,
            9,
            DEFAULT_REFINEMENT_TOLERANCE,
            1,
        )
        .unwrap();
        assert!(refined.refined_blocks() > 0, "gutter blocks must refine");
        let unrefined =
            SpectralOperator::with_image_orders_threaded(&fp, 2, 9, f64::INFINITY, 1).unwrap();
        assert_eq!(unrefined.refined_blocks(), 0);
        let dense = ThermalOperator::with_image_orders(&fp, 2, 9);
        let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
        let mut want = vec![0.0; powers.len()];
        dense.temperature_rises_into(&powers, &mut want);
        let gap = |op: &SpectralOperator| -> f64 {
            let mut got = vec![0.0; powers.len()];
            op.rises_into(&powers, &mut SpectralScratch::new(), &mut got);
            got.iter()
                .zip(&want)
                .map(|(g, w)| (g - w).abs())
                .fold(0.0f64, f64::max)
        };
        let (refined_gap, unrefined_gap) = (gap(&refined), gap(&unrefined));
        assert!(
            refined_gap < unrefined_gap,
            "refined {refined_gap:e} K vs unrefined {unrefined_gap:e} K"
        );
    }

    #[test]
    fn solve_matches_the_dense_batched_solver_on_aligned_plans() {
        let fp = tile_aligned(5, 5);
        let solver = ElectroThermalSolver::new(fp.clone());
        let dense_op = solver.operator();
        let spectral_op = SpectralOperator::build(&fp).unwrap();
        let f = |id: usize, _b: usize, t: f64| {
            0.003 + 0.001 * (id % 3) as f64 + 0.001 * ((t - 300.0) / 40.0).exp2()
        };
        let ambients = [300.0, 310.0, 320.0, 330.0];
        let dense = BatchedSolver::new(&solver, &dense_op).solve(
            &ambients,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
        );
        let spectral = SpectralBatchedSolver::new(&solver, &spectral_op).solve(
            &ambients,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
            &mut SpectralScratch::new(),
        );
        for (i, (s, d)) in spectral.iter().zip(&dense).enumerate() {
            match (s, d) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: st,
                        iterations: si,
                        ..
                    },
                    SweepOutcome::Converged {
                        block_temperatures: dt,
                        iterations: di,
                        ..
                    },
                ) => {
                    assert_eq!(si, di, "scenario {i} iterations");
                    for (a, b) in st.iter().zip(dt) {
                        assert!((a - b).abs() <= 1e-6, "scenario {i}: {a} vs {b}");
                    }
                }
                other => panic!("scenario {i}: expected converged pair, got {other:?}"),
            }
        }
    }

    #[test]
    fn outcome_kinds_match_the_dense_backend_across_the_guard_order() {
        // Converged, runaway and bad-power lanes must classify
        // identically — the shared skeleton makes this structural, the
        // test pins it.
        let fp = tile_aligned(4, 4);
        let solver = ElectroThermalSolver::new(fp.clone());
        let dense_op = solver.operator();
        let spectral_op = SpectralOperator::build(&fp).unwrap();
        let f = |id: usize, b: usize, t: f64| match id {
            1 => 0.5 * ((t - 300.0) / 3.0).exp2(),
            3 if b == 5 => f64::NAN,
            _ => 0.004 * (id + 1) as f64,
        };
        let ambients = [300.0, 300.0, 315.0, 300.0];
        let dense = BatchedSolver::new(&solver, &dense_op).solve(
            &ambients,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
        );
        let spectral = SpectralBatchedSolver::new(&solver, &spectral_op).solve(
            &ambients,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
            &mut SpectralScratch::new(),
        );
        for (i, (s, d)) in spectral.iter().zip(&dense).enumerate() {
            assert_eq!(
                std::mem::discriminant(s),
                std::mem::discriminant(d),
                "scenario {i}: {s:?} vs {d:?}"
            );
        }
        assert!(matches!(
            spectral[3],
            SweepOutcome::BadPower { block: 5, power: _ }
        ));
    }

    #[test]
    fn lane_results_are_bitwise_invariant_across_batch_widths() {
        // Per-lane scatter → FFT → sample touches only that lane's
        // powers, so outcomes cannot depend on the batch width.
        let fp = tile_aligned(6, 6);
        let solver = ElectroThermalSolver::new(fp.clone());
        let op = SpectralOperator::build(&fp).unwrap();
        let batched = SpectralBatchedSolver::new(&solver, &op);
        let f = |id: usize, _b: usize, t: f64| {
            0.002 + 0.001 * (id % 5) as f64 + 0.0005 * ((t - 300.0) / 25.0).exp2()
        };
        let ambients: Vec<f64> = (0..9).map(|i| 298.0 + 3.0 * i as f64).collect();
        let solve_with_lanes = |lanes: usize| -> Vec<SweepOutcome> {
            let mut out: Vec<Option<SweepOutcome>> = (0..ambients.len()).map(|_| None).collect();
            let mut next = 0usize;
            batched.drive(
                lanes,
                &mut FnBatchPower::new(f),
                &mut BatchWorkspace::new(),
                &mut SpectralScratch::new(),
                None,
                &mut || {
                    (next < ambients.len()).then(|| {
                        let id = next;
                        next += 1;
                        LaneStart::cold(id, ambients[id])
                    })
                },
                &mut |id, o| out[id] = Some(o),
            );
            out.into_iter().map(Option::unwrap).collect()
        };
        let reference = solve_with_lanes(9);
        for lanes in [1, 2, 4, 64] {
            let got = solve_with_lanes(lanes);
            for (i, (g, w)) in got.iter().zip(&reference).enumerate() {
                match (g, w) {
                    (
                        SweepOutcome::Converged {
                            block_temperatures: gt,
                            block_powers: gp,
                            iterations: gi,
                        },
                        SweepOutcome::Converged {
                            block_temperatures: wt,
                            block_powers: wp,
                            iterations: wi,
                        },
                    ) => {
                        assert_eq!(gi, wi, "lanes {lanes} scenario {i}");
                        assert_eq!(gt, wt, "lanes {lanes} scenario {i} temps");
                        assert_eq!(gp, wp, "lanes {lanes} scenario {i} powers");
                    }
                    (g, w) => assert_eq!(g, w, "lanes {lanes} scenario {i}"),
                }
            }
        }
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let fp = generator::tiled(ChipGeometry::paper_1mm(), 5, 5, 0.005, 0.015, 9)
            .expect("tiled plan is valid");
        let serial = SpectralOperator::with_image_orders_threaded(
            &fp,
            2,
            5,
            DEFAULT_REFINEMENT_TOLERANCE,
            1,
        )
        .unwrap();
        for threads in [2, 8] {
            let parallel = SpectralOperator::with_image_orders_threaded(
                &fp,
                2,
                5,
                DEFAULT_REFINEMENT_TOLERANCE,
                threads,
            )
            .unwrap();
            assert_eq!(serial.stencils, parallel.stencils, "threads = {threads}");
            assert_eq!(serial.sample_tiles, parallel.sample_tiles);
            assert_eq!(serial.fingerprint(), parallel.fingerprint());
        }
    }

    #[test]
    fn fingerprint_keys_grid_orders_and_tolerance_not_powers() {
        let fp = tile_aligned(4, 4);
        let mut repowered = fp.clone();
        repowered.set_power(0, 42.0);
        assert_eq!(
            SpectralOperator::build(&fp).unwrap().fingerprint(),
            SpectralOperator::build(&repowered).unwrap().fingerprint()
        );
        assert_ne!(
            spectral_operator_fingerprint(&fp, 2, 9, 4, 4, 1e-6),
            spectral_operator_fingerprint(&fp, 2, 9, 4, 4, 1e-3)
        );
        assert_ne!(
            spectral_operator_fingerprint(&fp, 2, 9, 4, 4, 1e-6),
            spectral_operator_fingerprint(&fp, 1, 9, 4, 4, 1e-6)
        );
    }

    #[test]
    fn zero_power_rises_are_exactly_zero() {
        let fp = tile_aligned(5, 4);
        let op = SpectralOperator::build(&fp).unwrap();
        let mut rises = vec![1.0; op.blocks()];
        op.rises_into(
            &vec![0.0; op.blocks()],
            &mut SpectralScratch::new(),
            &mut rises,
        );
        assert!(rises.iter().all(|&r| r == 0.0));
    }
}
