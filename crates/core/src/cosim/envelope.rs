//! Adaptive bracketing of the converged/runaway boundary — the paper's
//! central phenomenon, located without exhaustive gridding.
//!
//! A scenario grid restricted to one axis (Vdd scale, activity, or
//! ambient) is a family of **fibers**: one per combination of the
//! remaining axes. Along each fiber the damped Picard solve either
//! finds a fixed point or reports thermal runaway, and for the paper's
//! power laws the runaway side is upward-closed in each axis (more
//! supply, more activity, or a hotter sink only pushes toward runaway).
//! [`SweepEngine::map_envelope`] exploits that monotonicity: it probes
//! the two endpoints of the requested interval per fiber, then bisects
//! — each round batching **one midpoint per unresolved fiber** through
//! the same GEMM-batched Picard driver as ordinary sweeps — until every
//! bracket is narrower than the requested tolerance.
//!
//! Cost: `2 + ⌈log₂(width/tol)⌉` solves per fiber versus
//! `⌈width/tol⌉ + 1` for an exhaustive scan at equal resolution — the
//! `envelope` bench audits the ratio and CI gates it at ≤25%.
//!
//! Fibers that violate the monotone picture (runaway at the low
//! endpoint but converged at the high one) are reported as a typed
//! [`FiberBoundary::NonMonotone`] diagnostic rather than a wrong
//! bracket; budget-exhausted, bad-power and cancelled probes surface as
//! [`FiberBoundary::Indeterminate`].

use crate::cosim::batch::FnBatchPower;
use crate::cosim::sweep::{
    Scenario, ScenarioGrid, ScenarioPowerModel, SweepEngine, SweepOutcome, WarmMode,
};
use crate::cosim::RunOptions;
use crate::cosim::ThermalOperator;
use std::fmt;
use std::sync::Arc;

/// The scenario axis an envelope sweep bisects along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeAxis {
    /// Supply scale relative to nominal `V_DD`
    /// ([`Scenario::vdd_scale`]).
    VddScale,
    /// Switching-activity multiplier ([`Scenario::activity`]).
    Activity,
    /// Ambient (heat-sink) temperature, K ([`Scenario::ambient_k`]).
    AmbientK,
}

impl EnvelopeAxis {
    /// Stable lower-case name (`"vdd_scale"` / `"activity"` /
    /// `"ambient_k"`) — what fleet result lines report and job specs
    /// parse.
    pub fn name(self) -> &'static str {
        match self {
            EnvelopeAxis::VddScale => "vdd_scale",
            EnvelopeAxis::Activity => "activity",
            EnvelopeAxis::AmbientK => "ambient_k",
        }
    }

    fn write(self, scenario: &mut Scenario, value: f64) {
        match self {
            EnvelopeAxis::VddScale => scenario.vdd_scale = value,
            EnvelopeAxis::Activity => scenario.activity = value,
            EnvelopeAxis::AmbientK => scenario.ambient_k = value,
        }
    }
}

impl fmt::Display for EnvelopeAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What [`SweepEngine::map_envelope`] bisects: one axis, an interval,
/// and the bracket tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeSpec {
    /// The axis swept along each fiber; the grid's own values on this
    /// axis are ignored (replaced by `[lo, hi]`), its **other** axes
    /// define the fiber family.
    pub axis: EnvelopeAxis,
    /// Low end of the searched interval (inclusive).
    pub lo: f64,
    /// High end of the searched interval (inclusive). `hi == lo` is a
    /// zero-width probe: each fiber is classified from one solve.
    pub hi: f64,
    /// Maximum final bracket width: bisection stops once
    /// `runaway − converged ≤ tolerance`.
    pub tolerance: f64,
}

/// Typed rejection of an ill-formed [`EnvelopeSpec`] — the validation
/// [`SweepEngine::map_envelope`] performs before any solve.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvelopeSpecError {
    /// `lo`, `hi` or `tolerance` is NaN or infinite.
    NonFinite {
        /// The offending field's name.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `lo > hi`: the interval is empty.
    EmptyInterval {
        /// Requested low end.
        lo: f64,
        /// Requested high end.
        hi: f64,
    },
    /// `tolerance ≤ 0`: bisection could never terminate.
    BadTolerance {
        /// Requested tolerance.
        tolerance: f64,
    },
}

impl fmt::Display for EnvelopeSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeSpecError::NonFinite { field, value } => {
                write!(f, "envelope {field} must be finite, got {value}")
            }
            EnvelopeSpecError::EmptyInterval { lo, hi } => {
                write!(f, "envelope interval is empty: lo {lo} > hi {hi}")
            }
            EnvelopeSpecError::BadTolerance { tolerance } => {
                write!(f, "envelope tolerance must be positive, got {tolerance}")
            }
        }
    }
}

impl std::error::Error for EnvelopeSpecError {}

/// Where one fiber's converged/runaway boundary landed.
#[derive(Debug, Clone, PartialEq)]
pub enum FiberBoundary {
    /// The boundary is bracketed: the solve converges at `converged`
    /// and runs away at `runaway`, with
    /// `runaway − converged ≤ tolerance`.
    Bracketed {
        /// Highest probed axis value that converged.
        converged: f64,
        /// Lowest probed axis value that ran away.
        runaway: f64,
    },
    /// Both endpoints converge: the boundary (if any) lies above `hi`.
    AllConverged,
    /// Both endpoints run away: the boundary (if any) lies below `lo`.
    AllRunaway,
    /// The low endpoint ran away while the high one converged — the
    /// fiber violates the monotone-runaway picture, so bisection would
    /// fabricate a bracket. Reported instead of guessed.
    NonMonotone,
    /// A probe ended in a state that classifies neither side
    /// (budget exhausted, bad power, or cancellation).
    Indeterminate,
}

impl FiberBoundary {
    /// Stable lower-case kind name for result lines.
    pub fn kind(&self) -> &'static str {
        match self {
            FiberBoundary::Bracketed { .. } => "bracketed",
            FiberBoundary::AllConverged => "all_converged",
            FiberBoundary::AllRunaway => "all_runaway",
            FiberBoundary::NonMonotone => "non_monotone",
            FiberBoundary::Indeterminate => "indeterminate",
        }
    }
}

/// One fiber of an envelope map: the fixed coordinates plus the located
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeFiber {
    /// The fiber's fixed coordinates. The swept axis's field holds the
    /// interval's `lo` endpoint (that coordinate varies along the
    /// fiber; see [`EnvelopeFiber::boundary`] for where it lands).
    pub scenario: Scenario,
    /// The fiber's classified boundary.
    pub boundary: FiberBoundary,
}

/// Result of [`SweepEngine::map_envelope`]: per-fiber boundaries plus
/// the audited solve budget.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeReport {
    /// The swept axis.
    pub axis: EnvelopeAxis,
    /// The requested bracket tolerance.
    pub tolerance: f64,
    /// One entry per fiber, in grid enumeration order of the non-swept
    /// axes (Vdd innermost, then activity, ambient, technology).
    pub fibers: Vec<EnvelopeFiber>,
    /// Picard solves actually spent (endpoint probes + midpoints) —
    /// the number the `envelope` bench gates against
    /// [`Self::exhaustive_solves`].
    pub solves: usize,
    /// Solves an exhaustive scan at the same resolution would spend:
    /// `fibers × (⌈(hi − lo)/tolerance⌉ + 1)` (one per grid point per
    /// fiber; 1 for a zero-width interval).
    pub exhaustive_solves: usize,
}

impl EnvelopeReport {
    /// Number of fibers.
    pub fn len(&self) -> usize {
        self.fibers.len()
    }

    /// Whether the fiber family is empty.
    pub fn is_empty(&self) -> bool {
        self.fibers.is_empty()
    }

    /// Fibers with a definite classification (everything but
    /// [`FiberBoundary::Indeterminate`]).
    pub fn resolved_count(&self) -> usize {
        self.fibers
            .iter()
            .filter(|f| !matches!(f.boundary, FiberBoundary::Indeterminate))
            .count()
    }

    /// Fibers whose boundary was bracketed to tolerance.
    pub fn bracketed_count(&self) -> usize {
        self.fibers
            .iter()
            .filter(|f| matches!(f.boundary, FiberBoundary::Bracketed { .. }))
            .count()
    }
}

/// Per-fiber bisection state between wavefront rounds.
enum FiberState {
    /// Boundary known to lie in `(lo, hi]`; next probe is the midpoint.
    Bisecting {
        lo: f64,
        hi: f64,
    },
    Done(FiberBoundary),
}

impl SweepEngine {
    /// Maps the converged/runaway boundary of `model` along one
    /// scenario axis, bisecting each fiber of `grid`'s remaining axes
    /// to `spec.tolerance` — see the [module docs](self) for the
    /// algorithm and cost model.
    ///
    /// `grid` contributes the fiber family (its values on the swept
    /// axis are ignored; a grid without an explicit ambient axis
    /// contributes the floorplan sink temperature, matching
    /// [`Self::sweep`]). `opts` composes the usual per-call knobs;
    /// probes run cold (`opts.warm_start` is ignored — each probe's
    /// neighbours in scenario space are other fibers' probes, not its
    /// own). A fired [`CancelToken`](ptherm_par::CancelToken) leaves
    /// every unresolved fiber [`FiberBoundary::Indeterminate`].
    ///
    /// # Errors
    ///
    /// [`EnvelopeSpecError`] when the spec's interval is empty or any
    /// field is non-finite (no solves are spent on a bad spec).
    ///
    /// # Panics
    ///
    /// As [`Self::sweep`]: an explicitly spectral backend on a
    /// non-grid-coincident floorplan.
    pub fn map_envelope<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        spec: &EnvelopeSpec,
        opts: RunOptions<'_, Arc<ThermalOperator>>,
    ) -> Result<EnvelopeReport, EnvelopeSpecError> {
        for (field, value) in [
            ("lo", spec.lo),
            ("hi", spec.hi),
            ("tolerance", spec.tolerance),
        ] {
            if !value.is_finite() {
                return Err(EnvelopeSpecError::NonFinite { field, value });
            }
        }
        if spec.lo > spec.hi {
            return Err(EnvelopeSpecError::EmptyInterval {
                lo: spec.lo,
                hi: spec.hi,
            });
        }
        if spec.tolerance <= 0.0 {
            return Err(EnvelopeSpecError::BadTolerance {
                tolerance: spec.tolerance,
            });
        }

        let sink_k = self.solver().floorplan().geometry().sink_temperature;
        let axis = spec.axis;
        // The fiber family: every combination of the non-swept axes, in
        // grid enumeration order. The swept axis contributes exactly
        // one template entry (overwritten per probe below).
        let one = [spec.lo];
        let default_ambient = [sink_k];
        let vdd_axis: &[f64] = match axis {
            EnvelopeAxis::VddScale => &one,
            _ => grid.vdd_scale_values(),
        };
        let act_axis: &[f64] = match axis {
            EnvelopeAxis::Activity => &one,
            _ => grid.activity_values(),
        };
        let amb_axis: &[f64] = match axis {
            EnvelopeAxis::AmbientK => &one,
            _ => grid.ambient_values().unwrap_or(&default_ambient),
        };
        let mut templates: Vec<Scenario> = Vec::new();
        for tech_index in 0..grid.technologies().len() {
            for &ambient_k in amb_axis {
                for &activity in act_axis {
                    for &vdd_scale in vdd_axis {
                        let mut s = Scenario {
                            vdd_scale,
                            activity,
                            ambient_k,
                            tech_index,
                        };
                        axis.write(&mut s, spec.lo);
                        templates.push(s);
                    }
                }
            }
        }

        let width = spec.hi - spec.lo;
        // Spec validation guarantees hi >= lo, so a degenerate
        // interval subtracts to exactly +0.0 — bit identity, not an
        // epsilon question.
        let zero_width = width.to_bits() == 0;
        let points_per_fiber = if zero_width {
            1
        } else {
            (width / spec.tolerance).ceil() as usize + 1
        };
        let exhaustive_solves = templates.len() * points_per_fiber;

        let mut solves = 0usize;
        let mut states: Vec<FiberState> = Vec::with_capacity(templates.len());

        if zero_width {
            // Zero-width interval: one probe classifies each fiber.
            let probes: Vec<(usize, Scenario)> = templates.iter().cloned().enumerate().collect();
            let outcomes = self.solve_probes(grid, model, &probes, opts);
            solves += probes.len();
            for outcome in &outcomes {
                states.push(FiberState::Done(match outcome {
                    SweepOutcome::Converged { .. } => FiberBoundary::AllConverged,
                    SweepOutcome::Runaway { .. } => FiberBoundary::AllRunaway,
                    _ => FiberBoundary::Indeterminate,
                }));
            }
        } else {
            // Endpoint probes: both ends of every fiber in one batch.
            let mut probes: Vec<(usize, Scenario)> = Vec::with_capacity(2 * templates.len());
            for (fiber, template) in templates.iter().enumerate() {
                probes.push((fiber, template.clone()));
            }
            let lo_count = probes.len();
            for (fiber, template) in templates.iter().enumerate() {
                probes.push((fiber, template.clone()));
            }
            for (i, (_, s)) in probes.iter_mut().enumerate() {
                let value = if i < lo_count { spec.lo } else { spec.hi };
                axis.write(s, value);
            }
            let outcomes = self.solve_probes(grid, model, &probes, opts);
            solves += probes.len();
            for fiber in 0..templates.len() {
                let lo_out = &outcomes[fiber];
                let hi_out = &outcomes[lo_count + fiber];
                use SweepOutcome::{Converged, Runaway};
                states.push(match (lo_out, hi_out) {
                    (Converged { .. }, Runaway { .. }) => FiberState::Bisecting {
                        lo: spec.lo,
                        hi: spec.hi,
                    },
                    (Converged { .. }, Converged { .. }) => {
                        FiberState::Done(FiberBoundary::AllConverged)
                    }
                    (Runaway { .. }, Runaway { .. }) => FiberState::Done(FiberBoundary::AllRunaway),
                    (Runaway { .. }, Converged { .. }) => {
                        FiberState::Done(FiberBoundary::NonMonotone)
                    }
                    _ => FiberState::Done(FiberBoundary::Indeterminate),
                });
            }
        }

        // Wavefront bisection: one midpoint per unresolved fiber per
        // round, all rounds' probes batched through the same Picard
        // driver. Every fiber halves its bracket each round, so the
        // whole map takes ⌈log₂(width/tol)⌉ rounds.
        loop {
            let mut probes: Vec<(usize, Scenario)> = Vec::new();
            for (fiber, state) in states.iter_mut().enumerate() {
                if let FiberState::Bisecting { lo, hi } = state {
                    if *hi - *lo <= spec.tolerance {
                        *state = FiberState::Done(FiberBoundary::Bracketed {
                            converged: *lo,
                            runaway: *hi,
                        });
                        continue;
                    }
                    let mid = 0.5 * (*lo + *hi);
                    // Midpoint collapse onto an endpoint means the
                    // bracket is at floating-point resolution — finer
                    // than any positive tolerance reachable here.
                    if mid <= *lo || mid >= *hi {
                        *state = FiberState::Done(FiberBoundary::Bracketed {
                            converged: *lo,
                            runaway: *hi,
                        });
                        continue;
                    }
                    let mut s = templates[fiber].clone();
                    axis.write(&mut s, mid);
                    probes.push((fiber, s));
                }
            }
            if probes.is_empty() {
                break;
            }
            let outcomes = self.solve_probes(grid, model, &probes, opts);
            solves += probes.len();
            for ((fiber, probe), outcome) in probes.iter().zip(&outcomes) {
                let FiberState::Bisecting { lo, hi } = &mut states[*fiber] else {
                    continue;
                };
                let mid = match axis {
                    EnvelopeAxis::VddScale => probe.vdd_scale,
                    EnvelopeAxis::Activity => probe.activity,
                    EnvelopeAxis::AmbientK => probe.ambient_k,
                };
                match outcome {
                    SweepOutcome::Converged { .. } => *lo = mid,
                    SweepOutcome::Runaway { .. } => *hi = mid,
                    _ => states[*fiber] = FiberState::Done(FiberBoundary::Indeterminate),
                }
            }
        }

        let fibers = templates
            .into_iter()
            .zip(states)
            .map(|(scenario, state)| EnvelopeFiber {
                scenario,
                boundary: match state {
                    FiberState::Done(boundary) => boundary,
                    // Unreachable by construction (the loop above only
                    // exits with every state Done), but a typed value
                    // beats a panic in a worker-facing API.
                    FiberState::Bisecting { lo, hi } => FiberBoundary::Bracketed {
                        converged: lo,
                        runaway: hi,
                    },
                },
            })
            .collect();
        Ok(EnvelopeReport {
            axis,
            tolerance: spec.tolerance,
            fibers,
            solves,
            exhaustive_solves,
        })
    }

    /// Runs one wavefront's probes through the batched Picard driver,
    /// returning outcomes in probe order.
    fn solve_probes<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        probes: &[(usize, Scenario)],
        opts: RunOptions<'_, Arc<ThermalOperator>>,
    ) -> Vec<SweepOutcome> {
        let techs = grid.technologies();
        let report = self.run_batched(
            probes.len(),
            |id| probes[id].1.ambient_k,
            || {
                Box::new(FnBatchPower::new(|id: usize, block: usize, t: f64| {
                    let s = &probes[id].1;
                    model.block_power(s, &techs[s.tech_index], block, t)
                }))
            },
            opts.cancel,
            opts.operator,
            opts.backend,
            WarmMode::Cold,
        );
        report.outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::Floorplan;
    use ptherm_par::CancelToken;
    use ptherm_tech::Technology;

    fn engine() -> SweepEngine {
        // Bisection probes land ever closer to the boundary, where
        // Picard slows critically; a raised iteration budget keeps
        // near-boundary probes classifiable instead of Indeterminate.
        SweepEngine::new(Floorplan::paper_three_blocks())
            .threads(2)
            .configure(|s| s.max_iterations = 2000)
    }

    fn spec(lo: f64, hi: f64, tol: f64) -> EnvelopeSpec {
        EnvelopeSpec {
            axis: EnvelopeAxis::VddScale,
            lo,
            hi,
            tolerance: tol,
        }
    }

    /// Activity × ambient fiber family (the Vdd axis values are
    /// ignored by a Vdd-axis envelope).
    fn fiber_grid() -> ScenarioGrid {
        ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .activities(vec![0.5, 1.0])
            .ambients_k(vec![300.0, 330.0])
    }

    #[test]
    fn rejects_bad_specs_with_typed_errors() {
        let engine = engine();
        let grid = fiber_grid();
        let power = engine.uniform_tech_power(1.0, 0.1);
        assert_eq!(
            engine.map_envelope(&grid, &power, &spec(2.0, 1.0, 0.1), RunOptions::new()),
            Err(EnvelopeSpecError::EmptyInterval { lo: 2.0, hi: 1.0 })
        );
        assert_eq!(
            engine.map_envelope(&grid, &power, &spec(1.0, 2.0, 0.0), RunOptions::new()),
            Err(EnvelopeSpecError::BadTolerance { tolerance: 0.0 })
        );
        let bad = engine.map_envelope(&grid, &power, &spec(f64::NAN, 2.0, 0.1), RunOptions::new());
        assert!(matches!(
            bad,
            Err(EnvelopeSpecError::NonFinite { field: "lo", .. })
        ));
    }

    #[test]
    fn brackets_the_runaway_boundary_on_every_monotone_fiber() {
        let engine = engine();
        let grid = fiber_grid();
        let power = engine.uniform_tech_power(1.0, 0.1);
        let report = engine
            .map_envelope(&grid, &power, &spec(0.5, 4.0, 0.01), RunOptions::new())
            .unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report.bracketed_count(), 4, "{:?}", report.fibers);
        for fiber in &report.fibers {
            let FiberBoundary::Bracketed { converged, runaway } = &fiber.boundary else {
                panic!("expected bracket, got {:?}", fiber.boundary);
            };
            assert!(runaway - converged <= 0.01 + 1e-12);
            assert!(*converged >= 0.5 && *runaway <= 4.0);
        }
        assert!(
            report.solves < report.exhaustive_solves / 4,
            "bisection spent {} of exhaustive {}",
            report.solves,
            report.exhaustive_solves
        );
    }

    #[test]
    fn brackets_agree_with_an_exhaustive_fine_grid_oracle() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).activities(vec![1.0]);
        let power = engine.uniform_tech_power(1.0, 0.1);
        let (lo, hi, tol) = (0.5, 4.0, 0.05);
        let report = engine
            .map_envelope(&grid, &power, &spec(lo, hi, tol), RunOptions::new())
            .unwrap();
        let FiberBoundary::Bracketed { converged, runaway } = report.fibers[0].boundary else {
            panic!("expected bracket, got {:?}", report.fibers[0].boundary);
        };
        // Exhaustive oracle: scan the interval at the same resolution;
        // the last converged and first runaway grid points must agree
        // with the bracket on both sides.
        let steps = ((hi - lo) / tol).ceil() as usize;
        let values: Vec<f64> = (0..=steps)
            .map(|i| lo + (hi - lo) * i as f64 / steps as f64)
            .collect();
        let scan = engine.run(
            &ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(values.clone()),
            &power,
        );
        let last_converged = values
            .iter()
            .zip(&scan.outcomes)
            .filter(|(_, o)| matches!(o, SweepOutcome::Converged { .. }))
            .map(|(v, _)| *v)
            .next_back()
            .unwrap();
        let first_runaway = values
            .iter()
            .zip(&scan.outcomes)
            .find(|(_, o)| matches!(o, SweepOutcome::Runaway { .. }))
            .map(|(v, _)| *v)
            .unwrap();
        // Grid step and bracket tolerance are both `tol`, so the
        // oracle's boundary points and the bisected bracket can differ
        // by at most one step on each side.
        assert!(
            (converged - last_converged).abs() <= tol + 1e-12,
            "converged side: bisected {converged} vs oracle {last_converged}"
        );
        assert!(
            (runaway - first_runaway).abs() <= tol + 1e-12,
            "runaway side: bisected {runaway} vs oracle {first_runaway}"
        );
    }

    #[test]
    fn all_converged_and_all_runaway_axes_classify_without_bisection() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).activities(vec![0.5, 1.0]);
        let power = engine.uniform_tech_power(1.0, 0.1);
        let calm = engine
            .map_envelope(&grid, &power, &spec(0.1, 0.5, 0.01), RunOptions::new())
            .unwrap();
        assert!(calm
            .fibers
            .iter()
            .all(|f| f.boundary == FiberBoundary::AllConverged));
        assert_eq!(calm.solves, 4, "two endpoint probes per fiber, no rounds");
        let hot = engine
            .map_envelope(&grid, &power, &spec(8.0, 9.0, 0.01), RunOptions::new())
            .unwrap();
        assert!(hot
            .fibers
            .iter()
            .all(|f| f.boundary == FiberBoundary::AllRunaway));
        assert_eq!(hot.solves, 4);
    }

    #[test]
    fn zero_width_interval_probes_once_per_fiber() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).activities(vec![0.5, 1.0]);
        let power = engine.uniform_tech_power(1.0, 0.1);
        let report = engine
            .map_envelope(&grid, &power, &spec(1.0, 1.0, 0.01), RunOptions::new())
            .unwrap();
        assert_eq!(report.len(), 2);
        assert_eq!(report.solves, 2);
        assert_eq!(report.exhaustive_solves, 2);
        assert!(report
            .fibers
            .iter()
            .all(|f| f.boundary == FiberBoundary::AllConverged));
    }

    #[test]
    fn non_monotone_fiber_returns_a_typed_diagnostic_not_a_bracket() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]);
        // A power law that *decreases* with vdd_scale: runaway at the
        // low end, converged at the high end — upside down relative to
        // the monotone assumption.
        let power = |s: &Scenario, _tech: &Technology, _block: usize, _t: f64| -> f64 {
            2.0 / (s.vdd_scale * s.vdd_scale)
        };
        let report = engine
            .map_envelope(&grid, &power, &spec(0.2, 5.0, 0.01), RunOptions::new())
            .unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report.fibers[0].boundary, FiberBoundary::NonMonotone);
        assert_eq!(report.solves, 2, "no bisection rounds on a refused fiber");
    }

    #[test]
    fn cancelled_probes_surface_as_indeterminate_fibers() {
        let engine = engine();
        let grid = fiber_grid();
        let power = engine.uniform_tech_power(1.0, 0.1);
        let token = CancelToken::new();
        token.cancel();
        let report = engine
            .map_envelope(
                &grid,
                &power,
                &spec(0.5, 4.0, 0.01),
                RunOptions::new().cancel(&token),
            )
            .unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report.resolved_count(), 0);
        assert!(report
            .fibers
            .iter()
            .all(|f| f.boundary == FiberBoundary::Indeterminate));
    }

    #[test]
    fn fiber_count_is_the_product_of_the_other_axes() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .vdd_scales(vec![0.9, 1.0, 1.1])
            .activities(vec![0.25, 0.5, 1.0])
            .ambients_k(vec![300.0, 330.0]);
        let power = engine.uniform_tech_power(1.0, 0.1);
        // Vdd axis swept: fibers = activities × ambients (the grid's
        // three Vdd values are ignored).
        let report = engine
            .map_envelope(&grid, &power, &spec(0.5, 4.0, 0.1), RunOptions::new())
            .unwrap();
        assert_eq!(report.len(), 6);
        // Activity axis swept: fibers = vdds × ambients.
        let report = engine
            .map_envelope(
                &grid,
                &power,
                &EnvelopeSpec {
                    axis: EnvelopeAxis::Activity,
                    lo: 0.1,
                    hi: 8.0,
                    tolerance: 0.1,
                },
                RunOptions::new(),
            )
            .unwrap();
        assert_eq!(report.len(), 6);
    }
}
