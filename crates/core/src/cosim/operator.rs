//! The precomputed thermal influence operator and the reusable solve
//! workspace — the batching structure behind the sweep engine.
//!
//! Eq. 21 is **linear in the block powers**: the temperature rise at any
//! point is a power-weighted sum of per-block kernels (Eq. 20 with the
//! method of images), and the kernels depend only on floorplan geometry.
//! So the whole block-centre thermal solve collapses to one `n × n`
//! matrix — the *thermal influence matrix* `R`, with `R[i][j]` the rise at
//! block `i`'s centre per watt dissipated in block `j` — computed **once
//! per floorplan** and reused across every power vector, every Picard
//! iteration and every scenario of a sweep (the structure Kemper et al.'s
//! "Ultrafast Temperature Profile Calculation" exploits, applied to the
//! DATE'05 closed forms):
//!
//! ```text
//! T_i = T_sink + Σ_j R[i][j] · P_j          (Eq. 21, factored)
//! ```
//!
//! Building `R` does the expensive work (image-lattice expansion and
//! `O(n² · images)` kernel evaluations); afterwards each thermal solve is
//! a single `O(n²)` matrix-vector product with **zero allocation** via
//! [`Matrix::mul_vec_into`]. See `docs/EQUATIONS.md` for the
//! paper-equation map.

use crate::thermal::images::expand_images_iter;
use crate::thermal::profile::BlockKernel;
use ptherm_floorplan::Floorplan;
use ptherm_math::Matrix;

/// Hottest value of a temperature slice; `None` for an empty slice. The
/// one max-reduction every result type shares.
pub(crate) fn max_temperature(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

/// Precomputed, immutable block-centre thermal operator of one floorplan.
///
/// Shareable across threads (`&ThermalOperator` is `Send + Sync`); the
/// sweep engine builds one and fans thousands of scenario solves over it.
///
/// # Example
///
/// ```
/// use ptherm_core::cosim::ThermalOperator;
/// use ptherm_floorplan::Floorplan;
///
/// let fp = Floorplan::paper_three_blocks();
/// let op = ThermalOperator::new(&fp);
/// // Same powers as the floorplan's own assignment -> same temperatures
/// // as a one-shot ThermalModel solve (within a few ULP).
/// let t = op.temperatures(&[0.35, 0.30, 0.25]);
/// assert!(t.iter().all(|&ti| ti > 300.0));
/// ```
#[derive(Debug, Clone)]
pub struct ThermalOperator {
    /// `n × n` influence matrix, K/W.
    influence: Matrix,
    /// Sink (ambient) temperature the floorplan was built with, K.
    sink_temperature: f64,
    lateral_order: usize,
    z_order: usize,
    /// Content fingerprint: floorplan geometry × image orders.
    fingerprint: u64,
}

/// Fingerprint of the operator a build would produce: the floorplan's
/// geometry fingerprint mixed with the image orders — everything the
/// deterministic build reads. Computable **without** building, which is
/// what lets a cache decide hit/miss before paying for assembly.
pub fn operator_fingerprint(floorplan: &Floorplan, lateral_order: usize, z_order: usize) -> u64 {
    let mut f = ptherm_floorplan::fingerprint::Fingerprinter::new("ptherm.operator.v1");
    f.write_u64(floorplan.geometry_fingerprint());
    f.write_u64(lateral_order as u64);
    f.write_u64(z_order as u64);
    f.finish()
}

impl ThermalOperator {
    /// Builds the operator with the workspace accuracy defaults (lateral
    /// image order 2, depth series order 9) — matching
    /// [`ThermalModel::new`](crate::thermal::ThermalModel::new).
    pub fn new(floorplan: &Floorplan) -> Self {
        Self::with_image_orders(floorplan, 2, 9)
    }

    /// Builds the operator with an explicit image configuration (see
    /// [`ThermalModel::with_image_orders`](crate::thermal::ThermalModel::with_image_orders))
    /// on one worker per available CPU.
    ///
    /// Block powers recorded in `floorplan` are ignored: the operator is
    /// geometry-only and applies to any power vector.
    pub fn with_image_orders(floorplan: &Floorplan, lateral_order: usize, z_order: usize) -> Self {
        Self::with_image_orders_threaded(
            floorplan,
            lateral_order,
            z_order,
            ptherm_par::default_threads(),
        )
    }

    /// [`Self::with_image_orders`] with an explicit worker count.
    ///
    /// The build is embarrassingly parallel and allocation-free per
    /// entry: each worker owns a disjoint run of influence-matrix rows,
    /// and every `(target, source)` entry streams the source's image
    /// lattice through [`expand_images_iter`] — no per-block image `Vec`
    /// exists. Every entry is computed identically regardless of the
    /// worker count, so the result is bit-identical from 1 to N threads.
    pub fn with_image_orders_threaded(
        floorplan: &Floorplan,
        lateral_order: usize,
        z_order: usize,
        threads: usize,
    ) -> Self {
        let g = floorplan.geometry();
        let blocks = floorplan.blocks();
        let n = blocks.len();
        // Thread spawn/join costs tens of microseconds; tiny floorplans
        // (one-shot `ElectroThermalSolver::solve` calls on a handful of
        // blocks) build faster inline than fanned out.
        let threads = if n < 8 { 1 } else { threads };
        // Unit-power kernels, hoisted once: Eq. 20 is linear in P, so the
        // per-watt kernel of each source serves every target row.
        let kernels: Vec<BlockKernel> = blocks
            .iter()
            .map(|b| BlockKernel::for_block(b, g.conductivity, 1.0))
            .collect();
        let fingerprint = operator_fingerprint(floorplan, lateral_order, z_order);
        let mut influence = Matrix::zeros(n, n);
        if n == 0 {
            return ThermalOperator {
                influence,
                sink_temperature: g.sink_temperature,
                lateral_order,
                z_order,
                fingerprint,
            };
        }
        ptherm_par::par_partition_mut(threads, influence.as_mut_slice(), n, |first_row, rows| {
            for (di, row) in rows.chunks_mut(n).enumerate() {
                let target = &blocks[first_row + di];
                for ((entry, source), kernel) in row.iter_mut().zip(blocks).zip(&kernels) {
                    let mut rise = 0.0;
                    for img in expand_images_iter(
                        source.cx,
                        source.cy,
                        g.width,
                        g.length,
                        g.thickness,
                        lateral_order,
                        z_order,
                    ) {
                        rise += img.sign
                            * kernel.rise(target.cx - img.cx, target.cy - img.cy, img.depth);
                    }
                    *entry = rise;
                }
            }
        });
        ThermalOperator {
            influence,
            sink_temperature: g.sink_temperature,
            lateral_order,
            z_order,
            fingerprint,
        }
    }

    /// Stable content fingerprint of this operator (see
    /// [`operator_fingerprint`]): equal fingerprints imply bit-identical
    /// influence matrices, the contract the fleet cache relies on.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of blocks the operator couples.
    pub fn len(&self) -> usize {
        self.influence.rows()
    }

    /// True for an empty floorplan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sink temperature the source floorplan declared, K. Individual
    /// solves may override it (ambient is a sweep axis).
    pub fn sink_temperature(&self) -> f64 {
        self.sink_temperature
    }

    /// Lateral image order the operator was built with.
    pub fn lateral_order(&self) -> usize {
        self.lateral_order
    }

    /// Depth-series order the operator was built with.
    pub fn z_order(&self) -> usize {
        self.z_order
    }

    /// The influence matrix itself, K/W.
    pub fn influence(&self) -> &Matrix {
        &self.influence
    }

    /// Block-centre temperature rises for one power vector, written into
    /// `out` with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `powers` or `out` is not of length [`Self::len`].
    pub fn temperature_rises_into(&self, powers: &[f64], out: &mut [f64]) {
        self.influence.mul_vec_into(powers, out);
    }

    /// Absolute block-centre temperatures above `sink_k`, written into
    /// `out` with zero allocation.
    ///
    /// # Panics
    ///
    /// Panics if `powers` or `out` is not of length [`Self::len`].
    pub fn temperatures_with_sink_into(&self, powers: &[f64], sink_k: f64, out: &mut [f64]) {
        self.temperature_rises_into(powers, out);
        for t in out.iter_mut() {
            *t += sink_k;
        }
    }

    /// Convenience allocating form of [`Self::temperatures_with_sink_into`]
    /// at the floorplan's own sink temperature.
    pub fn temperatures(&self, powers: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        self.temperatures_with_sink_into(powers, self.sink_temperature, &mut out);
        out
    }
}

/// Reusable per-solve scratch state for the Picard iteration.
///
/// One workspace per worker thread makes the steady-state loop allocation
/// free: every buffer is sized on first use and reused afterwards
/// (`Vec::clear` keeps capacity). The workspace retains the last solve's
/// state, which [`CosimResult`](crate::cosim::CosimResult) snapshots.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Block temperatures, K (iterate of the fixed point).
    pub(crate) temperatures: Vec<f64>,
    /// Block powers at the current temperatures, W.
    pub(crate) powers: Vec<f64>,
    /// Fresh thermal solve output (rises, then absolute temperatures), K.
    pub(crate) fresh: Vec<f64>,
    /// Max block-temperature change per iteration, K.
    pub(crate) history: Vec<f64>,
    /// Iterations the last solve used.
    pub(crate) iterations: usize,
}

impl Workspace {
    /// An empty workspace; buffers size themselves on first solve.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Clears state and sizes every buffer for `n` blocks starting from
    /// `sink_k`, keeping existing capacity.
    pub(crate) fn reset(&mut self, n: usize, sink_k: f64) {
        self.temperatures.clear();
        self.temperatures.resize(n, sink_k);
        self.powers.clear();
        self.powers.resize(n, 0.0);
        self.fresh.clear();
        self.fresh.resize(n, 0.0);
        self.history.clear();
        self.iterations = 0;
    }

    /// Block temperatures after the last solve, K.
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Block powers after the last solve, W.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// Per-iteration max temperature change of the last solve, K.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Iterations the last solve used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Hottest block temperature of the last solve, K.
    pub fn peak_temperature(&self) -> f64 {
        max_temperature(&self.temperatures).unwrap_or(f64::NEG_INFINITY)
    }

    /// Total power of the last solve, W.
    pub fn total_power(&self) -> f64 {
        self.powers.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::ThermalModel;

    #[test]
    fn operator_matches_thermal_model_on_the_paper_floorplan() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let direct = ThermalModel::new(&fp).block_center_temperatures();
        let powers: Vec<f64> = fp.blocks().iter().map(|b| b.power).collect();
        let via_op = op.temperatures(&powers);
        for (a, b) in via_op.iter().zip(&direct) {
            // Same closed forms, slightly different summation order.
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn operator_is_linear_in_power() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let t1 = op.temperatures(&[0.1, 0.2, 0.3]);
        let t2 = op.temperatures(&[0.2, 0.4, 0.6]);
        for (a, b) in t1.iter().zip(&t2) {
            let (r1, r2) = (a - 300.0, b - 300.0);
            assert!((r2 - 2.0 * r1).abs() < 1e-12 * r2.abs().max(1.0));
        }
    }

    #[test]
    fn operator_ignores_recorded_powers() {
        let fp = Floorplan::paper_three_blocks();
        let mut scaled = fp.clone();
        for i in 0..scaled.blocks().len() {
            scaled.set_power(i, 123.0);
        }
        let a = ThermalOperator::new(&fp);
        let b = ThermalOperator::new(&scaled);
        assert_eq!(a.influence().as_slice(), b.influence().as_slice());
    }

    #[test]
    fn fingerprint_keys_geometry_and_orders_not_powers() {
        let fp = Floorplan::paper_three_blocks();
        let mut repowered = fp.clone();
        repowered.set_power(0, 42.0);
        // Powers are invisible to the operator and to its fingerprint.
        assert_eq!(
            ThermalOperator::new(&fp).fingerprint(),
            ThermalOperator::new(&repowered).fingerprint()
        );
        // Image orders are part of the key.
        assert_ne!(
            ThermalOperator::with_image_orders(&fp, 2, 9).fingerprint(),
            ThermalOperator::with_image_orders(&fp, 2, 5).fingerprint()
        );
        // The standalone predictor matches the built operator.
        assert_eq!(
            operator_fingerprint(&fp, 2, 9),
            ThermalOperator::with_image_orders(&fp, 2, 9).fingerprint()
        );
    }

    #[test]
    fn ambient_shifts_are_additive() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let powers = [0.35, 0.30, 0.25];
        let mut at300 = vec![0.0; 3];
        let mut at350 = vec![0.0; 3];
        op.temperatures_with_sink_into(&powers, 300.0, &mut at300);
        op.temperatures_with_sink_into(&powers, 350.0, &mut at350);
        for (a, b) in at300.iter().zip(&at350) {
            assert!((b - a - 50.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_dominates_off_diagonal() {
        // A block heats itself more than it heats its neighbours.
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let m = op.influence();
        for i in 0..op.len() {
            for j in 0..op.len() {
                if i != j {
                    assert!(m[(i, i)] > m[(i, j)], "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn threaded_build_is_bit_identical_to_serial() {
        let fp = ptherm_floorplan::generator::tiled(
            ptherm_floorplan::ChipGeometry::paper_1mm(),
            3,
            3,
            0.1,
            0.4,
            7,
        )
        .expect("valid tiling");
        let serial = ThermalOperator::with_image_orders_threaded(&fp, 2, 5, 1);
        for threads in [2, 4, 16] {
            let parallel = ThermalOperator::with_image_orders_threaded(&fp, 2, 5, threads);
            assert_eq!(
                serial.influence().as_slice(),
                parallel.influence().as_slice(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_floorplan_builds_an_empty_operator() {
        let fp = Floorplan::new(ptherm_floorplan::ChipGeometry::paper_1mm(), Vec::new())
            .expect("empty plan");
        let op = ThermalOperator::new(&fp);
        assert!(op.is_empty());
        assert_eq!(op.len(), 0);
        let out: Vec<f64> = op.temperatures(&[]);
        assert!(out.is_empty());
    }

    #[test]
    fn workspace_buffers_retain_capacity_across_solves() {
        let mut ws = Workspace::new();
        ws.reset(8, 300.0);
        ws.history.extend([1.0, 0.5, 0.1]);
        let cap = ws.temperatures.capacity();
        ws.reset(8, 310.0);
        assert_eq!(ws.temperatures.capacity(), cap);
        assert!(ws.history.is_empty());
        assert!(ws.temperatures.iter().all(|&t| t == 310.0));
    }
}
