//! Batched, parallel electro-thermal sweeps over scenario grids.
//!
//! The paper's pitch is that one concurrent estimate costs microseconds;
//! the production question is throughput over *many* estimates — supply
//! corners × activity levels × ambient temperatures × technology nodes
//! for one floorplan. Two structural facts make that cheap:
//!
//! 1. the thermal influence operator is fixed per floorplan — the
//!    [`ThermalOperator`] is computed **once** and shared read-only by
//!    every scenario (and every thread),
//! 2. each scenario solve is independent — worker threads pull scenario
//!    indices from one shared cursor, and
//! 3. the per-iteration work is **batchable** — [`SweepEngine::run`]
//!    advances [`SweepEngine::batch_lanes`] scenarios per Picard step
//!    through the GEMM-batched [`BatchedSolver`], refilling lanes as
//!    scenarios resolve, with the power law's exponentials evaluated in
//!    batch ([`ScaledTechPower`]'s vectorized adapter).
//!
//! [`SweepEngine`] packages all three. Batched outcomes match the
//! per-scenario oracle ([`SweepEngine::run_per_scenario`], the exact
//! [`ElectroThermalSolver::solve_with_ambient`] path) within the ULP
//! contract documented in [`crate::cosim::batch`] and
//! `docs/PERFORMANCE.md` — same outcome kinds, same iteration counts,
//! temperatures to ~1e-9 K — asserted by this module's tests, the
//! workspace property suite and the `sweep` benchmark. Results never
//! depend on the thread count or batch width.
//!
//! # Example: a Vdd × activity grid on the paper floorplan
//!
//! ```
//! use ptherm_core::cosim::sweep::{ScenarioGrid, SweepEngine};
//! use ptherm_floorplan::Floorplan;
//! use ptherm_tech::Technology;
//!
//! let engine = SweepEngine::new(Floorplan::paper_three_blocks());
//! let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
//!     .vdd_scales(vec![0.9, 1.0, 1.1])
//!     .activities(vec![0.5, 1.0])
//!     .ambients_k(vec![300.0, 350.0]);
//! let model = engine.uniform_tech_power(0.25, 0.02);
//! let report = engine.run(&grid, &model);
//! assert_eq!(report.len(), 12);
//! assert!(report.converged_count() > 0);
//! ```

use crate::cosim::batch::{BatchPowerModel, BatchWorkspace, BatchedSolver, LaneStart};
use crate::cosim::spectral::{
    infer_grid, spectral_operator_fingerprint, SpectralBatchedSolver, SpectralGridError,
    SpectralOperator, SpectralScratch, DEFAULT_REFINEMENT_TOLERANCE,
};
use crate::cosim::transient::{
    TransientBatchedSolver, TransientConfig, TransientError, TransientLane, TransientOperator,
    TransientOutcome, TransientReport, TransientRk4Reference, TransientWorkspace,
};
use crate::cosim::{CosimError, ElectroThermalSolver, ThermalOperator, Workspace};
use crate::thermal::capacitance::silicon_block_capacitances;
use crate::thermal::map::{map_operator_fingerprint, MapOperator, MapWorkspace};
use ptherm_floorplan::Floorplan;
use ptherm_math::{expv, MultiVec};
use ptherm_par::CancelToken;
use ptherm_tech::{Polarity, Technology};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// One point of a sweep: the knobs the paper's models expose per run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Supply scale relative to the technology's nominal `V_DD`.
    pub vdd_scale: f64,
    /// Switching-activity multiplier on the baseline dynamic power.
    pub activity: f64,
    /// Ambient (heat-sink) temperature, K.
    pub ambient_k: f64,
    /// Index into the grid's technology list.
    pub tech_index: usize,
}

/// Cartesian scenario grid: Vdd scales × activities × ambients × nodes.
///
/// Scenarios enumerate in row-major order with the technology axis
/// outermost and the Vdd axis innermost.
///
/// Degenerate axes are legal: a builder handed an **empty** axis yields
/// an empty grid — zero scenarios, an empty iterator and a clean empty
/// [`SweepReport`] — never a mixed-radix decode panic. (An *unset*
/// ambient axis is different: it means "one point at the engine's
/// default ambient", see [`Self::ambients_k`].)
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    technologies: Vec<Technology>,
    vdd_scales: Vec<f64>,
    activities: Vec<f64>,
    /// `None` = axis not set (single point at the default ambient);
    /// `Some(vec![])` = explicitly empty axis (empty grid).
    ambients_k: Option<Vec<f64>>,
}

impl ScenarioGrid {
    /// Grid over `technologies` with every other axis at its neutral
    /// single point: scale 1, activity 1, and — until
    /// [`Self::ambients_k`] is called — the ambient the floorplan itself
    /// declares (its sink temperature), so an engine sweep with no
    /// ambient axis matches one-shot solves on the same floorplan.
    ///
    /// An empty technology list is allowed and produces an empty grid.
    pub fn new(technologies: Vec<Technology>) -> Self {
        ScenarioGrid {
            technologies,
            vdd_scales: vec![1.0],
            activities: vec![1.0],
            ambients_k: None,
        }
    }

    /// Replaces the supply-scale axis (empty ⇒ empty grid).
    #[must_use]
    pub fn vdd_scales(mut self, scales: Vec<f64>) -> Self {
        self.vdd_scales = scales;
        self
    }

    /// Replaces the activity axis (empty ⇒ empty grid).
    #[must_use]
    pub fn activities(mut self, activities: Vec<f64>) -> Self {
        self.activities = activities;
        self
    }

    /// Replaces the ambient-temperature axis. Setting an explicitly
    /// empty axis empties the grid; *not* calling this leaves a single
    /// implicit point at the sweep's default ambient.
    #[must_use]
    pub fn ambients_k(mut self, ambients: Vec<f64>) -> Self {
        self.ambients_k = Some(ambients);
        self
    }

    /// The technology list scenarios index into.
    pub fn technologies(&self) -> &[Technology] {
        &self.technologies
    }

    /// The supply-scale axis values.
    pub fn vdd_scale_values(&self) -> &[f64] {
        &self.vdd_scales
    }

    /// The activity axis values.
    pub fn activity_values(&self) -> &[f64] {
        &self.activities
    }

    /// The ambient axis values, or `None` when the axis was never set
    /// (one implicit point at the sweep's default ambient).
    pub fn ambient_values(&self) -> Option<&[f64]> {
        self.ambients_k.as_deref()
    }

    /// Width of the ambient axis as enumerated (1 for the unset axis).
    fn ambient_axis_len(&self) -> usize {
        self.ambients_k.as_ref().map_or(1, Vec::len)
    }

    /// Length of the innermost non-trivial axis — the warm-start chain
    /// width. Scenarios enumerate with the Vdd axis innermost, so ids
    /// `[k·L, (k+1)·L)` form one contiguous fiber varying only that
    /// axis (every axis inside it has a single point, so the fiber's
    /// stride is 1): exactly the nearest-neighbour chains
    /// [`SweepEngine::sweep`] seeds along under warm starts. 1 when
    /// every axis is a single point (nothing to chain).
    pub(crate) fn warm_chain_len(&self) -> usize {
        for len in [
            self.vdd_scales.len(),
            self.activities.len(),
            self.ambient_axis_len(),
            self.technologies.len(),
        ] {
            if len > 1 {
                return len;
            }
        }
        1
    }

    /// Number of scenarios in the grid.
    pub fn len(&self) -> usize {
        self.technologies.len()
            * self.vdd_scales.len()
            * self.activities.len()
            * self.ambient_axis_len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scenario at position `index` of the enumeration order —
    /// random access by mixed-radix decode, no materialization.
    /// `default_ambient_k` fills the ambient axis when none was set —
    /// [`SweepEngine::run`] passes the floorplan's sink temperature.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` — in particular for **any** index
    /// into a grid with an empty axis, before any radix arithmetic runs.
    pub fn scenario(&self, index: usize, default_ambient_k: f64) -> Scenario {
        assert!(index < self.len(), "scenario index out of range");
        let nv = self.vdd_scales.len();
        let na = self.activities.len();
        let namb = self.ambient_axis_len();
        let vdd_scale = self.vdd_scales[index % nv];
        let rest = index / nv;
        let activity = self.activities[rest % na];
        let rest = rest / na;
        let ambient_k = match &self.ambients_k {
            Some(ambients) => ambients[rest % namb],
            None => default_ambient_k,
        };
        Scenario {
            vdd_scale,
            activity,
            ambient_k,
            tech_index: rest / namb,
        }
    }

    /// Lazily enumerates every scenario in order — the allocation-free
    /// form the sweep engine shards from. See [`Self::scenario`] for the
    /// `default_ambient_k` semantics.
    pub fn iter_scenarios(
        &self,
        default_ambient_k: f64,
    ) -> impl ExactSizeIterator<Item = Scenario> + '_ {
        (0..self.len()).map(move |i| self.scenario(i, default_ambient_k))
    }

    /// Materializes every scenario in enumeration order (a collected
    /// [`Self::iter_scenarios`]).
    pub fn scenarios(&self, default_ambient_k: f64) -> Vec<Scenario> {
        self.iter_scenarios(default_ambient_k).collect()
    }
}

/// Per-block power as a function of scenario and temperature — the model
/// the engine evaluates inside each Picard iteration.
pub trait ScenarioPowerModel: Sync {
    /// Power of `block` at junction temperature `temperature_k` under
    /// `scenario`, W. `tech` is the scenario's resolved technology kit.
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64;

    /// Builds the batched form of this model for one sweep worker:
    /// scenario ids map into `grid` (see [`ScenarioGrid::scenario`]) and
    /// `lanes` is the worker's batch width.
    ///
    /// The default wraps [`Self::block_power`] scalar calls — correct for
    /// every model, making the same power evaluations as the
    /// per-scenario path (the only remaining batched-vs-oracle
    /// difference is the GEMM tier's fused multiply-adds). Models whose
    /// hot loop vectorizes (like [`ScaledTechPower`], which batches its
    /// Eq. 13 exponentials through [`ptherm_math::expv`]) override this;
    /// such overrides may differ from the scalar calls at the documented
    /// ULP level.
    fn batched<'a>(
        &'a self,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Box<dyn BatchPowerModel + 'a>
    where
        Self: Sized,
    {
        Box::new(ScalarScenarioBatch {
            model: self,
            grid,
            default_ambient_k,
            lane_scenarios: vec![None; lanes],
        })
    }
}

/// Default [`BatchPowerModel`] adapter: per-lane scalar
/// [`ScenarioPowerModel::block_power`] calls, exactly the evaluations
/// the per-scenario path makes.
struct ScalarScenarioBatch<'a, M: ?Sized> {
    model: &'a M,
    grid: &'a ScenarioGrid,
    default_ambient_k: f64,
    lane_scenarios: Vec<Option<Scenario>>,
}

impl<M: ScenarioPowerModel + ?Sized> BatchPowerModel for ScalarScenarioBatch<'_, M> {
    fn begin_lane(&mut self, lane: usize, id: usize) {
        self.lane_scenarios[lane] = Some(self.grid.scenario(id, self.default_ambient_k));
    }

    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec) {
        let techs = self.grid.technologies();
        for i in 0..temps.rows() {
            for (j, s) in self.lane_scenarios.iter().enumerate() {
                if let Some(s) = s {
                    let p = self
                        .model
                        .block_power(s, &techs[s.tech_index], i, temps.get(i, j));
                    powers.set(i, j, p);
                }
            }
        }
    }

    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64> {
        let s = self.lane_scenarios.get(lane)?.as_ref()?;
        Some(
            self.model
                .block_power(s, &self.grid.technologies()[s.tech_index], block, t),
        )
    }
}

impl<F> ScenarioPowerModel for F
where
    F: Fn(&Scenario, &Technology, usize, f64) -> f64 + Sync,
{
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        self(scenario, tech, block, temperature_k)
    }
}

/// The default physical model: per-block dynamic and reference leakage
/// budgets scaled by the scenario knobs and the technology's own
/// OFF-current temperature law (the Eq. 13 exponential family).
///
/// * dynamic: `activity · vdd_scale² · P_dyn[i]` (the `α f C V²` law),
/// * static: `vdd_scale · P_leak[i] · I_off(T) / I_off(T_ref)`, where
///   `I_off` is [`Technology::nominal_off_current`] — carrying the
///   paper's exponential temperature dependence into the feedback loop.
#[derive(Debug, Clone)]
pub struct ScaledTechPower {
    /// Per-block dynamic power at activity 1 and nominal Vdd, W.
    pub dynamic_w: Vec<f64>,
    /// Per-block leakage power at `T_ref` and nominal Vdd, W.
    pub leakage_ref_w: Vec<f64>,
    /// Reference OFF currents `I_off(T_ref)` per grid technology (keyed
    /// by the parameters the computation reads, so a cache prepared for
    /// one grid cannot be silently misapplied to another), hoisted out
    /// of the Picard hot loop by [`Self::prepared_for`]; empty =
    /// compute on the fly.
    i_ref_per_tech: Vec<(IRefKey, f64)>,
}

/// The exact inputs [`Technology::nominal_off_current`] reads for the
/// reference OFF current — a cache entry is valid only for a bitwise
/// match, whatever the technology is named.
#[derive(Debug, Clone, PartialEq)]
struct IRefKey {
    w_min: f64,
    l: f64,
    i0: f64,
    n: f64,
    vt0: f64,
    k_t: f64,
    t_ref: f64,
    vdd: f64,
}

impl IRefKey {
    fn of(tech: &Technology) -> Self {
        IRefKey {
            w_min: tech.nmos.w_min,
            l: tech.nmos.l,
            i0: tech.nmos.i0,
            n: tech.nmos.n,
            vt0: tech.nmos.vt0,
            k_t: tech.nmos.k_t,
            t_ref: tech.t_ref,
            vdd: tech.vdd,
        }
    }
}

impl ScaledTechPower {
    /// Budgets proportional to block areas: the floorplan's total dynamic
    /// and leakage budgets spread by area share — the natural default when
    /// per-block netlists are not available.
    pub fn area_weighted(
        floorplan: &Floorplan,
        total_dynamic_w: f64,
        total_leakage_w: f64,
    ) -> Self {
        let total_area: f64 = floorplan.blocks().iter().map(|b| b.area()).sum();
        let share = |area: f64| {
            if total_area > 0.0 {
                area / total_area
            } else {
                0.0
            }
        };
        ScaledTechPower {
            dynamic_w: floorplan
                .blocks()
                .iter()
                .map(|b| total_dynamic_w * share(b.area()))
                .collect(),
            leakage_ref_w: floorplan
                .blocks()
                .iter()
                .map(|b| total_leakage_w * share(b.area()))
                .collect(),
            i_ref_per_tech: Vec::new(),
        }
    }

    /// Precomputes the per-technology reference OFF currents for `grid`,
    /// removing the only scenario-invariant evaluation from the Picard
    /// hot loop. Unprepared models stay correct — they just recompute
    /// `I_off(T_ref)` per call — and a cache entry is only used when the
    /// scenario technology's parameters match the ones it was computed
    /// from, so running a model prepared for one grid against another
    /// falls back to the per-call computation instead of scaling by the
    /// wrong reference.
    #[must_use]
    pub fn prepared_for(mut self, grid: &ScenarioGrid) -> Self {
        self.i_ref_per_tech = grid
            .technologies()
            .iter()
            .map(|t| {
                (
                    IRefKey::of(t),
                    t.nominal_off_current(Polarity::Nmos, t.nmos.w_min, t.t_ref),
                )
            })
            .collect();
        self
    }

    /// `I_off(T_ref)` for `scenario`'s technology: the prepared cache
    /// entry when its key matches bitwise, the fresh computation
    /// otherwise. Shared by the scalar and batched evaluation paths, so
    /// both resolve exactly the same reference current.
    pub(crate) fn reference_off_current(&self, scenario: &Scenario, tech: &Technology) -> f64 {
        match self.i_ref_per_tech.get(scenario.tech_index) {
            Some((key, i_ref)) if *key == IRefKey::of(tech) => *i_ref,
            _ => tech.nominal_off_current(Polarity::Nmos, tech.nmos.w_min, tech.t_ref),
        }
    }
}

impl ScenarioPowerModel for ScaledTechPower {
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        let dynamic =
            scenario.activity * scenario.vdd_scale * scenario.vdd_scale * self.dynamic_w[block];
        let i_ref = self.reference_off_current(scenario, tech);
        let i_t = tech.nominal_off_current(Polarity::Nmos, tech.nmos.w_min, temperature_k);
        let stat = scenario.vdd_scale * self.leakage_ref_w[block] * (i_t / i_ref);
        dynamic + stat
    }

    fn batched<'a>(
        &'a self,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Box<dyn BatchPowerModel + 'a> {
        Box::new(ScaledTechBatch::new(self, grid, default_ambient_k, lanes))
    }
}

/// Vectorized batch form of [`ScaledTechPower`].
///
/// Per lane, everything scenario-dependent but temperature-independent is
/// folded into constants when the lane is (re)loaded, so one Picard step
/// evaluates, per element,
///
/// ```text
/// P = s_dyn·P_dyn[i] + s_leak·P_leak[i] · (pre·T²·c_sq·e^{x1}·(1−e^{x2}))·c_ref
/// x1 = c_1·(V_t0 − k_T·(T − T_ref))·(1/T)        x2 = c_2·(1/T)
/// ```
///
/// with a single division (`1/T`) and both exponentials batched through
/// [`ptherm_math::expv::exp_into`]. Algebraically this is exactly the
/// Eq. 13 law [`ScaledTechPower::block_power`] evaluates; numerically it
/// departs from the scalar path in two documented ways: the constant
/// folding reassociates a handful of multiplications/divisions (≈2e-16
/// relative each) and `expv` carries ≤5e-13 relative error — together
/// ≤ ~1e-12 relative on the leakage term, the contract
/// `docs/PERFORMANCE.md` and the batch-oracle tests assert.
pub(crate) struct ScaledTechBatch<'a> {
    model: &'a ScaledTechPower,
    grid: &'a ScenarioGrid,
    default_ambient_k: f64,
    /// Scenario loaded in each lane (for the scalar refresh calls).
    lane_scenarios: Vec<Option<Scenario>>,
    /// `activity·vdd_scale²` per lane.
    s_dyn: Vec<f64>,
    /// `vdd_scale` per lane.
    s_leak: Vec<f64>,
    /// `(w_min/L)·I0` per lane.
    pre: Vec<f64>,
    /// `V_t0`, `k_T`, `T_ref` of the lane's technology.
    vt0: Vec<f64>,
    k_t: Vec<f64>,
    t_ref: Vec<f64>,
    /// `−q/(n·k_B)` per lane (folds the thermal-voltage and `n` divisions
    /// out of the exponent).
    c_1: Vec<f64>,
    /// `−V_DD·q/k_B` per lane.
    c_2: Vec<f64>,
    /// `1/T_ref²` per lane.
    c_sq: Vec<f64>,
    /// `1/I_off(T_ref)` per lane.
    c_ref: Vec<f64>,
    /// Full `n × lanes` exponent/exponential panels: batching the two
    /// `exp` sweeps into one [`expv::exp_into`] call each per Picard step
    /// amortizes the kernel's per-call overhead across the whole batch.
    x1: MultiVec,
    x2: MultiVec,
    ex1: MultiVec,
    ex2: MultiVec,
    /// Block-length scratch for the per-lane refresh.
    refresh_x: Vec<f64>,
    refresh_e: Vec<f64>,
}

/// `q/k_B`, the kelvin-per-volt slope the thermal voltage folds to.
fn charge_over_boltzmann() -> f64 {
    use ptherm_tech::constants::{BOLTZMANN, ELEMENTARY_CHARGE};
    ELEMENTARY_CHARGE / BOLTZMANN
}

impl<'a> ScaledTechBatch<'a> {
    pub(crate) fn new(
        model: &'a ScaledTechPower,
        grid: &'a ScenarioGrid,
        default_ambient_k: f64,
        lanes: usize,
    ) -> Self {
        let n = model.dynamic_w.len();
        ScaledTechBatch {
            model,
            grid,
            default_ambient_k,
            lane_scenarios: vec![None; lanes],
            s_dyn: vec![0.0; lanes],
            s_leak: vec![0.0; lanes],
            pre: vec![0.0; lanes],
            vt0: vec![0.0; lanes],
            k_t: vec![0.0; lanes],
            t_ref: vec![0.0; lanes],
            c_1: vec![0.0; lanes],
            c_2: vec![0.0; lanes],
            c_sq: vec![0.0; lanes],
            c_ref: vec![0.0; lanes],
            x1: MultiVec::zeros(n, lanes),
            x2: MultiVec::zeros(n, lanes),
            ex1: MultiVec::zeros(n, lanes),
            ex2: MultiVec::zeros(n, lanes),
            refresh_x: vec![0.0; n],
            refresh_e: vec![0.0; n],
        }
    }
}

impl BatchPowerModel for ScaledTechBatch<'_> {
    fn begin_lane(&mut self, lane: usize, id: usize) {
        let s = self.grid.scenario(id, self.default_ambient_k);
        let tech = &self.grid.technologies()[s.tech_index];
        let p = &tech.nmos;
        let q_over_k = charge_over_boltzmann();
        self.s_dyn[lane] = s.activity * s.vdd_scale * s.vdd_scale;
        self.s_leak[lane] = s.vdd_scale;
        self.pre[lane] = (p.w_min / p.l) * p.i0;
        self.vt0[lane] = p.vt0;
        self.k_t[lane] = p.k_t;
        self.t_ref[lane] = tech.t_ref;
        self.c_1[lane] = -(q_over_k / p.n);
        self.c_2[lane] = -(tech.vdd * q_over_k);
        self.c_sq[lane] = 1.0 / (tech.t_ref * tech.t_ref);
        self.c_ref[lane] = 1.0 / self.model.reference_off_current(&s, tech);
        self.lane_scenarios[lane] = Some(s);
    }

    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec) {
        let n = temps.rows();
        let lanes = temps.lanes();
        debug_assert_eq!(n, self.model.dynamic_w.len());
        // Fixed-length slice bindings hoist every bounds check out of the
        // per-element loops so they vectorize cleanly.
        let vt0 = &self.vt0[..lanes];
        let k_t = &self.k_t[..lanes];
        let t_ref = &self.t_ref[..lanes];
        let c_1 = &self.c_1[..lanes];
        let c_2 = &self.c_2[..lanes];
        // Pass 1: the Eq. 13 exponents with the divisions folded to one
        // `1/T` per element.
        for i in 0..n {
            let trow = &temps.component(i)[..lanes];
            let x1 = &mut self.x1.component_mut(i)[..lanes];
            let x2 = &mut self.x2.component_mut(i)[..lanes];
            for j in 0..lanes {
                let t = trow[j];
                let inv_t = 1.0 / t;
                let vth = vt0[j] - k_t[j] * (t - t_ref[j]);
                x1[j] = c_1[j] * vth * inv_t;
                x2[j] = c_2[j] * inv_t;
            }
        }
        // Pass 2: both exponential sweeps over the whole panel at once.
        expv::exp_into(self.x1.as_slice(), self.ex1.as_mut_slice());
        expv::exp_into(self.x2.as_slice(), self.ex2.as_mut_slice());
        // Pass 3: assemble dynamic + leakage power.
        let pre = &self.pre[..lanes];
        let c_sq = &self.c_sq[..lanes];
        let c_ref = &self.c_ref[..lanes];
        let s_dyn = &self.s_dyn[..lanes];
        let s_leak = &self.s_leak[..lanes];
        for i in 0..n {
            let trow = &temps.component(i)[..lanes];
            let e1 = &self.ex1.component(i)[..lanes];
            let e2 = &self.ex2.component(i)[..lanes];
            let dw = self.model.dynamic_w[i];
            let lw = self.model.leakage_ref_w[i];
            let prow = &mut powers.component_mut(i)[..lanes];
            for j in 0..lanes {
                let t = trow[j];
                let i_t = pre[j] * ((t * t) * c_sq[j]) * e1[j] * (1.0 - e2[j]);
                prow[j] = s_dyn[j] * dw + (s_leak[j] * lw) * (i_t * c_ref[j]);
            }
        }
    }

    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64> {
        let s = self.lane_scenarios.get(lane)?.as_ref()?;
        Some(
            self.model
                .block_power(s, &self.grid.technologies()[s.tech_index], block, t),
        )
    }

    fn refresh_lane(&mut self, lane: usize, temps: &[f64], powers: &mut [f64]) {
        // Same folded arithmetic as `fill_powers`, vectorized across the
        // blocks of this one lane; `powers` doubles as the e^{x2} scratch.
        let n = temps.len();
        {
            let x = &mut self.refresh_x[..n];
            for (x, &t) in x.iter_mut().zip(temps) {
                let vth = self.vt0[lane] - self.k_t[lane] * (t - self.t_ref[lane]);
                *x = self.c_1[lane] * vth * (1.0 / t);
            }
            expv::exp_into(x, &mut self.refresh_e[..n]);
        }
        {
            let x = &mut self.refresh_x[..n];
            for (x, &t) in x.iter_mut().zip(temps) {
                *x = self.c_2[lane] * (1.0 / t);
            }
            expv::exp_into(x, powers);
        }
        for b in 0..n {
            let t = temps[b];
            let e2v = powers[b];
            let i_t =
                self.pre[lane] * ((t * t) * self.c_sq[lane]) * self.refresh_e[b] * (1.0 - e2v);
            powers[b] = self.s_dyn[lane] * self.model.dynamic_w[b]
                + (self.s_leak[lane] * self.model.leakage_ref_w[b]) * (i_t * self.c_ref[lane]);
        }
    }
}

/// Outcome of one scenario solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// The fixed point was found.
    Converged {
        /// Block temperatures at the operating point, K.
        block_temperatures: Vec<f64>,
        /// Block powers at the operating point, W.
        block_powers: Vec<f64>,
        /// Picard iterations used.
        iterations: usize,
    },
    /// No stable operating point exists (thermal runaway).
    Runaway {
        /// Iteration at which the ceiling was crossed.
        iteration: usize,
        /// Hottest block temperature reached, K.
        temperature: f64,
    },
    /// Iteration budget exhausted.
    NotConverged {
        /// Last max block-temperature change, K.
        last_delta: f64,
    },
    /// The power model returned a non-finite or negative value.
    BadPower {
        /// Offending block.
        block: usize,
        /// Offending value.
        power: f64,
    },
    /// The solve was cancelled cooperatively (deadline or explicit
    /// [`CancelToken`]) before this scenario
    /// resolved.
    Cancelled {
        /// Picard iterations completed before cancellation (0 for
        /// scenarios never started).
        iterations: usize,
    },
}

impl SweepOutcome {
    /// True for [`SweepOutcome::Converged`].
    pub fn is_converged(&self) -> bool {
        matches!(self, SweepOutcome::Converged { .. })
    }

    /// Peak block temperature for converged points, K.
    pub fn peak_temperature(&self) -> Option<f64> {
        match self {
            SweepOutcome::Converged {
                block_temperatures, ..
            } => crate::cosim::operator::max_temperature(block_temperatures),
            _ => None,
        }
    }

    /// Total power for converged points, W.
    pub fn total_power(&self) -> Option<f64> {
        match self {
            SweepOutcome::Converged { block_powers, .. } => Some(block_powers.iter().sum()),
            _ => None,
        }
    }

    pub(crate) fn from_error(err: CosimError) -> Self {
        match err {
            CosimError::ThermalRunaway {
                iteration,
                temperature,
            } => SweepOutcome::Runaway {
                iteration,
                temperature,
            },
            CosimError::NotConverged { last_delta } => SweepOutcome::NotConverged { last_delta },
            CosimError::BadPower { block, power } => SweepOutcome::BadPower { block, power },
        }
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Failure arms delegate to CosimError so the wording lives once.
        match self {
            SweepOutcome::Converged { iterations, .. } => write!(
                f,
                "converged in {iterations} iterations (peak {:.2} K, {:.3} W)",
                self.peak_temperature().unwrap_or(f64::NAN),
                self.total_power().unwrap_or(f64::NAN)
            ),
            SweepOutcome::Runaway {
                iteration,
                temperature,
            } => CosimError::ThermalRunaway {
                iteration: *iteration,
                temperature: *temperature,
            }
            .fmt(f),
            SweepOutcome::NotConverged { last_delta } => CosimError::NotConverged {
                last_delta: *last_delta,
            }
            .fmt(f),
            SweepOutcome::BadPower { block, power } => CosimError::BadPower {
                block: *block,
                power: *power,
            }
            .fmt(f),
            SweepOutcome::Cancelled { iterations } => {
                write!(f, "cancelled after {iterations} iterations")
            }
        }
    }
}

/// Results of one sweep, in scenario enumeration order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One outcome per scenario.
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// Number of scenarios swept.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Scenarios that reached a fixed point.
    pub fn converged_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_converged()).count()
    }

    /// Scenarios that ran away thermally.
    pub fn runaway_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, SweepOutcome::Runaway { .. }))
            .count()
    }

    /// Total Picard iterations spent on converged scenarios.
    pub fn total_iterations(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match o {
                SweepOutcome::Converged { iterations, .. } => *iterations,
                _ => 0,
            })
            .sum()
    }

    /// Hottest converged operating point across the sweep, K.
    pub fn max_peak_temperature(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(SweepOutcome::peak_temperature)
            .reduce(f64::max)
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios: {} converged, {} runaway, {} other",
            self.len(),
            self.converged_count(),
            self.runaway_count(),
            self.len() - self.converged_count() - self.runaway_count()
        )
    }
}

/// One scenario of a spatial map sweep: the block-level Picard outcome
/// plus, for converged scenarios, the rendered high-resolution map.
#[derive(Debug, Clone)]
pub struct MapOutcome {
    /// Block-level fixed-point outcome (identical to what
    /// [`SweepEngine::run`] would report for this scenario).
    pub outcome: SweepOutcome,
    /// Absolute tile temperatures (row-major `nx × ny`, K); present
    /// exactly when the scenario converged.
    pub map_k: Option<Vec<f64>>,
}

/// Results of one spatial map sweep, in scenario enumeration order.
#[derive(Debug, Clone)]
pub struct MapReport {
    /// Map grid width in tiles.
    pub nx: usize,
    /// Map grid height in tiles.
    pub ny: usize,
    /// One outcome per scenario.
    pub outcomes: Vec<MapOutcome>,
}

impl MapReport {
    /// Number of scenarios swept.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Scenarios that reached a fixed point (and therefore have a map).
    pub fn converged_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome.is_converged())
            .count()
    }

    /// The map of scenario `index`, if it converged.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn map(&self, index: usize) -> Option<&[f64]> {
        self.outcomes[index].map_k.as_deref()
    }

    /// Hottest tile across every converged scenario's map, K.
    pub fn max_map_temperature(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| o.map_k.as_deref())
            .filter_map(crate::cosim::operator::max_temperature)
            .reduce(f64::max)
    }
}

impl fmt::Display for MapReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios on a {}x{} map grid: {} converged",
            self.len(),
            self.nx,
            self.ny,
            self.converged_count()
        )
    }
}

/// Batched, parallel sweep driver for one floorplan.
///
/// Construction precomputes the [`ThermalOperator`]; [`SweepEngine::run`]
/// then shards the scenario stream across worker threads, each advancing
/// a [`BatchedSolver`] batch of [`Self::batch_lanes`] scenarios per
/// Picard step and refilling lanes from a shared cursor as scenarios
/// resolve. See the [module docs](self) for the full picture and
/// [`Self::run_per_scenario`] for the one-at-a-time oracle path.
#[derive(Debug)]
pub struct SweepEngine {
    solver: ElectroThermalSolver,
    /// Lazily built, shared so a fleet-level cache can hand one factored
    /// operator to many engines (and many worker threads) without
    /// copying it. Lazy because a spectral-backend sweep never reads it
    /// — an engine serving a 4096-block floorplan spectrally must not
    /// pay the `O(n²·images)` dense assembly.
    operator: OnceLock<Arc<ThermalOperator>>,
    /// Lazily built spectral twin (see [`SpectralOperator`]).
    spectral: OnceLock<Arc<SpectralOperator>>,
    backend: SweepBackend,
    spectral_tolerance: f64,
    threads: usize,
    batch_lanes: usize,
    warm_start: bool,
}

/// Default batch width: wide enough to amortize every influence-matrix
/// load across several SIMD register tiles, small enough that the batch
/// panels of a mid-size floorplan stay cache-resident per worker (the
/// `sweep` bench sweeps this knob; 64 wins on AVX-512 and AVX2 alike).
const DEFAULT_BATCH_LANES: usize = 64;

/// Block count at which [`SweepBackend::Auto`] switches from the dense
/// GEMM path to the spectral apply (provided the floorplan is
/// grid-coincident, see [`infer_grid`]). Below this the dense operator
/// is cheap to build and its per-step GEMM beats the FFT's constant
/// factor; above it the `O(n²·images)` build alone dominates whole
/// sweeps (the `spectral` bench quantifies the crossover).
pub const SPECTRAL_AUTO_THRESHOLD: usize = 512;

/// Which influence-operator backend a [`SweepEngine`] advances its
/// batched Picard iterations through. Both backends share one Picard
/// skeleton (`crate::cosim::batch::drive_picard`), so guard order and
/// outcome classification are identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBackend {
    /// Pick per floorplan: spectral for grid-coincident floorplans of at
    /// least [`SPECTRAL_AUTO_THRESHOLD`] blocks, dense otherwise. The
    /// default.
    Auto,
    /// The `n × n` influence-matrix GEMM path — the small-`n` default
    /// and the correctness oracle.
    Dense,
    /// The `O(N log N)` scatter → FFT → sample path. Requires a
    /// grid-coincident floorplan; [`SweepEngine::run`] panics otherwise
    /// (the fleet layer pre-validates and reports the typed
    /// [`SpectralGridError`] instead).
    Spectral,
}

impl SweepBackend {
    /// Stable lower-case name (`"auto"` / `"dense"` / `"spectral"`) —
    /// what fleet result lines report and job specs parse.
    pub fn name(self) -> &'static str {
        match self {
            SweepBackend::Auto => "auto",
            SweepBackend::Dense => "dense",
            SweepBackend::Spectral => "spectral",
        }
    }
}

impl fmt::Display for SweepBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-call options for the unified [`SweepEngine`] entry points
/// ([`SweepEngine::sweep`], [`SweepEngine::transient`],
/// [`SweepEngine::map`]).
///
/// Historically every workload grew its own method ladder (`run` /
/// `run_with` / `run_with_cancel` × steady/transient/map) and each new
/// orthogonal knob doubled it. `RunOptions` collapses the ladder: one
/// entry point per workload, with cancellation, an already-built
/// operator (the cache-amortized path) and a backend override all
/// optional and composable. The legacy names survive as one-line
/// wrappers over these entry points.
///
/// `Op` is the workload's operator type: [`Arc<ThermalOperator>`] for
/// steady sweeps, [`TransientOperator`] for transients,
/// [`MapOperator`] for map renders.
///
/// # Example
///
/// ```no_run
/// # use ptherm_core::cosim::{RunOptions, SweepBackend, SweepEngine, ScenarioGrid};
/// # use ptherm_par::CancelToken;
/// # fn demo(engine: &SweepEngine, grid: &ScenarioGrid) {
/// let power = engine.uniform_tech_power(40.0, 8.0);
/// let token = CancelToken::new();
/// let report = engine.sweep(
///     grid,
///     &power,
///     RunOptions::new()
///         .cancel(&token)
///         .backend(SweepBackend::Dense),
/// );
/// # let _ = report;
/// # }
/// ```
pub struct RunOptions<'a, Op> {
    /// Cooperative cancellation token, checkpointed at the workload's
    /// natural granularity (per Picard iteration / time step / render).
    /// `None` runs to completion.
    pub cancel: Option<&'a CancelToken>,
    /// An **already built** operator to replay instead of building one
    /// — the cache-amortized path. Must match what this engine would
    /// build (fingerprint-checked; a mismatch panics as a cache-keying
    /// bug). `None` builds (or reuses the engine's lazily built)
    /// operator.
    pub operator: Option<&'a Op>,
    /// Backend override for this call only (steady sweeps and the
    /// Picard phase of map renders; transients always step through the
    /// dense-factored propagator). `None` uses the engine's configured
    /// backend.
    pub backend: Option<SweepBackend>,
    /// Warm-start override for this call only (steady sweeps; ignored
    /// by transients and map renders). `Some(true)` chains scenario
    /// seeds along the grid's innermost axis (see
    /// [`SweepEngine::warm_start`]), `Some(false)` forces cold starts,
    /// `None` uses the engine's configured mode.
    pub warm_start: Option<bool>,
}

impl<Op> Default for RunOptions<'_, Op> {
    fn default() -> Self {
        RunOptions {
            cancel: None,
            operator: None,
            backend: None,
            warm_start: None,
        }
    }
}

// Manual impls: a derive would demand `Op: Clone/Copy`, but the struct
// only holds references to `Op`.
impl<Op> Clone for RunOptions<'_, Op> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<Op> Copy for RunOptions<'_, Op> {}

impl<Op> fmt::Debug for RunOptions<'_, Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunOptions")
            .field("cancel", &self.cancel.is_some())
            .field("operator", &self.operator.is_some())
            .field("backend", &self.backend)
            .field("warm_start", &self.warm_start)
            .finish()
    }
}

impl<'a, Op> RunOptions<'a, Op> {
    /// All-defaults options: no cancellation, self-built operator,
    /// engine-configured backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a cooperative [`CancelToken`].
    #[must_use]
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replays an already-built operator (see [`RunOptions::operator`]).
    #[must_use]
    pub fn operator(mut self, op: &'a Op) -> Self {
        self.operator = Some(op);
        self
    }

    /// Overrides the backend for this call (see
    /// [`RunOptions::backend`]).
    #[must_use]
    pub fn backend(mut self, backend: SweepBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides warm-start chaining for this call (see
    /// [`RunOptions::warm_start`]).
    #[must_use]
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.warm_start = Some(warm);
        self
    }
}

/// How `run_batched` seeds each lane's initial temperature vector.
#[derive(Clone, Copy)]
pub(crate) enum WarmMode<'s> {
    /// Every scenario starts at its ambient — the historical behaviour,
    /// byte-for-byte.
    Cold,
    /// Scenarios are claimed in contiguous chains of `chain_len`
    /// (aligned at `id = k·chain_len`), each chain owned by one worker
    /// and walked in index order with at most one scenario in flight;
    /// each link seeds from the most recently converged predecessor in
    /// its chain. A `chain_len` of 1 degenerates to [`WarmMode::Cold`].
    Chained { chain_len: usize },
    /// Per-scenario explicit seeds (`None` = cold) — the delta re-solve
    /// path ([`SweepEngine::sweep_seeded`]).
    Seeded(&'s (dyn Fn(usize) -> Option<Vec<f64>> + Sync)),
}

/// One in-progress warm-start chain owned by a worker (see
/// [`WarmMode::Chained`]).
struct ActiveChain {
    /// Next scenario id this chain will claim.
    next: usize,
    /// One past the chain's last scenario id.
    end: usize,
    /// Fixed point of the most recently converged link — the next
    /// link's seed. `None` until a link converges (head starts cold;
    /// non-converged links keep the last good seed).
    seed: Option<Vec<f64>>,
    /// Whether a claimed scenario is still resolving in a lane; the
    /// chain yields its next link only after the sink retires it.
    in_flight: bool,
}

impl SweepEngine {
    /// Engine with the default solver configuration and one worker per
    /// available CPU.
    pub fn new(floorplan: Floorplan) -> Self {
        Self::with_solver(ElectroThermalSolver::new(floorplan))
    }

    /// Engine around a configured solver (damping, tolerances, image
    /// orders); operators are built lazily on first use, so a
    /// spectral-only engine never assembles the dense matrix.
    pub fn with_solver(solver: ElectroThermalSolver) -> Self {
        SweepEngine {
            solver,
            operator: OnceLock::new(),
            spectral: OnceLock::new(),
            backend: SweepBackend::Auto,
            spectral_tolerance: DEFAULT_REFINEMENT_TOLERANCE,
            threads: ptherm_par::default_threads(),
            batch_lanes: DEFAULT_BATCH_LANES,
            warm_start: false,
        }
    }

    /// Engine around a configured solver and an **already built**
    /// operator — the cache-amortized construction path: a fleet-level
    /// [`ThermalOperator`] cache builds (or recalls) the operator once
    /// per floorplan fingerprint and hands it to every job's engine,
    /// skipping the dominant cold cost of [`Self::with_solver`].
    ///
    /// The operator must have been built at the solver's floorplan and
    /// image orders; results are then bit-identical to an engine that
    /// built its own (the build is deterministic).
    ///
    /// # Panics
    ///
    /// Panics if the operator's block count or fingerprint does not
    /// match what the solver would build, so a cache bug surfaces here
    /// rather than as silently wrong temperatures.
    pub fn with_operator(solver: ElectroThermalSolver, operator: Arc<ThermalOperator>) -> Self {
        assert_eq!(
            operator.fingerprint(),
            crate::cosim::operator_fingerprint(
                solver.floorplan(),
                solver.lateral_order,
                solver.z_order
            ),
            "operator/solver fingerprint mismatch"
        );
        let engine = Self::with_solver(solver);
        let _ = engine.operator.set(operator);
        engine
    }

    /// Engine around a configured solver and an **already built**
    /// spectral operator — the cache-amortized spectral construction
    /// path, mirroring [`Self::with_operator`]. The backend is pinned to
    /// [`SweepBackend::Spectral`] and the engine adopts the operator's
    /// refinement tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the operator's fingerprint does not match what the
    /// solver would build at the operator's grid and tolerance, so a
    /// cache bug surfaces here rather than as silently wrong
    /// temperatures.
    pub fn with_spectral_operator(
        solver: ElectroThermalSolver,
        operator: Arc<SpectralOperator>,
    ) -> Self {
        assert_eq!(
            operator.fingerprint(),
            spectral_operator_fingerprint(
                solver.floorplan(),
                solver.lateral_order,
                solver.z_order,
                operator.nx(),
                operator.ny(),
                operator.tolerance(),
            ),
            "spectral operator/solver fingerprint mismatch"
        );
        let mut engine = Self::with_solver(solver);
        engine.backend = SweepBackend::Spectral;
        engine.spectral_tolerance = operator.tolerance();
        let _ = engine.spectral.set(operator);
        engine
    }

    /// Sets the worker-thread count (1 = run inline, still batched).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the influence-operator backend (default
    /// [`SweepBackend::Auto`]). On coincident-grid floorplans the
    /// backends agree to ≤ 1e-6 K with identical outcome kinds
    /// (`tests/spectral_validation.rs` pins this), so `Auto` is a pure
    /// performance decision.
    #[must_use]
    pub fn backend(mut self, backend: SweepBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the spectral backend's near-field rasterization tolerance
    /// (K per W; see [`SpectralOperator`]). Takes effect on the next
    /// spectral-operator build — a no-op once one is built or injected.
    #[must_use]
    pub fn spectral_tolerance(mut self, tolerance: f64) -> Self {
        self.spectral_tolerance = tolerance;
        self
    }

    /// Sets the scenarios-per-batch width of the GEMM-batched hot path
    /// (1 = scalar-shaped batches, still through the batched solver).
    /// Results are bitwise identical across widths: every lane runs the
    /// same per-lane operation sequence whatever its batch neighbours.
    #[must_use]
    pub fn batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = lanes.max(1);
        self
    }

    /// Enables warm-started sweeps (default off). When on,
    /// [`Self::sweep`] partitions the grid into chains along its
    /// innermost non-trivial axis and seeds each scenario's initial
    /// temperature vector from the most recently **converged**
    /// predecessor in its chain (non-converged links keep the last good
    /// seed; the chain head starts cold at ambient). Seeds are clamped
    /// to the lane ambient per block, so the warm orbit starts inside
    /// `[ambient, T*]` and reaches the same fixed point as a cold run —
    /// `tests/warm_start_validation.rs` pins agreement and
    /// never-more-iterations on converged lanes.
    ///
    /// Chain identity depends only on the scenario index, and every
    /// chain is driven by exactly one worker in index order, so warm
    /// results stay bitwise invariant across thread counts and batch
    /// widths — the same contract cold sweeps honour.
    #[must_use]
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Reconfigures the solver, discarding any built operators (image
    /// orders may have changed; they rebuild lazily on next use).
    #[must_use]
    pub fn configure(mut self, f: impl FnOnce(&mut ElectroThermalSolver)) -> Self {
        f(&mut self.solver);
        self.operator = OnceLock::new();
        self.spectral = OnceLock::new();
        self
    }

    /// The engine's solver configuration.
    pub fn solver(&self) -> &ElectroThermalSolver {
        &self.solver
    }

    /// The dense influence operator, building it on first call.
    pub fn operator(&self) -> &ThermalOperator {
        self.dense_operator()
    }

    /// The dense operator as a shareable handle (what a fleet cache
    /// stores), building it on first call.
    pub fn shared_operator(&self) -> Arc<ThermalOperator> {
        Arc::clone(self.dense_operator())
    }

    fn dense_operator(&self) -> &Arc<ThermalOperator> {
        self.operator
            .get_or_init(|| Arc::new(self.solver.operator()))
    }

    /// The spectral influence operator, building it on first call.
    ///
    /// # Errors
    ///
    /// [`SpectralGridError`] when the floorplan's block centres sit on
    /// no uniform tile grid (see [`infer_grid`]).
    pub fn spectral_operator(&self) -> Result<&Arc<SpectralOperator>, SpectralGridError> {
        if let Some(op) = self.spectral.get() {
            return Ok(op);
        }
        let built = Arc::new(SpectralOperator::with_image_orders_threaded(
            self.solver.floorplan(),
            self.solver.lateral_order,
            self.solver.z_order,
            self.spectral_tolerance,
            self.threads,
        )?);
        // A concurrent initializer winning the race is fine: same
        // inputs, bit-identical build — ours is simply dropped.
        Ok(self.spectral.get_or_init(|| built))
    }

    /// The backend [`Self::run`] will actually use: `Auto` resolves to
    /// spectral for grid-coincident floorplans of at least
    /// [`SPECTRAL_AUTO_THRESHOLD`] blocks, dense otherwise; explicit
    /// choices pass through.
    pub fn resolved_backend(&self) -> SweepBackend {
        self.resolve_backend(self.backend)
    }

    /// [`Self::resolved_backend`] for an arbitrary request — what a
    /// per-call [`RunOptions::backend`] override resolves to.
    fn resolve_backend(&self, requested: SweepBackend) -> SweepBackend {
        match requested {
            SweepBackend::Auto => {
                let plan = self.solver.floorplan();
                if plan.blocks().len() >= SPECTRAL_AUTO_THRESHOLD
                    && (self.spectral.get().is_some() || infer_grid(plan).is_ok())
                {
                    SweepBackend::Spectral
                } else {
                    SweepBackend::Dense
                }
            }
            explicit => explicit,
        }
    }

    /// A ready-made [`ScaledTechPower`] spreading chip-level dynamic and
    /// leakage budgets over this engine's floorplan by block area.
    pub fn uniform_tech_power(
        &self,
        total_dynamic_w: f64,
        total_leakage_w: f64,
    ) -> ScaledTechPower {
        ScaledTechPower::area_weighted(self.solver.floorplan(), total_dynamic_w, total_leakage_w)
    }

    /// Sweeps a scenario grid under a power model through the
    /// GEMM-batched hot path — the unified steady entry point.
    ///
    /// A grid without an explicit ambient axis inherits this engine's
    /// floorplan sink temperature, matching one-shot solves. Workers
    /// pull scenario indices from one shared cursor (dynamic sharding),
    /// refilling their batch lanes as scenarios resolve, so outcomes
    /// are independent of the thread count and batch width. Results
    /// agree with [`Self::run_per_scenario`] to the ULP-level contract
    /// documented in [`crate::cosim::batch`].
    ///
    /// [`RunOptions`] composes the per-call knobs:
    ///
    /// * `cancel` — cooperative token checkpointed once per Picard
    ///   iteration. When it fires, in-flight scenarios retire as
    ///   [`SweepOutcome::Cancelled`] with their iteration counts and
    ///   never-started scenarios as `Cancelled` with zero iterations;
    ///   the engine, its cached operators and all workspaces stay
    ///   fully reusable. A token that never fires leaves results
    ///   bitwise identical to an uncancelled run.
    /// * `operator` — an already-built dense [`ThermalOperator`]
    ///   handle to replay (the cache-amortized path; fingerprint
    ///   checked). Ignored when the resolved backend is spectral.
    /// * `backend` — per-call override of the engine's configured
    ///   backend.
    ///
    /// # Panics
    ///
    /// Panics on an operator fingerprint mismatch, or when the
    /// (possibly overridden) backend is explicitly
    /// [`SweepBackend::Spectral`] on a non-grid-coincident floorplan.
    /// Callers that need a typed failure (the fleet) pre-validate with
    /// [`infer_grid`].
    pub fn sweep<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        opts: RunOptions<'_, Arc<ThermalOperator>>,
    ) -> SweepReport {
        if let Some(op) = opts.operator {
            assert_eq!(
                op.fingerprint(),
                crate::cosim::operator_fingerprint(
                    self.solver.floorplan(),
                    self.solver.lateral_order,
                    self.solver.z_order
                ),
                "operator/solver fingerprint mismatch"
            );
        }
        // The floorplan's sink, not the operator's (same value by the
        // fingerprint contract): reading it must not force a dense
        // build under the spectral backend.
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let total = grid.len();
        let chain_len = grid.warm_chain_len();
        let warm = if opts.warm_start.unwrap_or(self.warm_start) && chain_len > 1 {
            WarmMode::Chained { chain_len }
        } else {
            WarmMode::Cold
        };
        self.run_batched(
            total,
            |id| grid.scenario(id, sink_k).ambient_k,
            || model.batched(grid, sink_k, self.batch_lanes),
            opts.cancel,
            opts.operator,
            opts.backend,
            warm,
        )
    }

    /// [`Self::sweep`] with per-scenario initial-temperature seeds — the
    /// incremental re-solve entry point (the fleet's `delta` jobs ride
    /// it, seeding each scenario from a cached base result's fixed
    /// point).
    ///
    /// `seed_of` maps a scenario index to an optional seed vector
    /// (block temperatures, floorplan order). `None` — and any seed of
    /// the wrong length — starts that scenario cold at its ambient, so
    /// a caller with no usable seeds degrades to exactly
    /// [`Self::sweep`]'s cold behaviour, bitwise. Seeds are clamped to
    /// the scenario ambient per block (see
    /// [`LaneStart`]); callers whose
    /// seeds lie at or below the true fixed point therefore converge to
    /// the same fixed points as a cold run, in no more iterations.
    ///
    /// Seeding is per scenario index — independent of thread count and
    /// batch width — so results carry the same bitwise-invariance
    /// contract as [`Self::sweep`]. `opts.warm_start` is ignored
    /// (explicit seeds replace chained ordering).
    pub fn sweep_seeded<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        seed_of: &(dyn Fn(usize) -> Option<Vec<f64>> + Sync),
        opts: RunOptions<'_, Arc<ThermalOperator>>,
    ) -> SweepReport {
        if let Some(op) = opts.operator {
            assert_eq!(
                op.fingerprint(),
                crate::cosim::operator_fingerprint(
                    self.solver.floorplan(),
                    self.solver.lateral_order,
                    self.solver.z_order
                ),
                "operator/solver fingerprint mismatch"
            );
        }
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let total = grid.len();
        self.run_batched(
            total,
            |id| grid.scenario(id, sink_k).ambient_k,
            || model.batched(grid, sink_k, self.batch_lanes),
            opts.cancel,
            opts.operator,
            opts.backend,
            WarmMode::Seeded(seed_of),
        )
    }

    /// [`Self::sweep`] with default [`RunOptions`] — the legacy name,
    /// kept as a thin wrapper.
    pub fn run<M: ScenarioPowerModel>(&self, grid: &ScenarioGrid, model: &M) -> SweepReport {
        self.sweep(grid, model, RunOptions::new())
    }

    /// [`Self::sweep`] with only a cancellation token — the legacy
    /// name, kept as a thin wrapper.
    pub fn run_with_cancel<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cancel: Option<&CancelToken>,
    ) -> SweepReport {
        self.sweep(
            grid,
            model,
            RunOptions {
                cancel,
                ..RunOptions::new()
            },
        )
    }

    /// The generic batched entry point: sweeps arbitrary scenario values
    /// with caller-supplied ambient and power functions. Outcomes
    /// preserve input order.
    pub fn run_scenarios<S, A, P>(&self, scenarios: &[S], ambient_k: A, power: P) -> SweepReport
    where
        S: Sync,
        A: Fn(&S) -> f64 + Sync,
        P: Fn(&S, usize, f64) -> f64 + Sync,
    {
        self.run_batched(
            scenarios.len(),
            |id| ambient_k(&scenarios[id]),
            || {
                Box::new(crate::cosim::batch::FnBatchPower::new(
                    |id: usize, block: usize, t: f64| power(&scenarios[id], block, t),
                ))
            },
            None,
            None,
            None,
            WarmMode::Cold,
        )
    }

    /// Builds the spatial [`MapOperator`] this engine's floorplan and
    /// image orders imply for an `nx × ny` tile grid — the kernel
    /// assembly [`Self::run_map`] would perform internally, exposed so
    /// a fleet-level cache can build it once per
    /// [`map_operator_fingerprint`] and replay it through
    /// [`Self::run_map_with`].
    pub fn map_operator(&self, nx: usize, ny: usize) -> MapOperator {
        MapOperator::with_image_orders_threaded(
            self.solver.floorplan(),
            nx,
            ny,
            self.solver.lateral_order,
            self.solver.z_order,
            self.threads,
        )
    }

    /// Sweeps a scenario grid and renders a high-resolution `nx × ny`
    /// temperature map per converged scenario — the unified map entry
    /// point.
    ///
    /// Leakage feedback is closed through the **existing** batched
    /// Picard loop ([`Self::sweep`]: `Self::batch_lanes` scenarios per
    /// GEMM step on the `MultiVec` path); the converged block power
    /// vectors are then rasterized and convolved through the FFT map
    /// operator, one render per scenario, sharded over
    /// `Self::threads` workers with a reusable [`MapWorkspace`] each.
    /// Results are bitwise independent of thread count and batch width
    /// (the Picard contract plus a deterministic serial render per
    /// scenario).
    ///
    /// [`RunOptions`] composes the per-call knobs:
    ///
    /// * `cancel` — checkpointed once per Picard iteration during the
    ///   sweep and once per scenario during the FFT render pass.
    ///   Scenarios cancelled mid-sweep carry
    ///   [`SweepOutcome::Cancelled`]; converged scenarios whose render
    ///   was skipped by a late cancellation keep their sweep outcome
    ///   with `map_k: None`. A token that never fires leaves results
    ///   bitwise identical to an uncancelled run.
    /// * `operator` — an already-built [`MapOperator`] to replay (see
    ///   [`Self::map_operator`]); its grid must be `nx × ny`. Results
    ///   are bit-identical to the self-building path for an operator
    ///   built from the same inputs.
    /// * `backend` — per-call override for the Picard sweep phase.
    ///
    /// # Panics
    ///
    /// Panics if the supplied operator's grid is not `nx × ny`, or if
    /// it was built for a different floorplan geometry or image orders
    /// than this engine would build (fingerprint mismatch) — a
    /// cache-keying bug, caught here rather than rendering the wrong
    /// chip.
    pub fn map<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        nx: usize,
        ny: usize,
        opts: RunOptions<'_, MapOperator>,
    ) -> MapReport {
        match opts.operator {
            Some(map_op) => {
                assert_eq!(
                    (map_op.nx(), map_op.ny()),
                    (nx, ny),
                    "map operator grid mismatch"
                );
                self.map_inner(grid, model, map_op, opts.cancel, opts.backend)
            }
            None => self.map_inner(
                grid,
                model,
                &self.map_operator(nx, ny),
                opts.cancel,
                opts.backend,
            ),
        }
    }

    /// [`Self::map`] with default [`RunOptions`] — the legacy name,
    /// kept as a thin wrapper.
    pub fn run_map<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        nx: usize,
        ny: usize,
    ) -> MapReport {
        self.map(grid, model, nx, ny, RunOptions::new())
    }

    /// [`Self::map`] against an already-built operator — the legacy
    /// name, kept as a thin wrapper over
    /// `RunOptions::new().operator(map_op)`.
    pub fn run_map_with<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        map_op: &MapOperator,
    ) -> MapReport {
        self.map(
            grid,
            model,
            map_op.nx(),
            map_op.ny(),
            RunOptions::new().operator(map_op),
        )
    }

    /// [`Self::map`] with an operator and a cancellation token — the
    /// legacy name, kept as a thin wrapper.
    pub fn run_map_with_cancel<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        map_op: &MapOperator,
        cancel: Option<&CancelToken>,
    ) -> MapReport {
        self.map(
            grid,
            model,
            map_op.nx(),
            map_op.ny(),
            RunOptions {
                cancel,
                operator: Some(map_op),
                backend: None,
                warm_start: None,
            },
        )
    }

    /// Shared map driver behind [`Self::map`]: fingerprint-checks the
    /// operator, runs the Picard sweep, then renders converged
    /// scenarios through the FFT operator.
    fn map_inner<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        map_op: &MapOperator,
        cancel: Option<&CancelToken>,
        backend: Option<SweepBackend>,
    ) -> MapReport {
        assert_eq!(
            map_op.fingerprint(),
            map_operator_fingerprint(
                self.solver.floorplan(),
                self.solver.lateral_order,
                self.solver.z_order,
                map_op.nx(),
                map_op.ny(),
            ),
            "map operator/solver fingerprint mismatch"
        );
        let sweep = self.sweep(
            grid,
            model,
            RunOptions {
                cancel,
                operator: None,
                backend,
                warm_start: None,
            },
        );
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let outcomes = ptherm_par::par_map_with(
            self.threads,
            &sweep.outcomes,
            MapWorkspace::new,
            |ws, id, outcome| {
                // Render-pass checkpoint: one poll per scenario. A late
                // cancellation skips the remaining renders but keeps
                // each scenario's sweep outcome.
                if cancel.is_some_and(|token| token.is_cancelled()) {
                    return MapOutcome {
                        outcome: outcome.clone(),
                        map_k: None,
                    };
                }
                let map_k = match outcome {
                    SweepOutcome::Converged { block_powers, .. } => {
                        let mut map = vec![0.0; map_op.tiles()];
                        map_op.temperature_map_into(
                            block_powers,
                            grid.scenario(id, sink_k).ambient_k,
                            ws,
                            &mut map,
                        );
                        Some(map)
                    }
                    _ => None,
                };
                MapOutcome {
                    outcome: outcome.clone(),
                    map_k,
                }
            },
        );
        MapReport {
            nx: map_op.nx(),
            ny: map_op.ny(),
            outcomes,
        }
    }

    /// Shared batched driver: `total` scenario ids, an ambient lookup and
    /// a per-worker batched-model factory. Dispatches to the resolved
    /// backend (honouring a per-call override and a pre-built dense
    /// operator from [`RunOptions`]); both paths run the same Picard
    /// skeleton.
    ///
    /// # Panics
    ///
    /// Panics when the backend is explicitly [`SweepBackend::Spectral`]
    /// and the floorplan is not grid-coincident. Callers that need a
    /// typed failure (the fleet) pre-validate with [`infer_grid`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_batched<'m>(
        &self,
        total: usize,
        ambient_of: impl Fn(usize) -> f64 + Sync,
        make_model: impl Fn() -> Box<dyn BatchPowerModel + 'm> + Sync,
        cancel: Option<&CancelToken>,
        dense_override: Option<&Arc<ThermalOperator>>,
        backend_override: Option<SweepBackend>,
        warm: WarmMode<'_>,
    ) -> SweepReport {
        let requested = backend_override.unwrap_or(self.backend);
        let spectral = match self.resolve_backend(requested) {
            SweepBackend::Spectral => Some(match self.spectral_operator() {
                Ok(op) => Arc::clone(op),
                // lint:allow(panic-freedom) — documented `# Panics` contract; callers needing a typed failure (the fleet) pre-validate with `infer_grid`
                Err(e) => panic!("spectral backend requested on an incompatible floorplan: {e}"),
            }),
            _ => None,
        };
        let dense = match &spectral {
            None => Some(Arc::clone(
                dense_override.unwrap_or_else(|| self.dense_operator()),
            )),
            Some(_) => None,
        };
        let chain_len = match warm {
            WarmMode::Chained { chain_len } => chain_len.max(1),
            _ => 1,
        };
        let chain_count = if chain_len > 1 {
            total.div_ceil(chain_len)
        } else {
            0
        };
        let cursor = AtomicUsize::new(0);
        let chain_cursor = AtomicUsize::new(0);
        let per_worker = ptherm_par::par_workers(self.threads, |_worker| {
            let mut model = make_model();
            let mut ws = BatchWorkspace::new();
            let mut collected: Vec<(usize, SweepOutcome)> = Vec::new();
            // Chained-mode bookkeeping: the chains this worker owns.
            // Shared between the source and sink closures (both run
            // inside the serial per-worker Picard loop, never
            // concurrently), hence the RefCell.
            let chains: RefCell<Vec<ActiveChain>> = RefCell::new(Vec::new());
            let mut source: Box<dyn FnMut() -> Option<LaneStart> + '_> = match warm {
                // A chain claims its scenarios in index order, at most
                // one in flight, seeding each from the most recently
                // converged predecessor. Claiming whole chains (not
                // scenarios) from the shared cursor keeps every chain
                // on one worker, so seeds — and therefore results —
                // are bitwise independent of the thread count.
                WarmMode::Chained { .. } if chain_len > 1 => Box::new(|| {
                    let mut active = chains.borrow_mut();
                    loop {
                        if let Some(chain) = active
                            .iter_mut()
                            .find(|chain| !chain.in_flight && chain.next < chain.end)
                        {
                            let id = chain.next;
                            chain.next += 1;
                            chain.in_flight = true;
                            return Some(match &chain.seed {
                                Some(seed) => LaneStart::warm(id, ambient_of(id), seed.clone()),
                                None => LaneStart::cold(id, ambient_of(id)),
                            });
                        }
                        let index = chain_cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= chain_count {
                            return None;
                        }
                        active.push(ActiveChain {
                            next: index * chain_len,
                            end: ((index + 1) * chain_len).min(total),
                            seed: None,
                            in_flight: false,
                        });
                    }
                }),
                WarmMode::Seeded(seed_of) => Box::new(|| {
                    let id = cursor.fetch_add(1, Ordering::Relaxed);
                    (id < total).then(|| LaneStart {
                        id,
                        ambient_k: ambient_of(id),
                        seed: seed_of(id),
                    })
                }),
                _ => Box::new(|| {
                    let id = cursor.fetch_add(1, Ordering::Relaxed);
                    (id < total).then(|| LaneStart::cold(id, ambient_of(id)))
                }),
            };
            let mut sink = |id: usize, outcome: SweepOutcome| {
                if chain_len > 1 {
                    let mut active = chains.borrow_mut();
                    // The retiring scenario's chain is the one whose
                    // in-flight claim was `id` (its cursor already
                    // advanced past it).
                    if let Some(pos) = active
                        .iter()
                        .position(|chain| chain.in_flight && chain.next == id + 1)
                    {
                        let chain = &mut active[pos];
                        chain.in_flight = false;
                        if let SweepOutcome::Converged {
                            block_temperatures, ..
                        } = &outcome
                        {
                            chain.seed = Some(block_temperatures.clone());
                        }
                        if chain.next >= chain.end {
                            active.swap_remove(pos);
                        }
                    }
                }
                collected.push((id, outcome));
            };
            match (&spectral, &dense) {
                (Some(op), _) => SpectralBatchedSolver::new(&self.solver, op).drive(
                    self.batch_lanes,
                    &mut *model,
                    &mut ws,
                    &mut SpectralScratch::new(),
                    cancel,
                    &mut source,
                    &mut sink,
                ),
                (None, Some(op)) => BatchedSolver::new(&self.solver, op).drive(
                    self.batch_lanes,
                    &mut *model,
                    &mut ws,
                    cancel,
                    &mut source,
                    &mut sink,
                ),
                // lint:allow(panic-freedom) — `dense` is Some exactly when `spectral` is None (constructed two matches above)
                (None, None) => unreachable!("one backend operator is always resolved"),
            }
            collected
        });
        // Scenarios still in the shared cursor when a token fires were
        // never pulled into a lane: they retire as Cancelled with zero
        // iterations. Without a fired token every slot must be filled —
        // the original exhaustiveness contract.
        let cancelled = cancel.is_some_and(|token| token.fired());
        let mut outcomes: Vec<Option<SweepOutcome>> = (0..total).map(|_| None).collect();
        for (id, outcome) in per_worker.into_iter().flatten() {
            outcomes[id] = Some(outcome);
        }
        SweepReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| match o {
                    Some(outcome) => outcome,
                    None => {
                        assert!(cancelled, "every scenario resolved");
                        SweepOutcome::Cancelled { iterations: 0 }
                    }
                })
                .collect(),
        }
    }

    /// Per-block thermal capacitances for a transient run: the config's
    /// own, or silicon column capacitances derived from the floorplan.
    fn transient_capacitances(&self, cfg: &TransientConfig) -> Vec<f64> {
        cfg.capacitances
            .clone()
            .unwrap_or_else(|| silicon_block_capacitances(self.solver.floorplan()))
    }

    /// Builds the implicit transient operator `cfg` implies for this
    /// engine's floorplan — the factorization [`Self::run_transient`]
    /// would perform internally, exposed so a fleet-level cache can
    /// build it once per `(floorplan, capacitances, dt, scheme)`
    /// fingerprint and replay it through [`Self::run_transient_with`].
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn transient_operator(
        &self,
        cfg: &TransientConfig,
    ) -> Result<TransientOperator, TransientError> {
        let caps = self.transient_capacitances(cfg);
        TransientOperator::new(self.dense_operator(), &caps, cfg.dt, cfg.scheme)
    }

    /// Sweeps a scenario × drive-waveform grid through the batched
    /// implicit **transient** engine ([`crate::cosim::transient`]) —
    /// the unified transient entry point.
    ///
    /// Every scenario of `grid` runs under every waveform of `cfg`,
    /// `Self::batch_lanes` transients advancing per time step through
    /// the `Φ`/`Q` GEMM recurrence, chunks sharded over
    /// `Self::threads` workers. Outcomes land scenario-major
    /// ([`TransientReport::outcome`]); results are independent of
    /// thread count and batch width (the [`crate::cosim::batch`]
    /// per-lane contract).
    ///
    /// [`RunOptions`] composes the per-call knobs:
    ///
    /// * `cancel` — checkpointed once per time step. Lanes in flight
    ///   when the token fires retire as
    ///   [`TransientOutcome::Cancelled`] at the step they reached;
    ///   chunks claimed after it fires retire immediately at step 0. A
    ///   token that never fires leaves results bitwise identical to an
    ///   uncancelled run.
    /// * `operator` — an **already factored** propagator to replay
    ///   (see [`Self::transient_operator`]); the stepping reads its
    ///   `Φ`/`Q`, dt and scheme, while `cfg` supplies the step count,
    ///   waveform axis and recording policy. Results are bit-identical
    ///   to the self-factoring path for a propagator built from the
    ///   same inputs.
    /// * `backend` — ignored: transients always step through the
    ///   propagator factored from the dense operator.
    ///
    /// # Errors
    ///
    /// See [`TransientError`] (bad capacitances or time step).
    ///
    /// # Panics
    ///
    /// Panics if the supplied propagator was factored for a different
    /// floorplan, capacitance vector, time step or scheme than `cfg`
    /// implies for this engine (fingerprint mismatch) — a cache-keying
    /// bug, caught here rather than integrating the wrong chip.
    pub fn transient<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
        opts: RunOptions<'_, TransientOperator>,
    ) -> Result<TransientReport, TransientError> {
        match opts.operator {
            Some(top) => self.transient_inner(grid, model, cfg, top, opts.cancel),
            None => {
                let top = self.transient_operator(cfg)?;
                self.transient_inner(grid, model, cfg, &top, opts.cancel)
            }
        }
    }

    /// [`Self::transient`] with default [`RunOptions`] — the legacy
    /// name, kept as a thin wrapper.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn run_transient<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
    ) -> Result<TransientReport, TransientError> {
        self.transient(grid, model, cfg, RunOptions::new())
    }

    /// [`Self::transient`] against an already-factored propagator —
    /// the legacy name, kept as a thin wrapper over
    /// `RunOptions::new().operator(top)`.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn run_transient_with<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
        top: &TransientOperator,
    ) -> Result<TransientReport, TransientError> {
        self.transient(grid, model, cfg, RunOptions::new().operator(top))
    }

    /// [`Self::transient`] with a propagator and a cancellation token —
    /// the legacy name, kept as a thin wrapper.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn run_transient_with_cancel<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
        top: &TransientOperator,
        cancel: Option<&CancelToken>,
    ) -> Result<TransientReport, TransientError> {
        self.transient(
            grid,
            model,
            cfg,
            RunOptions {
                cancel,
                operator: Some(top),
                backend: None,
                warm_start: None,
            },
        )
    }

    /// Shared transient driver behind [`Self::transient`]:
    /// fingerprint-checks the propagator, then steps every
    /// scenario × waveform chunk through the GEMM recurrence.
    fn transient_inner<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
        top: &TransientOperator,
        cancel: Option<&CancelToken>,
    ) -> Result<TransientReport, TransientError> {
        let caps = self.transient_capacitances(cfg);
        assert_eq!(
            top.fingerprint(),
            crate::cosim::propagator_fingerprint(self.dense_operator(), &caps, cfg.dt, cfg.scheme),
            "propagator/config fingerprint mismatch"
        );
        let waveforms = cfg.effective_waveforms()?;
        let w = waveforms.len();
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let total = grid.len() * w;
        let width = self.batch_lanes.max(1);
        let chunks = total.div_ceil(width);
        let cursor = AtomicUsize::new(0);
        let solver = TransientBatchedSolver::new(top, self.solver.ceiling_k);
        let per_worker = ptherm_par::par_workers(self.threads, |_worker| {
            let mut model = model.batched(grid, sink_k, width);
            let mut ws = TransientWorkspace::new();
            let mut collected: Vec<(usize, Vec<TransientOutcome>)> = Vec::new();
            loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= chunks {
                    break;
                }
                let start = chunk * width;
                let end = (start + width).min(total);
                let lanes: Vec<TransientLane<'_>> = (start..end)
                    .map(|id| TransientLane {
                        ambient_k: grid.scenario(id / w, sink_k).ambient_k,
                        waveform: &waveforms[id % w],
                    })
                    .collect();
                for (lane, id) in (start..end).enumerate() {
                    model.begin_lane(lane, id / w);
                }
                let outcomes = solver.solve_chunk(
                    width,
                    &lanes,
                    &mut *model,
                    &mut ws,
                    cfg.steps,
                    cfg.record_stride,
                    cancel,
                );
                collected.push((start, outcomes));
            }
            collected
        });
        let mut outcomes: Vec<Option<TransientOutcome>> = (0..total).map(|_| None).collect();
        for (start, chunk) in per_worker.into_iter().flatten() {
            for (offset, outcome) in chunk.into_iter().enumerate() {
                outcomes[start + offset] = Some(outcome);
            }
        }
        Ok(TransientReport {
            outcomes: outcomes
                .into_iter()
                // lint:allow(panic-freedom) — worker chunks partition 0..total: every slot was filled exactly once above
                .map(|o| o.expect("every transient resolved"))
                .collect(),
            waveform_count: w,
        })
    }

    /// The one-lane-at-a-time transient oracle: identical per-step
    /// arithmetic through the same implicit operator, each
    /// scenario×waveform integrated on its own
    /// ([`TransientBatchedSolver::solve_single`]), fanned over worker
    /// threads. Validation baseline for [`Self::run_transient`].
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn run_transient_per_scenario<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
    ) -> Result<TransientReport, TransientError> {
        let top = self.transient_operator(cfg)?;
        let waveforms = cfg.effective_waveforms()?;
        let w = waveforms.len();
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let ids: Vec<usize> = (0..grid.len() * w).collect();
        let solver = TransientBatchedSolver::new(&top, self.solver.ceiling_k);
        let techs = grid.technologies();
        let outcomes = ptherm_par::par_map(self.threads, &ids, |_, &id| {
            let s = grid.scenario(id / w, sink_k);
            solver.solve_single(
                s.ambient_k,
                &waveforms[id % w],
                |b, t| model.block_power(&s, &techs[s.tech_index], b, t),
                cfg.steps,
                cfg.record_stride,
            )
        });
        Ok(TransientReport {
            outcomes,
            waveform_count: w,
        })
    }

    /// The explicit reference: every scenario×waveform integrated with
    /// fixed-step RK4 ([`TransientRk4Reference`]) at a
    /// stability-constrained step (at least `cfg.steps`), fanned over
    /// worker threads. This is the path the implicit engine's speedup is
    /// measured against in the `transient` bench; agreement tolerances
    /// are documented in `docs/PERFORMANCE.md`.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn run_transient_rk4<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
        cfg: &TransientConfig,
    ) -> Result<TransientReport, TransientError> {
        let caps = self.transient_capacitances(cfg);
        let reference = TransientRk4Reference::new(self.dense_operator(), &caps)?;
        let waveforms = cfg.effective_waveforms()?;
        let w = waveforms.len();
        let sink_k = self.solver.floorplan().geometry().sink_temperature;
        let duration = cfg.duration();
        let steps = reference.stable_steps(duration).max(cfg.steps);
        let ids: Vec<usize> = (0..grid.len() * w).collect();
        let techs = grid.technologies();
        let outcomes = ptherm_par::par_map(self.threads, &ids, |_, &id| {
            let s = grid.scenario(id / w, sink_k);
            reference.solve(
                s.ambient_k,
                &waveforms[id % w],
                |b, t| model.block_power(&s, &techs[s.tech_index], b, t),
                duration,
                steps,
            )
        });
        Ok(TransientReport {
            outcomes,
            waveform_count: w,
        })
    }

    /// The pre-batching reference path: each scenario solved one at a
    /// time through [`ElectroThermalSolver::solve_with_ambient`] on the
    /// shared operator, fanned over worker threads. Kept as the exact
    /// oracle the batched engine is validated (and benchmarked) against.
    pub fn run_per_scenario<M: ScenarioPowerModel>(
        &self,
        grid: &ScenarioGrid,
        model: &M,
    ) -> SweepReport {
        let scenarios = grid.scenarios(self.solver.floorplan().geometry().sink_temperature);
        let techs = grid.technologies();
        self.run_scenarios_per_scenario(
            &scenarios,
            |s| s.ambient_k,
            |s, block, t| model.block_power(s, &techs[s.tech_index], block, t),
        )
    }

    /// Generic form of [`Self::run_per_scenario`]: the bit-exact
    /// per-scenario oracle for arbitrary scenario values.
    pub fn run_scenarios_per_scenario<S, A, P>(
        &self,
        scenarios: &[S],
        ambient_k: A,
        power: P,
    ) -> SweepReport
    where
        S: Sync,
        A: Fn(&S) -> f64 + Sync,
        P: Fn(&S, usize, f64) -> f64 + Sync,
    {
        let operator = self.dense_operator();
        let outcomes = ptherm_par::par_map_with(
            self.threads,
            scenarios,
            Workspace::new,
            |ws, _idx, scenario| {
                let solve = self.solver.solve_with_ambient(
                    operator,
                    ambient_k(scenario),
                    ws,
                    |block, t| power(scenario, block, t),
                );
                match solve {
                    Ok(()) => SweepOutcome::Converged {
                        block_temperatures: ws.temperatures().to_vec(),
                        block_powers: ws.powers().to_vec(),
                        iterations: ws.iterations(),
                    },
                    Err(err) => SweepOutcome::from_error(err),
                }
            },
        );
        SweepReport { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::transient::DriveWaveform;

    fn engine() -> SweepEngine {
        SweepEngine::new(Floorplan::paper_three_blocks())
    }

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .vdd_scales(vec![0.9, 1.0, 1.1])
            .activities(vec![0.5, 1.0])
            .ambients_k(vec![300.0, 340.0])
    }

    #[test]
    fn grid_enumeration_is_cartesian_and_ordered() {
        let grid = small_grid();
        assert_eq!(grid.len(), 12);
        let scenarios = grid.scenarios(300.0);
        assert_eq!(scenarios.len(), 12);
        // Vdd innermost.
        assert_eq!(scenarios[0].vdd_scale, 0.9);
        assert_eq!(scenarios[1].vdd_scale, 1.0);
        assert_eq!(scenarios[0].ambient_k, scenarios[5].ambient_k);
        assert_ne!(scenarios[0].ambient_k, scenarios[6].ambient_k);
    }

    #[test]
    fn batched_results_match_one_shot_solves_within_the_ulp_contract() {
        // The GEMM-batched hot path fuses multiply-adds and batches the
        // Eq. 13 exponentials (crate::cosim::batch docs), so it agrees
        // with one-shot solves to ~1e-9 K / 1e-9 relative rather than
        // bit-for-bit; the per-scenario oracle stays exactly comparable.
        let engine = engine().threads(4);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run(&grid, &model);
        assert_eq!(report.len(), grid.len());

        let techs = grid.technologies();
        for (scenario, outcome) in grid.scenarios(300.0).iter().zip(&report.outcomes) {
            // One-shot path: fresh operator, fresh workspace, same ambient.
            let mut solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
            solver.max_iterations = engine.solver().max_iterations;
            let op = solver.operator();
            let mut ws = Workspace::new();
            let one_shot = solver.solve_with_ambient(&op, scenario.ambient_k, &mut ws, |b, t| {
                model.block_power(scenario, &techs[scenario.tech_index], b, t)
            });
            match (one_shot, outcome) {
                (
                    Ok(()),
                    SweepOutcome::Converged {
                        block_temperatures,
                        block_powers,
                        iterations,
                    },
                ) => {
                    assert_eq!(ws.iterations(), *iterations);
                    for (a, b) in ws.temperatures().iter().zip(block_temperatures) {
                        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
                    }
                    for (a, b) in ws.powers().iter().zip(block_powers) {
                        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
                    }
                }
                (Err(e), o) => assert_eq!(&SweepOutcome::from_error(e), o),
                (ok, o) => panic!("mismatched outcomes: {ok:?} vs {o:?}"),
            }
        }
    }

    #[test]
    fn batch_width_does_not_change_results() {
        // Every lane runs the same per-lane operation sequence whatever
        // its batch neighbours, so the width knob is bitwise-invisible.
        let grid = small_grid();
        let e1 = engine().batch_lanes(1);
        let model = e1.uniform_tech_power(0.6, 0.05);
        let narrow = e1.run(&grid, &model);
        let wide = engine().batch_lanes(128).run(&grid, &model);
        assert_eq!(narrow.outcomes, wide.outcomes);
    }

    #[test]
    fn batched_engine_matches_the_per_scenario_oracle() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05).prepared_for(&grid);
        let batched = engine.run(&grid, &model);
        let oracle = engine.run_per_scenario(&grid, &model);
        assert_eq!(batched.len(), oracle.len());
        for (b, o) in batched.outcomes.iter().zip(&oracle.outcomes) {
            match (b, o) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: bt,
                        block_powers: bp,
                        iterations: bi,
                    },
                    SweepOutcome::Converged {
                        block_temperatures: ot,
                        block_powers: op,
                        iterations: oi,
                    },
                ) => {
                    assert_eq!(bi, oi);
                    for (a, b) in bt.iter().zip(ot) {
                        assert!((a - b).abs() < 1e-9);
                    }
                    for (a, b) in bp.iter().zip(op) {
                        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
                    }
                }
                (b, o) => assert_eq!(b, o),
            }
        }
    }

    #[test]
    fn prepared_model_is_bit_identical_to_unprepared() {
        let engine = engine();
        let grid = small_grid();
        let plain = engine.uniform_tech_power(0.6, 0.05);
        let prepared = plain.clone().prepared_for(&grid);
        // Same nominal_off_current call either way: bitwise-equal sweeps.
        assert_eq!(
            engine.run(&grid, &plain).outcomes,
            engine.run(&grid, &prepared).outcomes
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let grid = small_grid();
        let e1 = engine().threads(1);
        let model = e1.uniform_tech_power(0.6, 0.05);
        let serial = e1.run(&grid, &model);
        let parallel = engine().threads(8).run(&grid, &model);
        assert_eq!(serial.outcomes, parallel.outcomes);
    }

    #[test]
    fn runaway_scenarios_are_reported_not_fatal() {
        let engine = engine();
        // Violent feedback for high activity only.
        let scenarios: Vec<f64> = vec![0.1, 50.0, 0.2];
        let report = engine.run_scenarios(
            &scenarios,
            |_| 300.0,
            |&gain, _, t| 0.3 + 0.05 * gain * ((t - 300.0) / 10.0).exp2(),
        );
        assert!(report.outcomes[0].is_converged());
        assert!(matches!(report.outcomes[1], SweepOutcome::Runaway { .. }));
        assert!(report.outcomes[2].is_converged());
        assert_eq!(report.converged_count(), 2);
        assert_eq!(report.runaway_count(), 1);
    }

    #[test]
    fn hotter_ambient_and_higher_vdd_cost_power() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run(&grid, &model);
        let scenarios = grid.scenarios(300.0);
        // Compare matching scenarios differing only in one knob.
        let find = |vdd: f64, act: f64, amb: f64| -> &SweepOutcome {
            let idx = scenarios
                .iter()
                .position(|s| s.vdd_scale == vdd && s.activity == act && s.ambient_k == amb)
                .expect("scenario exists");
            &report.outcomes[idx]
        };
        let base = find(1.0, 1.0, 300.0).total_power().unwrap();
        let high_vdd = find(1.1, 1.0, 300.0).total_power().unwrap();
        let hot = find(1.0, 1.0, 340.0).total_power().unwrap();
        assert!(high_vdd > base);
        assert!(hot > base, "leakage grows with ambient: {hot} vs {base}");
    }

    #[test]
    fn empty_axes_yield_an_empty_grid_not_a_decode_panic() {
        // Regression: an explicitly empty axis used to be rejected by a
        // builder assert; sweeping a grid someone constructed with zero
        // points must simply do nothing.
        let empty_vdd = ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(Vec::new());
        assert_eq!(empty_vdd.len(), 0);
        assert!(empty_vdd.is_empty());
        assert_eq!(empty_vdd.iter_scenarios(300.0).count(), 0);
        assert!(empty_vdd.scenarios(300.0).is_empty());

        let empty_activity =
            ScenarioGrid::new(vec![Technology::cmos_120nm()]).activities(Vec::new());
        assert!(empty_activity.is_empty());
        // Explicitly empty ambient axis kills the grid; an unset one is
        // a single implicit point.
        let empty_ambient =
            ScenarioGrid::new(vec![Technology::cmos_120nm()]).ambients_k(Vec::new());
        assert!(empty_ambient.is_empty());
        let unset_ambient = ScenarioGrid::new(vec![Technology::cmos_120nm()]);
        assert_eq!(unset_ambient.len(), 1);
        let empty_tech = ScenarioGrid::new(Vec::new());
        assert!(empty_tech.is_empty());

        // Both engine paths produce a clean empty report.
        let engine = engine();
        let model = engine.uniform_tech_power(0.6, 0.05);
        for grid in [&empty_vdd, &empty_activity, &empty_ambient, &empty_tech] {
            let batched = engine.run(grid, &model);
            assert!(batched.is_empty(), "{}", batched);
            let oracle = engine.run_per_scenario(grid, &model);
            assert!(oracle.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "scenario index out of range")]
    fn empty_grid_random_access_panics_cleanly() {
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(Vec::new());
        let _ = grid.scenario(0, 300.0);
    }

    fn transient_config(engine: &SweepEngine) -> TransientConfig {
        let caps = silicon_block_capacitances(engine.solver().floorplan());
        let tmin = (0..caps.len())
            .map(|i| engine.operator().influence()[(i, i)] * caps[i])
            .fold(f64::INFINITY, f64::min);
        TransientConfig::new(tmin / 10.0, 300).record_stride(50)
    }

    #[test]
    fn transient_sweep_matches_the_per_scenario_oracle() {
        let engine = engine().threads(4);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05).prepared_for(&grid);
        let cfg = transient_config(&engine).waveforms(vec![
            DriveWaveform::Step,
            DriveWaveform::SquareWave {
                frequency: 3.0,
                duty: 0.5,
            },
        ]);
        let batched = engine.run_transient(&grid, &model, &cfg).expect("valid");
        let oracle = engine
            .run_transient_per_scenario(&grid, &model, &cfg)
            .expect("valid");
        assert_eq!(batched.len(), grid.len() * 2);
        assert_eq!(batched.len(), oracle.len());
        assert_eq!(batched.finished_count(), batched.len());
        for (b, o) in batched.outcomes.iter().zip(&oracle.outcomes) {
            let (bt, ot) = (
                b.final_temperatures().expect("finished"),
                o.final_temperatures().expect("finished"),
            );
            for (x, y) in bt.iter().zip(ot) {
                assert!((x - y).abs() < 1e-9, "{x} vs {y}");
            }
            assert!((b.peak_temperature().unwrap() - o.peak_temperature().unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_results_do_not_depend_on_threads_or_batch_width() {
        let grid = small_grid();
        let e1 = engine().threads(1).batch_lanes(1);
        let model = e1.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&e1);
        let narrow = e1.run_transient(&grid, &model, &cfg).expect("valid");
        let wide = engine()
            .threads(8)
            .batch_lanes(64)
            .run_transient(&grid, &model, &cfg)
            .expect("valid");
        assert_eq!(narrow.outcomes, wide.outcomes);
    }

    #[test]
    fn transient_sweep_matches_the_rk4_reference_within_tolerance() {
        // Two discretizations of the same ODE; with dt = tau_min/10 the
        // trapezoidal O(dt^2) term dominates the gap (documented in
        // docs/PERFORMANCE.md as <= 1e-3 of the temperature rise).
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(vec![0.9, 1.1]);
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&engine);
        let implicit = engine.run_transient(&grid, &model, &cfg).expect("valid");
        let explicit = engine
            .run_transient_rk4(&grid, &model, &cfg)
            .expect("valid");
        for (i, (a, b)) in implicit.outcomes.iter().zip(&explicit.outcomes).enumerate() {
            let (at, bt) = (
                a.final_temperatures().expect("finished"),
                b.final_temperatures().expect("finished"),
            );
            for (x, y) in at.iter().zip(bt) {
                let rise = (y - 300.0).abs().max(1e-3);
                assert!((x - y).abs() <= 1e-3 * rise, "transient {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn transient_square_wave_peaks_below_the_step_drive() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]);
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&engine).waveforms(vec![
            DriveWaveform::Step,
            DriveWaveform::Trace {
                times: vec![0.0, 1.0],
                scales: vec![0.3, 0.3],
            },
        ]);
        let report = engine.run_transient(&grid, &model, &cfg).expect("valid");
        let step_peak = report.outcome(0, 0).peak_temperature().expect("finished");
        let derated_peak = report.outcome(0, 1).peak_temperature().expect("finished");
        assert!(step_peak > derated_peak, "{step_peak} vs {derated_peak}");
    }

    #[test]
    fn transient_on_an_empty_grid_is_a_clean_no_op() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(Vec::new());
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&engine);
        let report = engine.run_transient(&grid, &model, &cfg).expect("valid");
        assert!(report.is_empty());
        assert_eq!(report.max_peak_temperature(), None);
    }

    #[test]
    fn transient_config_errors_are_typed() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]);
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = TransientConfig::new(0.0, 10);
        assert!(matches!(
            engine.run_transient(&grid, &model, &cfg),
            Err(TransientError::BadStep { .. })
        ));
        let cfg = TransientConfig::new(1e-6, 10).capacitances(vec![1.0]);
        assert!(matches!(
            engine.run_transient(&grid, &model, &cfg),
            Err(TransientError::DimensionMismatch { .. })
        ));
        // A malformed trace is a typed error at the API boundary, never
        // a panic inside a sweep worker.
        let cfg = TransientConfig::new(1e-6, 10).waveforms(vec![
            DriveWaveform::Step,
            DriveWaveform::Trace {
                times: vec![0.0, 1.0],
                scales: vec![0.5],
            },
        ]);
        assert!(matches!(
            engine.run_transient(&grid, &model, &cfg),
            Err(TransientError::BadWaveform { index: 1, .. })
        ));
    }

    #[test]
    fn shared_operator_engine_is_bit_identical_to_self_building() {
        let fresh = engine();
        let grid = small_grid();
        let model = fresh.uniform_tech_power(0.6, 0.05);
        let baseline = fresh.run(&grid, &model);

        // Hand the prebuilt operator to a second engine (the fleet-cache
        // construction path): bitwise the same sweep.
        let shared = SweepEngine::with_operator(
            ElectroThermalSolver::new(Floorplan::paper_three_blocks()),
            fresh.shared_operator(),
        );
        assert_eq!(baseline.outcomes, shared.run(&grid, &model).outcomes);
    }

    #[test]
    #[should_panic(expected = "operator/solver fingerprint mismatch")]
    fn mismatched_shared_operator_is_rejected() {
        let donor = SweepEngine::new(
            ptherm_floorplan::generator::tiled(
                ptherm_floorplan::ChipGeometry::paper_1mm(),
                2,
                2,
                0.05,
                0.05,
                1,
            )
            .expect("valid tiling"),
        );
        let _ = SweepEngine::with_operator(
            ElectroThermalSolver::new(Floorplan::paper_three_blocks()),
            donor.shared_operator(),
        );
    }

    #[test]
    fn cached_propagator_transient_is_bit_identical_to_self_factoring() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&engine)
            .waveforms(vec![DriveWaveform::Step, DriveWaveform::paper_gating()]);
        let top = engine.transient_operator(&cfg).expect("valid");
        let cached = engine
            .run_transient_with(&grid, &model, &cfg, &top)
            .expect("valid");
        let fresh = engine.run_transient(&grid, &model, &cfg).expect("valid");
        assert_eq!(cached.outcomes, fresh.outcomes);
    }

    #[test]
    #[should_panic(expected = "propagator/config fingerprint mismatch")]
    fn mismatched_propagator_is_rejected() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = transient_config(&engine);
        let top = engine.transient_operator(&cfg).expect("valid");
        // Same floorplan, different dt: the factored propagator no
        // longer matches the config.
        let other = TransientConfig::new(cfg.dt * 2.0, cfg.steps);
        let _ = engine.run_transient_with(&grid, &model, &other, &top);
    }

    #[test]
    fn report_display_summarizes() {
        let engine = engine();
        let report = engine.run_scenarios(&[1.0f64], |_| 300.0, |_, _, _| 0.1);
        let s = format!("{report}");
        assert!(s.contains("1 scenarios"));
        assert!(s.contains("1 converged"));
    }

    #[test]
    fn map_sweep_rides_the_batched_picard_and_renders_per_scenario_maps() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run_map(&grid, &model, 16, 16);
        assert_eq!(report.len(), grid.len());
        assert_eq!((report.nx, report.ny), (16, 16));
        // Block-level outcomes are exactly the plain sweep's outcomes.
        let sweep = engine.run(&grid, &model);
        for (m, s) in report.outcomes.iter().zip(&sweep.outcomes) {
            assert_eq!(&m.outcome, s);
            assert_eq!(m.map_k.is_some(), s.is_converged());
        }
        // Each converged map is consistent with its scenario: sits above
        // its ambient and peaks at least at the hottest block centre's
        // tile value.
        for (i, outcome) in report.outcomes.iter().enumerate() {
            let Some(map) = outcome.map_k.as_deref() else {
                continue;
            };
            let ambient = grid.scenario(i, 300.0).ambient_k;
            assert!(map.iter().all(|&t| t > ambient));
        }
        assert!(report.max_map_temperature().unwrap() > 300.0);
        assert_eq!(report.converged_count(), sweep.converged_count());
    }

    #[test]
    fn map_sweep_is_bitwise_invariant_to_threads_and_batch_width() {
        let grid = small_grid();
        let e1 = engine().threads(1).batch_lanes(1);
        let model = e1.uniform_tech_power(0.6, 0.05);
        let narrow = e1.run_map(&grid, &model, 12, 12);
        for (threads, lanes) in [(2, 64), (8, 128)] {
            let wide = engine()
                .threads(threads)
                .batch_lanes(lanes)
                .run_map(&grid, &model, 12, 12);
            for (a, b) in narrow.outcomes.iter().zip(&wide.outcomes) {
                assert_eq!(a.outcome, b.outcome, "threads {threads} lanes {lanes}");
                assert_eq!(a.map_k, b.map_k, "threads {threads} lanes {lanes}");
            }
        }
    }

    #[test]
    fn cached_map_operator_is_bit_identical_to_self_building() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let map_op = engine.map_operator(10, 8);
        let cached = engine.run_map_with(&grid, &model, &map_op);
        let fresh = engine.run_map(&grid, &model, 10, 8);
        for (a, b) in cached.outcomes.iter().zip(&fresh.outcomes) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.map_k, b.map_k);
        }
    }

    #[test]
    #[should_panic(expected = "map operator/solver fingerprint mismatch")]
    fn mismatched_map_operator_is_rejected() {
        let donor = SweepEngine::new(
            ptherm_floorplan::generator::tiled(
                ptherm_floorplan::ChipGeometry::paper_1mm(),
                2,
                2,
                0.05,
                0.05,
                1,
            )
            .expect("valid tiling"),
        );
        let map_op = donor.map_operator(8, 8);
        let engine = engine();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let _ = engine.run_map_with(&small_grid(), &model, &map_op);
    }

    #[test]
    fn map_sweep_on_an_empty_grid_is_a_clean_no_op() {
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).vdd_scales(Vec::new());
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run_map(&grid, &model, 8, 8);
        assert!(report.is_empty());
        assert_eq!(report.max_map_temperature(), None);
        assert!(format!("{report}").contains("0 scenarios"));
    }

    #[test]
    fn runaway_scenarios_carry_no_map() {
        // A violent feedback has no fixed point: the map sweep reports
        // the runaway outcome with no rendered map, others still render.
        let engine = engine();
        let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()]).activities(vec![1.0, 400.0]);
        let model = engine.uniform_tech_power(0.6, 0.4);
        let report = engine.run_map(&grid, &model, 8, 8);
        assert_eq!(report.len(), 2);
        assert!(report.outcomes[0].map_k.is_some());
        assert!(matches!(
            report.outcomes[1].outcome,
            SweepOutcome::Runaway { .. }
        ));
        assert!(report.outcomes[1].map_k.is_none());
        assert_eq!(report.converged_count(), 1);
        assert!(report.map(0).is_some());
        assert!(report.map(1).is_none());
    }

    fn aligned_plan(nx: usize, ny: usize) -> Floorplan {
        ptherm_floorplan::generator::tile_aligned(
            ptherm_floorplan::ChipGeometry::paper_1mm(),
            nx,
            ny,
            |i| 0.003 + 0.0002 * (i % 5) as f64,
        )
        .expect("valid plan")
    }

    /// At least [`SPECTRAL_AUTO_THRESHOLD`] blocks, but one centre is
    /// off every uniform grid up to the spectral inference cap.
    fn incompatible_big_plan() -> Floorplan {
        let geometry = ptherm_floorplan::ChipGeometry::paper_1mm();
        let (nx, ny) = (32usize, 16usize);
        let (px, py) = (geometry.width / nx as f64, geometry.length / ny as f64);
        let mut blocks = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                let skew = if (i, j) == (0, 0) { 0.123_456_7 } else { 0.0 };
                blocks.push(ptherm_floorplan::Block::new(
                    format!("b{i}_{j}"),
                    (i as f64 + 0.5 + skew) * px,
                    (j as f64 + 0.5) * py,
                    px * 0.5,
                    py * 0.5,
                    0.001,
                ));
            }
        }
        Floorplan::new(geometry, blocks).expect("valid plan")
    }

    #[test]
    fn auto_backend_resolves_by_block_count_and_grid_compatibility() {
        // Below the threshold: dense, even on a spectral-friendly plan.
        assert_eq!(engine().resolved_backend(), SweepBackend::Dense);
        assert_eq!(
            SweepEngine::new(aligned_plan(8, 8)).resolved_backend(),
            SweepBackend::Dense
        );
        // At the threshold on a coincident grid: spectral.
        let big = SweepEngine::new(aligned_plan(32, 16));
        assert_eq!(
            big.solver().floorplan().blocks().len(),
            SPECTRAL_AUTO_THRESHOLD
        );
        assert_eq!(big.resolved_backend(), SweepBackend::Spectral);
        // A big plan with no coincident grid falls back to dense.
        let off_grid = SweepEngine::new(incompatible_big_plan());
        assert_eq!(off_grid.resolved_backend(), SweepBackend::Dense);
        // Explicit overrides pass through untouched.
        assert_eq!(
            big.backend(SweepBackend::Dense).resolved_backend(),
            SweepBackend::Dense
        );
        assert_eq!(
            engine().backend(SweepBackend::Spectral).resolved_backend(),
            SweepBackend::Spectral
        );
        assert_eq!(SweepBackend::Auto.name(), "auto");
        assert_eq!(format!("{}", SweepBackend::Spectral), "spectral");
    }

    #[test]
    fn spectral_and_dense_engine_sweeps_agree() {
        let grid = small_grid();
        let dense = SweepEngine::new(aligned_plan(8, 8)).backend(SweepBackend::Dense);
        let spectral = SweepEngine::new(aligned_plan(8, 8)).backend(SweepBackend::Spectral);
        let model = dense.uniform_tech_power(0.6, 0.002);
        let d = dense.run(&grid, &model);
        let s = spectral.run(&grid, &model);
        assert_eq!(d.len(), s.len());
        for (a, b) in d.outcomes.iter().zip(&s.outcomes) {
            match (a, b) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: dt,
                        block_powers: dp,
                        iterations: di,
                    },
                    SweepOutcome::Converged {
                        block_temperatures: st,
                        block_powers: sp,
                        iterations: si,
                    },
                ) => {
                    assert_eq!(di, si);
                    for (x, y) in dt.iter().zip(st) {
                        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
                    }
                    for (x, y) in dp.iter().zip(sp) {
                        assert!((x - y).abs() < 1e-6 * y.abs().max(1.0), "{x} vs {y}");
                    }
                }
                (a, b) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{a:?} vs {b:?}"
                ),
            }
        }
    }

    #[test]
    #[should_panic(expected = "spectral backend requested on an incompatible floorplan")]
    fn explicit_spectral_on_an_incompatible_floorplan_panics() {
        let engine = engine().backend(SweepBackend::Spectral);
        let model = engine.uniform_tech_power(0.6, 0.05);
        let _ = engine.run(&small_grid(), &model);
    }

    #[test]
    fn a_shared_spectral_operator_is_adopted_and_pins_the_backend() {
        let operator = Arc::new(SpectralOperator::build(&aligned_plan(8, 8)).expect("compatible"));
        let engine = SweepEngine::with_spectral_operator(
            ElectroThermalSolver::new(aligned_plan(8, 8)),
            Arc::clone(&operator),
        );
        assert_eq!(engine.resolved_backend(), SweepBackend::Spectral);
        assert!(Arc::ptr_eq(
            engine.spectral_operator().expect("adopted"),
            &operator
        ));
        // The adopted operator is bit-identical to a self-built one.
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.002);
        let adopted = engine.run(&grid, &model);
        let fresh = SweepEngine::new(aligned_plan(8, 8))
            .backend(SweepBackend::Spectral)
            .run(&grid, &model);
        assert_eq!(adopted.outcomes, fresh.outcomes);
    }

    #[test]
    #[should_panic(expected = "spectral operator/solver fingerprint mismatch")]
    fn mismatched_spectral_operator_is_rejected() {
        let operator = SpectralOperator::build(&aligned_plan(8, 8)).expect("compatible");
        let _ = SweepEngine::with_spectral_operator(
            ElectroThermalSolver::new(aligned_plan(6, 6)),
            Arc::new(operator),
        );
    }

    #[test]
    fn unified_sweep_matches_legacy_wrappers_bitwise() {
        let engine = engine().threads(2);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let legacy = engine.run(&grid, &model);
        // Defaults, explicit operator replay, and an explicit backend
        // pin must all produce the same bits on this dense engine.
        let unified = engine.sweep(&grid, &model, RunOptions::new());
        assert_eq!(legacy.outcomes, unified.outcomes);
        let shared = engine.shared_operator();
        let replayed = engine.sweep(&grid, &model, RunOptions::new().operator(&shared));
        assert_eq!(legacy.outcomes, replayed.outcomes);
        let pinned = engine.sweep(
            &grid,
            &model,
            RunOptions::new().backend(SweepBackend::Dense),
        );
        assert_eq!(legacy.outcomes, pinned.outcomes);
    }

    #[test]
    fn per_call_backend_override_resolves_without_reconfiguring() {
        // An Auto engine on a large aligned plan resolves spectral; the
        // per-call Dense override must force the dense path for that
        // call only, leaving the engine's own resolution untouched.
        let engine = SweepEngine::new(aligned_plan(32, 16));
        assert_eq!(engine.resolved_backend(), SweepBackend::Spectral);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.002);
        let dense = engine.sweep(
            &grid,
            &model,
            RunOptions::new().backend(SweepBackend::Dense),
        );
        let dense_engine = SweepEngine::new(aligned_plan(32, 16)).backend(SweepBackend::Dense);
        let oracle = dense_engine.run(&grid, &model);
        assert_eq!(dense.outcomes, oracle.outcomes);
        assert_eq!(engine.resolved_backend(), SweepBackend::Spectral);
    }

    #[test]
    fn unified_map_matches_legacy_wrappers_bitwise() {
        let engine = engine().threads(2);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let map_op = engine.map_operator(8, 6);
        let legacy = engine.run_map_with(&grid, &model, &map_op);
        let unified = engine.map(&grid, &model, 8, 6, RunOptions::new().operator(&map_op));
        let self_built = engine.map(&grid, &model, 8, 6, RunOptions::new());
        for (a, b) in legacy.outcomes.iter().zip(&unified.outcomes) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.map_k, b.map_k);
        }
        for (a, b) in legacy.outcomes.iter().zip(&self_built.outcomes) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.map_k, b.map_k);
        }
    }

    #[test]
    fn unified_transient_matches_legacy_wrappers_bitwise() {
        let engine = engine().threads(2);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let cfg = TransientConfig::new(1e-4, 32)
            .waveforms(vec![DriveWaveform::Step, DriveWaveform::paper_gating()]);
        let legacy = engine.run_transient(&grid, &model, &cfg).expect("legacy");
        let unified = engine
            .transient(&grid, &model, &cfg, RunOptions::new())
            .expect("unified");
        assert_eq!(legacy.outcomes, unified.outcomes);
        let top = engine.transient_operator(&cfg).expect("operator");
        let replayed = engine
            .transient(&grid, &model, &cfg, RunOptions::new().operator(&top))
            .expect("replayed");
        assert_eq!(legacy.outcomes, replayed.outcomes);
    }

    #[test]
    #[should_panic(expected = "operator/solver fingerprint mismatch")]
    fn unified_sweep_rejects_mismatched_operator() {
        let foreign = SweepEngine::new(aligned_plan(8, 8)).shared_operator();
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let _ = engine.sweep(&grid, &model, RunOptions::new().operator(&foreign));
    }

    #[test]
    #[should_panic(expected = "map operator grid mismatch")]
    fn unified_map_rejects_mismatched_grid_dims() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let map_op = engine.map_operator(8, 6);
        let _ = engine.map(&grid, &model, 6, 8, RunOptions::new().operator(&map_op));
    }
}
