//! Batched, parallel electro-thermal sweeps over scenario grids.
//!
//! The paper's pitch is that one concurrent estimate costs microseconds;
//! the production question is throughput over *many* estimates — supply
//! corners × activity levels × ambient temperatures × technology nodes
//! for one floorplan. Two structural facts make that cheap:
//!
//! 1. the thermal influence operator is fixed per floorplan — the
//!    [`ThermalOperator`] is computed **once** and shared read-only by
//!    every scenario (and every thread), and
//! 2. each scenario solve is independent — a scoped-thread pool fans them
//!    out, one reusable [`Workspace`] per worker, so the steady-state
//!    inner loop allocates nothing.
//!
//! [`SweepEngine`] packages both. Scenario solves go through exactly the
//! same [`ElectroThermalSolver::solve_with_ambient`] iteration as one-shot
//! [`ElectroThermalSolver::solve`] calls, so batched results are
//! **bit-identical** to one-shot results — asserted by this module's
//! tests and the `sweep` benchmark.
//!
//! # Example: a Vdd × activity grid on the paper floorplan
//!
//! ```
//! use ptherm_core::cosim::sweep::{ScenarioGrid, SweepEngine};
//! use ptherm_floorplan::Floorplan;
//! use ptherm_tech::Technology;
//!
//! let engine = SweepEngine::new(Floorplan::paper_three_blocks());
//! let grid = ScenarioGrid::new(vec![Technology::cmos_120nm()])
//!     .vdd_scales(vec![0.9, 1.0, 1.1])
//!     .activities(vec![0.5, 1.0])
//!     .ambients_k(vec![300.0, 350.0]);
//! let model = engine.uniform_tech_power(0.25, 0.02);
//! let report = engine.run(&grid, &model);
//! assert_eq!(report.len(), 12);
//! assert!(report.converged_count() > 0);
//! ```

use crate::cosim::{CosimError, ElectroThermalSolver, ThermalOperator, Workspace};
use ptherm_floorplan::Floorplan;
use ptherm_tech::{Polarity, Technology};
use std::fmt;

/// One point of a sweep: the knobs the paper's models expose per run.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Supply scale relative to the technology's nominal `V_DD`.
    pub vdd_scale: f64,
    /// Switching-activity multiplier on the baseline dynamic power.
    pub activity: f64,
    /// Ambient (heat-sink) temperature, K.
    pub ambient_k: f64,
    /// Index into the grid's technology list.
    pub tech_index: usize,
}

/// Cartesian scenario grid: Vdd scales × activities × ambients × nodes.
///
/// Scenarios enumerate in row-major order with the technology axis
/// outermost and the Vdd axis innermost.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    technologies: Vec<Technology>,
    vdd_scales: Vec<f64>,
    activities: Vec<f64>,
    ambients_k: Vec<f64>,
}

impl ScenarioGrid {
    /// Grid over `technologies` with every other axis at its neutral
    /// single point: scale 1, activity 1, and — until
    /// [`Self::ambients_k`] is called — the ambient the floorplan itself
    /// declares (its sink temperature), so an engine sweep with no
    /// ambient axis matches one-shot solves on the same floorplan.
    ///
    /// # Panics
    ///
    /// Panics if `technologies` is empty.
    pub fn new(technologies: Vec<Technology>) -> Self {
        assert!(!technologies.is_empty(), "grid needs at least one node");
        ScenarioGrid {
            technologies,
            vdd_scales: vec![1.0],
            activities: vec![1.0],
            ambients_k: Vec::new(),
        }
    }

    /// Replaces the supply-scale axis.
    #[must_use]
    pub fn vdd_scales(mut self, scales: Vec<f64>) -> Self {
        assert!(!scales.is_empty(), "empty Vdd axis");
        self.vdd_scales = scales;
        self
    }

    /// Replaces the activity axis.
    #[must_use]
    pub fn activities(mut self, activities: Vec<f64>) -> Self {
        assert!(!activities.is_empty(), "empty activity axis");
        self.activities = activities;
        self
    }

    /// Replaces the ambient-temperature axis.
    #[must_use]
    pub fn ambients_k(mut self, ambients: Vec<f64>) -> Self {
        assert!(!ambients.is_empty(), "empty ambient axis");
        self.ambients_k = ambients;
        self
    }

    /// The technology list scenarios index into.
    pub fn technologies(&self) -> &[Technology] {
        &self.technologies
    }

    /// Number of scenarios in the grid.
    pub fn len(&self) -> usize {
        self.technologies.len()
            * self.vdd_scales.len()
            * self.activities.len()
            * self.ambients_k.len().max(1)
    }

    /// True when any axis is empty (cannot happen through the builders).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes every scenario in enumeration order.
    /// `default_ambient_k` fills the ambient axis when none was set —
    /// [`SweepEngine::run`] passes the floorplan's sink temperature.
    pub fn scenarios(&self, default_ambient_k: f64) -> Vec<Scenario> {
        let ambients = if self.ambients_k.is_empty() {
            vec![default_ambient_k]
        } else {
            self.ambients_k.clone()
        };
        let mut out = Vec::with_capacity(self.len());
        for tech_index in 0..self.technologies.len() {
            for &ambient_k in &ambients {
                for &activity in &self.activities {
                    for &vdd_scale in &self.vdd_scales {
                        out.push(Scenario {
                            vdd_scale,
                            activity,
                            ambient_k,
                            tech_index,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Per-block power as a function of scenario and temperature — the model
/// the engine evaluates inside each Picard iteration.
pub trait ScenarioPowerModel: Sync {
    /// Power of `block` at junction temperature `temperature_k` under
    /// `scenario`, W. `tech` is the scenario's resolved technology kit.
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64;
}

impl<F> ScenarioPowerModel for F
where
    F: Fn(&Scenario, &Technology, usize, f64) -> f64 + Sync,
{
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        self(scenario, tech, block, temperature_k)
    }
}

/// The default physical model: per-block dynamic and reference leakage
/// budgets scaled by the scenario knobs and the technology's own
/// OFF-current temperature law (the Eq. 13 exponential family).
///
/// * dynamic: `activity · vdd_scale² · P_dyn[i]` (the `α f C V²` law),
/// * static: `vdd_scale · P_leak[i] · I_off(T) / I_off(T_ref)`, where
///   `I_off` is [`Technology::nominal_off_current`] — carrying the
///   paper's exponential temperature dependence into the feedback loop.
#[derive(Debug, Clone)]
pub struct ScaledTechPower {
    /// Per-block dynamic power at activity 1 and nominal Vdd, W.
    pub dynamic_w: Vec<f64>,
    /// Per-block leakage power at `T_ref` and nominal Vdd, W.
    pub leakage_ref_w: Vec<f64>,
    /// Reference OFF currents `I_off(T_ref)` per grid technology (keyed
    /// by the parameters the computation reads, so a cache prepared for
    /// one grid cannot be silently misapplied to another), hoisted out
    /// of the Picard hot loop by [`Self::prepared_for`]; empty =
    /// compute on the fly.
    i_ref_per_tech: Vec<(IRefKey, f64)>,
}

/// The exact inputs [`Technology::nominal_off_current`] reads for the
/// reference OFF current — a cache entry is valid only for a bitwise
/// match, whatever the technology is named.
#[derive(Debug, Clone, PartialEq)]
struct IRefKey {
    w_min: f64,
    l: f64,
    i0: f64,
    n: f64,
    vt0: f64,
    k_t: f64,
    t_ref: f64,
    vdd: f64,
}

impl IRefKey {
    fn of(tech: &Technology) -> Self {
        IRefKey {
            w_min: tech.nmos.w_min,
            l: tech.nmos.l,
            i0: tech.nmos.i0,
            n: tech.nmos.n,
            vt0: tech.nmos.vt0,
            k_t: tech.nmos.k_t,
            t_ref: tech.t_ref,
            vdd: tech.vdd,
        }
    }
}

impl ScaledTechPower {
    /// Budgets proportional to block areas: the floorplan's total dynamic
    /// and leakage budgets spread by area share — the natural default when
    /// per-block netlists are not available.
    pub fn area_weighted(
        floorplan: &Floorplan,
        total_dynamic_w: f64,
        total_leakage_w: f64,
    ) -> Self {
        let total_area: f64 = floorplan.blocks().iter().map(|b| b.area()).sum();
        let share = |area: f64| {
            if total_area > 0.0 {
                area / total_area
            } else {
                0.0
            }
        };
        ScaledTechPower {
            dynamic_w: floorplan
                .blocks()
                .iter()
                .map(|b| total_dynamic_w * share(b.area()))
                .collect(),
            leakage_ref_w: floorplan
                .blocks()
                .iter()
                .map(|b| total_leakage_w * share(b.area()))
                .collect(),
            i_ref_per_tech: Vec::new(),
        }
    }

    /// Precomputes the per-technology reference OFF currents for `grid`,
    /// removing the only scenario-invariant evaluation from the Picard
    /// hot loop. Unprepared models stay correct — they just recompute
    /// `I_off(T_ref)` per call — and a cache entry is only used when the
    /// scenario technology's parameters match the ones it was computed
    /// from, so running a model prepared for one grid against another
    /// falls back to the per-call computation instead of scaling by the
    /// wrong reference.
    #[must_use]
    pub fn prepared_for(mut self, grid: &ScenarioGrid) -> Self {
        self.i_ref_per_tech = grid
            .technologies()
            .iter()
            .map(|t| {
                (
                    IRefKey::of(t),
                    t.nominal_off_current(Polarity::Nmos, t.nmos.w_min, t.t_ref),
                )
            })
            .collect();
        self
    }
}

impl ScenarioPowerModel for ScaledTechPower {
    fn block_power(
        &self,
        scenario: &Scenario,
        tech: &Technology,
        block: usize,
        temperature_k: f64,
    ) -> f64 {
        let dynamic =
            scenario.activity * scenario.vdd_scale * scenario.vdd_scale * self.dynamic_w[block];
        let i_ref = match self.i_ref_per_tech.get(scenario.tech_index) {
            Some((key, i_ref)) if *key == IRefKey::of(tech) => *i_ref,
            _ => tech.nominal_off_current(Polarity::Nmos, tech.nmos.w_min, tech.t_ref),
        };
        let i_t = tech.nominal_off_current(Polarity::Nmos, tech.nmos.w_min, temperature_k);
        let stat = scenario.vdd_scale * self.leakage_ref_w[block] * (i_t / i_ref);
        dynamic + stat
    }
}

/// Outcome of one scenario solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepOutcome {
    /// The fixed point was found.
    Converged {
        /// Block temperatures at the operating point, K.
        block_temperatures: Vec<f64>,
        /// Block powers at the operating point, W.
        block_powers: Vec<f64>,
        /// Picard iterations used.
        iterations: usize,
    },
    /// No stable operating point exists (thermal runaway).
    Runaway {
        /// Iteration at which the ceiling was crossed.
        iteration: usize,
        /// Hottest block temperature reached, K.
        temperature: f64,
    },
    /// Iteration budget exhausted.
    NotConverged {
        /// Last max block-temperature change, K.
        last_delta: f64,
    },
    /// The power model returned a non-finite or negative value.
    BadPower {
        /// Offending block.
        block: usize,
        /// Offending value.
        power: f64,
    },
}

impl SweepOutcome {
    /// True for [`SweepOutcome::Converged`].
    pub fn is_converged(&self) -> bool {
        matches!(self, SweepOutcome::Converged { .. })
    }

    /// Peak block temperature for converged points, K.
    pub fn peak_temperature(&self) -> Option<f64> {
        match self {
            SweepOutcome::Converged {
                block_temperatures, ..
            } => crate::cosim::operator::max_temperature(block_temperatures),
            _ => None,
        }
    }

    /// Total power for converged points, W.
    pub fn total_power(&self) -> Option<f64> {
        match self {
            SweepOutcome::Converged { block_powers, .. } => Some(block_powers.iter().sum()),
            _ => None,
        }
    }

    fn from_error(err: CosimError) -> Self {
        match err {
            CosimError::ThermalRunaway {
                iteration,
                temperature,
            } => SweepOutcome::Runaway {
                iteration,
                temperature,
            },
            CosimError::NotConverged { last_delta } => SweepOutcome::NotConverged { last_delta },
            CosimError::BadPower { block, power } => SweepOutcome::BadPower { block, power },
        }
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Failure arms delegate to CosimError so the wording lives once.
        match self {
            SweepOutcome::Converged { iterations, .. } => write!(
                f,
                "converged in {iterations} iterations (peak {:.2} K, {:.3} W)",
                self.peak_temperature().unwrap_or(f64::NAN),
                self.total_power().unwrap_or(f64::NAN)
            ),
            SweepOutcome::Runaway {
                iteration,
                temperature,
            } => CosimError::ThermalRunaway {
                iteration: *iteration,
                temperature: *temperature,
            }
            .fmt(f),
            SweepOutcome::NotConverged { last_delta } => CosimError::NotConverged {
                last_delta: *last_delta,
            }
            .fmt(f),
            SweepOutcome::BadPower { block, power } => CosimError::BadPower {
                block: *block,
                power: *power,
            }
            .fmt(f),
        }
    }
}

/// Results of one sweep, in scenario enumeration order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One outcome per scenario.
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepReport {
    /// Number of scenarios swept.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Scenarios that reached a fixed point.
    pub fn converged_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_converged()).count()
    }

    /// Scenarios that ran away thermally.
    pub fn runaway_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, SweepOutcome::Runaway { .. }))
            .count()
    }

    /// Total Picard iterations spent on converged scenarios.
    pub fn total_iterations(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| match o {
                SweepOutcome::Converged { iterations, .. } => *iterations,
                _ => 0,
            })
            .sum()
    }

    /// Hottest converged operating point across the sweep, K.
    pub fn max_peak_temperature(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(SweepOutcome::peak_temperature)
            .reduce(f64::max)
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios: {} converged, {} runaway, {} other",
            self.len(),
            self.converged_count(),
            self.runaway_count(),
            self.len() - self.converged_count() - self.runaway_count()
        )
    }
}

/// Batched, parallel sweep driver for one floorplan.
///
/// Construction precomputes the [`ThermalOperator`]; [`SweepEngine::run`]
/// then fans scenarios across worker threads, each owning one reusable
/// [`Workspace`]. See the [module docs](self) for the full picture.
#[derive(Debug)]
pub struct SweepEngine {
    solver: ElectroThermalSolver,
    operator: ThermalOperator,
    threads: usize,
}

impl SweepEngine {
    /// Engine with the default solver configuration and one worker per
    /// available CPU.
    pub fn new(floorplan: Floorplan) -> Self {
        Self::with_solver(ElectroThermalSolver::new(floorplan))
    }

    /// Engine around a configured solver (damping, tolerances, image
    /// orders); the operator is precomputed here, once.
    pub fn with_solver(solver: ElectroThermalSolver) -> Self {
        let operator = solver.operator();
        SweepEngine {
            solver,
            operator,
            threads: ptherm_par::default_threads(),
        }
    }

    /// Sets the worker-thread count (1 = run inline, still batched).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Reconfigures the solver, rebuilding the operator afterwards (image
    /// orders may have changed).
    #[must_use]
    pub fn configure(mut self, f: impl FnOnce(&mut ElectroThermalSolver)) -> Self {
        f(&mut self.solver);
        self.operator = self.solver.operator();
        self
    }

    /// The engine's solver configuration.
    pub fn solver(&self) -> &ElectroThermalSolver {
        &self.solver
    }

    /// The precomputed influence operator.
    pub fn operator(&self) -> &ThermalOperator {
        &self.operator
    }

    /// A ready-made [`ScaledTechPower`] spreading chip-level dynamic and
    /// leakage budgets over this engine's floorplan by block area.
    pub fn uniform_tech_power(
        &self,
        total_dynamic_w: f64,
        total_leakage_w: f64,
    ) -> ScaledTechPower {
        ScaledTechPower::area_weighted(self.solver.floorplan(), total_dynamic_w, total_leakage_w)
    }

    /// Sweeps a scenario grid under a power model. A grid without an
    /// explicit ambient axis inherits this engine's floorplan sink
    /// temperature, matching one-shot solves.
    pub fn run<M: ScenarioPowerModel>(&self, grid: &ScenarioGrid, model: &M) -> SweepReport {
        let scenarios = grid.scenarios(self.operator.sink_temperature());
        let techs = grid.technologies();
        self.run_scenarios(
            &scenarios,
            |s| s.ambient_k,
            |s, block, t| model.block_power(s, &techs[s.tech_index], block, t),
        )
    }

    /// The generic entry point: sweeps arbitrary scenario values with
    /// caller-supplied ambient and power functions. Outcomes preserve
    /// input order.
    pub fn run_scenarios<S, A, P>(&self, scenarios: &[S], ambient_k: A, power: P) -> SweepReport
    where
        S: Sync,
        A: Fn(&S) -> f64 + Sync,
        P: Fn(&S, usize, f64) -> f64 + Sync,
    {
        let outcomes = ptherm_par::par_map_with(
            self.threads,
            scenarios,
            Workspace::new,
            |ws, _idx, scenario| {
                let solve = self.solver.solve_with_ambient(
                    &self.operator,
                    ambient_k(scenario),
                    ws,
                    |block, t| power(scenario, block, t),
                );
                match solve {
                    Ok(()) => SweepOutcome::Converged {
                        block_temperatures: ws.temperatures().to_vec(),
                        block_powers: ws.powers().to_vec(),
                        iterations: ws.iterations(),
                    },
                    Err(err) => SweepOutcome::from_error(err),
                }
            },
        );
        SweepReport { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SweepEngine {
        SweepEngine::new(Floorplan::paper_three_blocks())
    }

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::new(vec![Technology::cmos_120nm()])
            .vdd_scales(vec![0.9, 1.0, 1.1])
            .activities(vec![0.5, 1.0])
            .ambients_k(vec![300.0, 340.0])
    }

    #[test]
    fn grid_enumeration_is_cartesian_and_ordered() {
        let grid = small_grid();
        assert_eq!(grid.len(), 12);
        let scenarios = grid.scenarios(300.0);
        assert_eq!(scenarios.len(), 12);
        // Vdd innermost.
        assert_eq!(scenarios[0].vdd_scale, 0.9);
        assert_eq!(scenarios[1].vdd_scale, 1.0);
        assert_eq!(scenarios[0].ambient_k, scenarios[5].ambient_k);
        assert_ne!(scenarios[0].ambient_k, scenarios[6].ambient_k);
    }

    #[test]
    fn batched_results_are_bit_identical_to_one_shot_solves() {
        let engine = engine().threads(4);
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run(&grid, &model);
        assert_eq!(report.len(), grid.len());

        let techs = grid.technologies();
        for (scenario, outcome) in grid.scenarios(300.0).iter().zip(&report.outcomes) {
            // One-shot path: fresh operator, fresh workspace, same ambient.
            let mut solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
            solver.max_iterations = engine.solver().max_iterations;
            let op = solver.operator();
            let mut ws = Workspace::new();
            let one_shot = solver.solve_with_ambient(&op, scenario.ambient_k, &mut ws, |b, t| {
                model.block_power(scenario, &techs[scenario.tech_index], b, t)
            });
            match (one_shot, outcome) {
                (
                    Ok(()),
                    SweepOutcome::Converged {
                        block_temperatures,
                        block_powers,
                        iterations,
                    },
                ) => {
                    // Bit-identical: same code path, same operator values.
                    assert_eq!(ws.temperatures(), block_temperatures.as_slice());
                    assert_eq!(ws.powers(), block_powers.as_slice());
                    assert_eq!(ws.iterations(), *iterations);
                }
                (Err(e), o) => assert_eq!(&SweepOutcome::from_error(e), o),
                (ok, o) => panic!("mismatched outcomes: {ok:?} vs {o:?}"),
            }
        }
    }

    #[test]
    fn prepared_model_is_bit_identical_to_unprepared() {
        let engine = engine();
        let grid = small_grid();
        let plain = engine.uniform_tech_power(0.6, 0.05);
        let prepared = plain.clone().prepared_for(&grid);
        // Same nominal_off_current call either way: bitwise-equal sweeps.
        assert_eq!(
            engine.run(&grid, &plain).outcomes,
            engine.run(&grid, &prepared).outcomes
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let grid = small_grid();
        let e1 = engine().threads(1);
        let model = e1.uniform_tech_power(0.6, 0.05);
        let serial = e1.run(&grid, &model);
        let parallel = engine().threads(8).run(&grid, &model);
        assert_eq!(serial.outcomes, parallel.outcomes);
    }

    #[test]
    fn runaway_scenarios_are_reported_not_fatal() {
        let engine = engine();
        // Violent feedback for high activity only.
        let scenarios: Vec<f64> = vec![0.1, 50.0, 0.2];
        let report = engine.run_scenarios(
            &scenarios,
            |_| 300.0,
            |&gain, _, t| 0.3 + 0.05 * gain * ((t - 300.0) / 10.0).exp2(),
        );
        assert!(report.outcomes[0].is_converged());
        assert!(matches!(report.outcomes[1], SweepOutcome::Runaway { .. }));
        assert!(report.outcomes[2].is_converged());
        assert_eq!(report.converged_count(), 2);
        assert_eq!(report.runaway_count(), 1);
    }

    #[test]
    fn hotter_ambient_and_higher_vdd_cost_power() {
        let engine = engine();
        let grid = small_grid();
        let model = engine.uniform_tech_power(0.6, 0.05);
        let report = engine.run(&grid, &model);
        let scenarios = grid.scenarios(300.0);
        // Compare matching scenarios differing only in one knob.
        let find = |vdd: f64, act: f64, amb: f64| -> &SweepOutcome {
            let idx = scenarios
                .iter()
                .position(|s| s.vdd_scale == vdd && s.activity == act && s.ambient_k == amb)
                .expect("scenario exists");
            &report.outcomes[idx]
        };
        let base = find(1.0, 1.0, 300.0).total_power().unwrap();
        let high_vdd = find(1.1, 1.0, 300.0).total_power().unwrap();
        let hot = find(1.0, 1.0, 340.0).total_power().unwrap();
        assert!(high_vdd > base);
        assert!(hot > base, "leakage grows with ambient: {hot} vs {base}");
    }

    #[test]
    fn report_display_summarizes() {
        let engine = engine();
        let report = engine.run_scenarios(&[1.0f64], |_| 300.0, |_, _, _| 0.1);
        let s = format!("{report}");
        assert!(s.contains("1 scenarios"));
        assert!(s.contains("1 converged"));
    }
}
