//! Ready-made block power models for the co-simulation loop.
//!
//! The paper's complete flow: per block, dynamic power (transient +
//! short-circuit, §2) plus the temperature-dependent static power of its
//! gates (§2.1), all closed-form. [`CircuitBlockPower`] packages that per
//! block so `ElectroThermalSolver::solve` can be fed with real circuits.

use crate::leakage::circuit::circuit_static_power;
use ptherm_netlist::circuit::Circuit;
use ptherm_tech::Technology;

/// Power model of one block backed by a gate-count circuit.
#[derive(Debug, Clone)]
pub struct CircuitBlockPower {
    /// The circuit occupying the block.
    pub circuit: Circuit,
    /// Technology kit.
    pub tech: Technology,
}

impl CircuitBlockPower {
    /// Total block power at junction temperature `temperature_k`, W:
    /// dynamic (weak temperature dependence through the short-circuit
    /// component) plus static (exponential in temperature).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a non-complementary cell (library
    /// cells never are — this indicates a corrupted circuit).
    pub fn power(&self, temperature_k: f64) -> f64 {
        let dynamic = self.circuit.dynamic_power(&self.tech, temperature_k);
        let stat = circuit_static_power(&self.tech, &self.circuit, temperature_k)
            // lint:allow(panic-freedom) — documented `# Panics` contract: library cells are complementary by construction
            .expect("library cells are complementary");
        dynamic + stat
    }

    /// The static share of the block power at `temperature_k` ∈ [0, 1].
    pub fn static_fraction(&self, temperature_k: f64) -> f64 {
        let stat = circuit_static_power(&self.tech, &self.circuit, temperature_k)
            // lint:allow(panic-freedom) — documented `# Panics` contract: library cells are complementary by construction
            .expect("library cells are complementary");
        stat / self.power(temperature_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> CircuitBlockPower {
        let tech = Technology::cmos_120nm();
        let circuit = Circuit::random("blk", 21, 5_000, 1.5e9, &tech);
        CircuitBlockPower { circuit, tech }
    }

    #[test]
    fn power_increases_with_temperature() {
        let b = block();
        assert!(b.power(400.0) > b.power(300.0));
    }

    #[test]
    fn static_fraction_grows_with_temperature() {
        let b = block();
        let cold = b.static_fraction(300.0);
        let hot = b.static_fraction(400.0);
        assert!(hot > cold);
        assert!((0.0..1.0).contains(&cold));
        assert!((0.0..1.0).contains(&hot));
    }

    #[test]
    fn cosim_with_real_circuit_blocks_converges() {
        use crate::cosim::ElectroThermalSolver;
        use ptherm_floorplan::Floorplan;
        let tech = Technology::cmos_120nm();
        let blocks: Vec<CircuitBlockPower> = (0..3)
            .map(|i| CircuitBlockPower {
                circuit: Circuit::random(format!("b{i}"), i as u64, 20_000, 1.5e9, &tech),
                tech: tech.clone(),
            })
            .collect();
        let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
        let result = solver.solve(|i, t| blocks[i].power(t)).unwrap();
        assert!(result.converged);
        assert!(result.peak_temperature().unwrap() > 300.0);
        assert!(result.total_power() > 0.0);
    }
}
