//! The **concurrent** part of the paper: solving power and temperature
//! together.
//!
//! Static power depends exponentially on temperature (Eq. 13) and
//! temperature depends linearly on dissipated power (Eq. 21); a consistent
//! operating point is a fixed point of the composition. Because both
//! directions are closed-form, one iteration costs microseconds — the
//! paper's pitch is that this loop replaces coupled SPICE + PDE solves.
//!
//! The solver iterates damped Picard:
//!
//! ```text
//! P_i^{(k)} = power_model(i, T_i^{(k)})
//! T^{(k+1)} = T^{(k)} + λ·(Thermal(P^{(k)}) − T^{(k)})
//! ```
//!
//! with divergence detection — when leakage growth outruns the thermal
//! path's ability to shed heat, there **is no** fixed point (thermal
//! runaway), and the solver reports it rather than oscillating forever.
//!
//! # Batching structure
//!
//! The thermal direction is linear in the block powers, so the per-iteration
//! closed-form solve factors into a per-floorplan precomputation
//! ([`ThermalOperator`], the influence matrix of Eq. 21 — itself built
//! row-parallel over an allocation-free image iterator) and an `O(n²)`
//! matrix-vector product. [`ElectroThermalSolver::solve`] builds the
//! operator once per call; [`ElectroThermalSolver::solve_with`] accepts a
//! shared operator and a reusable [`Workspace`] so repeated solves
//! allocate nothing in steady state.
//!
//! Sweeps go one level further: scenario solves are independent *and*
//! structurally identical, so [`BatchedSolver`] advances a whole batch
//! of scenarios per Picard step — one `n×n · n×B` GEMM instead of `B`
//! mat-vecs, batched Eq. 13 exponentials, and lane refill as scenarios
//! resolve. [`SweepEngine::run`] shards a scenario grid across worker
//! threads on that hot path; [`SweepEngine::run_per_scenario`] keeps the
//! one-at-a-time path as the exact oracle. See `docs/PERFORMANCE.md`.
//!
//! Equation-to-code map: see `docs/EQUATIONS.md` at the repository root.

pub mod batch;
pub mod biased;
pub mod envelope;
pub mod operator;
pub mod power_model;
pub mod spectral;
pub mod sweep;
pub mod transient;

pub use batch::{BatchPowerModel, BatchWorkspace, BatchedSolver, LaneStart};
pub use biased::{BiasedTechPower, DEFAULT_BIAS_THETA_K};
pub use envelope::{
    EnvelopeAxis, EnvelopeFiber, EnvelopeReport, EnvelopeSpec, EnvelopeSpecError, FiberBoundary,
};
pub use operator::{operator_fingerprint, ThermalOperator, Workspace};
pub use spectral::{
    infer_grid, spectral_operator_fingerprint, SpectralBatchedSolver, SpectralGridError,
    SpectralOperator, SpectralScratch,
};
pub use sweep::{
    MapOutcome, MapReport, RunOptions, Scenario, ScenarioGrid, SweepBackend, SweepEngine,
    SweepOutcome, SweepReport, SPECTRAL_AUTO_THRESHOLD,
};
pub use transient::{
    propagator_fingerprint, DriveWaveform, TransientBatchedSolver, TransientConfig, TransientError,
    TransientLane, TransientOperator, TransientOutcome, TransientReport, TransientRk4Reference,
    TransientSample, TransientWorkspace,
};

use crate::thermal::ThermalModel;
use ptherm_floorplan::Floorplan;
use std::fmt;

/// Error returned by [`ElectroThermalSolver::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// Temperatures ran away past the safety ceiling: no stable operating
    /// point exists for this power model (thermal runaway).
    ThermalRunaway {
        /// Iteration at which the ceiling was crossed.
        iteration: usize,
        /// Hottest block temperature reached, K.
        temperature: f64,
    },
    /// The iteration budget was exhausted before convergence.
    NotConverged {
        /// Last maximum block-temperature change, K.
        last_delta: f64,
    },
    /// A power model returned a non-finite or negative value.
    BadPower {
        /// Block index.
        block: usize,
        /// Offending value.
        power: f64,
    },
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::ThermalRunaway {
                iteration,
                temperature,
            } => write!(
                f,
                "thermal runaway at iteration {iteration}: {temperature:.1} K exceeds the ceiling"
            ),
            CosimError::NotConverged { last_delta } => {
                write!(
                    f,
                    "co-simulation did not converge (last delta {last_delta:.2e} K)"
                )
            }
            CosimError::BadPower { block, power } => {
                write!(f, "power model returned {power} W for block {block}")
            }
        }
    }
}

impl std::error::Error for CosimError {}

/// Converged electro-thermal operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimResult {
    /// Block-centre temperatures, K.
    pub block_temperatures: Vec<f64>,
    /// Block powers at the fixed point, W.
    pub block_powers: Vec<f64>,
    /// Picard iterations used.
    pub iterations: usize,
    /// Always true on `Ok` (kept for result logging symmetry).
    pub converged: bool,
    /// Maximum block-temperature change per iteration, K (convergence
    /// trace for the ablation benches).
    pub history: Vec<f64>,
}

impl CosimResult {
    /// Total chip power at the fixed point, W.
    pub fn total_power(&self) -> f64 {
        self.block_powers.iter().sum()
    }

    /// Hottest block temperature, K — `None` for an empty floorplan (the
    /// previous `f64::NEG_INFINITY` sentinel leaked into reports and
    /// would emit invalid JSON through the bench emitters).
    pub fn peak_temperature(&self) -> Option<f64> {
        operator::max_temperature(&self.block_temperatures)
    }
}

/// The coupled power-thermal fixed-point solver.
#[derive(Debug, Clone)]
pub struct ElectroThermalSolver {
    floorplan: Floorplan,
    /// Lateral image order for the thermal model.
    pub lateral_order: usize,
    /// Depth-series order for the thermal model (1 = paper's single
    /// bottom mirror; higher orders model the finite-slab sink better).
    pub z_order: usize,
    /// Under-relaxation factor λ ∈ (0, 1].
    pub damping: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence threshold on the max block-temperature change, K.
    pub tolerance_k: f64,
    /// Runaway ceiling, K (silicon is long dead past ~500 K).
    pub ceiling_k: f64,
}

impl ElectroThermalSolver {
    /// Builds a solver with the defaults used in the experiments:
    /// image order 2, damping 0.7, 200 iterations, 1 mK tolerance, 1000 K
    /// ceiling.
    pub fn new(floorplan: Floorplan) -> Self {
        ElectroThermalSolver {
            floorplan,
            lateral_order: 2,
            z_order: 9,
            damping: 0.7,
            max_iterations: 200,
            tolerance_k: 1e-3,
            ceiling_k: 1000.0,
        }
    }

    /// The floorplan geometry (block powers are owned by the iteration).
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Precomputes this solver's [`ThermalOperator`] (influence matrix at
    /// the solver's image orders). Build it once and hand it to
    /// [`Self::solve_with`] when solving repeatedly on one floorplan.
    pub fn operator(&self) -> ThermalOperator {
        ThermalOperator::with_image_orders(&self.floorplan, self.lateral_order, self.z_order)
    }

    /// Solves for the coupled operating point. `block_power(i, T)` returns
    /// the power of block `i` at temperature `T` — typically dynamic power
    /// plus the strongly temperature-dependent leakage.
    ///
    /// Builds the thermal operator afresh; for repeated solves use
    /// [`Self::solve_with`] with a shared operator and workspace (the
    /// iteration itself is identical, so results match bit for bit).
    ///
    /// # Errors
    ///
    /// See [`CosimError`].
    pub fn solve<F>(&self, block_power: F) -> Result<CosimResult, CosimError>
    where
        F: Fn(usize, f64) -> f64,
    {
        let op = self.operator();
        let mut ws = Workspace::new();
        self.solve_with(&op, &mut ws, block_power)?;
        Ok(CosimResult {
            block_temperatures: ws.temperatures.clone(),
            block_powers: ws.powers.clone(),
            iterations: ws.iterations,
            converged: true,
            history: ws.history.clone(),
        })
    }

    /// Zero-allocation solve against a precomputed operator, at the
    /// floorplan's own sink temperature. See
    /// [`Self::solve_with_ambient`].
    ///
    /// # Errors
    ///
    /// See [`CosimError`].
    pub fn solve_with<F>(
        &self,
        op: &ThermalOperator,
        ws: &mut Workspace,
        block_power: F,
    ) -> Result<(), CosimError>
    where
        F: Fn(usize, f64) -> f64,
    {
        self.solve_with_ambient(op, op.sink_temperature(), ws, block_power)
    }

    /// The core Picard iteration: solves against a precomputed
    /// [`ThermalOperator`] with an explicit ambient (sink) temperature,
    /// reusing `ws`'s buffers so the steady-state loop performs **no heap
    /// allocation**. On success the operating point is left in `ws`
    /// ([`Workspace::temperatures`], [`Workspace::powers`],
    /// [`Workspace::history`]); on error `ws` holds the diverged state.
    ///
    /// The ambient override is what lets a sweep vary ambient temperature
    /// per scenario without rebuilding the operator: the thermal path is
    /// linear, so ambient enters as a pure offset.
    ///
    /// # Errors
    ///
    /// See [`CosimError`].
    ///
    /// # Panics
    ///
    /// Panics if `op` was built for a different block count than this
    /// solver's floorplan.
    pub fn solve_with_ambient<F>(
        &self,
        op: &ThermalOperator,
        ambient_k: f64,
        ws: &mut Workspace,
        block_power: F,
    ) -> Result<(), CosimError>
    where
        F: Fn(usize, f64) -> f64,
    {
        let n = self.floorplan.blocks().len();
        assert_eq!(op.len(), n, "operator/floorplan block-count mismatch");
        ws.reset(n, ambient_k);

        for iteration in 0..self.max_iterations {
            // Power at the current temperature estimate.
            for i in 0..n {
                let p = block_power(i, ws.temperatures[i]);
                if !p.is_finite() || p < 0.0 {
                    return Err(CosimError::BadPower { block: i, power: p });
                }
                ws.powers[i] = p;
            }
            // Closed-form thermal solve: one matrix-vector product.
            op.temperatures_with_sink_into(&ws.powers, ambient_k, &mut ws.fresh);
            // Damped update.
            let mut delta: f64 = 0.0;
            for i in 0..n {
                let next = ws.temperatures[i] + self.damping * (ws.fresh[i] - ws.temperatures[i]);
                delta = delta.max((next - ws.temperatures[i]).abs());
                ws.temperatures[i] = next;
            }
            ws.history.push(delta);
            ws.iterations = iteration + 1;
            let peak = ws.peak_temperature();
            if peak > self.ceiling_k {
                return Err(CosimError::ThermalRunaway {
                    iteration,
                    temperature: peak,
                });
            }
            if delta < self.tolerance_k {
                // Refresh powers at the converged temperatures for the
                // report.
                for i in 0..n {
                    ws.powers[i] = block_power(i, ws.temperatures[i]);
                }
                return Ok(());
            }
        }
        Err(CosimError::NotConverged {
            last_delta: ws.history.last().copied().unwrap_or(f64::NAN),
        })
    }

    /// The pre-operator reference implementation: rebuilds the full
    /// [`ThermalModel`] (image expansion included) every iteration.
    ///
    /// Numerically this agrees with [`Self::solve`] to rounding error; it
    /// is kept as the validation oracle for the operator factoring and as
    /// the honest "cold solve" baseline the `sweep` benchmark measures
    /// against.
    ///
    /// # Errors
    ///
    /// See [`CosimError`].
    pub fn solve_rebuilding<F>(&self, block_power: F) -> Result<CosimResult, CosimError>
    where
        F: Fn(usize, f64) -> f64,
    {
        let n = self.floorplan.blocks().len();
        let sink = self.floorplan.geometry().sink_temperature;
        let mut temperatures = vec![sink; n];
        let mut powers = vec![0.0; n];
        let mut plan = self.floorplan.clone();
        let mut history = Vec::new();

        for iteration in 0..self.max_iterations {
            // Power at the current temperature estimate.
            for i in 0..n {
                let p = block_power(i, temperatures[i]);
                if !p.is_finite() || p < 0.0 {
                    return Err(CosimError::BadPower { block: i, power: p });
                }
                powers[i] = p;
                plan.set_power(i, p);
            }
            // Closed-form thermal solve.
            let model = ThermalModel::with_image_orders(&plan, self.lateral_order, self.z_order);
            let fresh = model.block_center_temperatures();
            // Damped update.
            let mut delta: f64 = 0.0;
            for i in 0..n {
                let next = temperatures[i] + self.damping * (fresh[i] - temperatures[i]);
                delta = delta.max((next - temperatures[i]).abs());
                temperatures[i] = next;
            }
            history.push(delta);
            let peak = operator::max_temperature(&temperatures).unwrap_or(f64::NEG_INFINITY);
            if peak > self.ceiling_k {
                return Err(CosimError::ThermalRunaway {
                    iteration,
                    temperature: peak,
                });
            }
            if delta < self.tolerance_k {
                // Refresh powers at the converged temperatures for the
                // report.
                for i in 0..n {
                    powers[i] = block_power(i, temperatures[i]);
                }
                return Ok(CosimResult {
                    block_temperatures: temperatures,
                    block_powers: powers,
                    iterations: iteration + 1,
                    converged: true,
                    history,
                });
            }
        }
        Err(CosimError::NotConverged {
            last_delta: history.last().copied().unwrap_or(f64::NAN),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::Floorplan;

    fn solver() -> ElectroThermalSolver {
        ElectroThermalSolver::new(Floorplan::paper_three_blocks())
    }

    #[test]
    fn constant_power_converges_to_thermal_solution() {
        let s = solver();
        let result = s.solve(|i, _| [0.35, 0.30, 0.25][i]).unwrap();
        assert!(result.converged);
        // Same temperatures as a one-shot thermal solve.
        let mut plan = s.floorplan().clone();
        for (i, &p) in [0.35, 0.30, 0.25].iter().enumerate() {
            plan.set_power(i, p);
        }
        let direct = ThermalModel::with_image_orders(&plan, 2, 9).block_center_temperatures();
        for (a, b) in result.block_temperatures.iter().zip(&direct) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn leakage_feedback_raises_the_operating_point() {
        let s = solver();
        let flat = s.solve(|_, _| 0.3).unwrap();
        // Leakage doubling every 20 K on top of the same 0.3 W baseline.
        let coupled = s
            .solve(|_, t| 0.3 + 0.05 * ((t - 300.0) / 20.0).exp2())
            .unwrap();
        assert!(coupled.peak_temperature().unwrap() > flat.peak_temperature().unwrap());
        assert!(coupled.total_power() > flat.total_power());
    }

    #[test]
    fn runaway_is_detected() {
        let s = solver();
        // Violent exponential: doubles every 3 K. No fixed point.
        let err = s
            .solve(|_, t| 0.5 * ((t - 300.0) / 3.0).exp2())
            .unwrap_err();
        assert!(matches!(err, CosimError::ThermalRunaway { .. }));
    }

    #[test]
    fn bad_power_is_reported() {
        let s = solver();
        let err = s
            .solve(|i, _| if i == 1 { f64::NAN } else { 0.1 })
            .unwrap_err();
        assert!(matches!(err, CosimError::BadPower { block: 1, .. }));
    }

    #[test]
    fn convergence_history_decreases() {
        let s = solver();
        let result = s
            .solve(|_, t| 0.2 + 0.02 * ((t - 300.0) / 30.0).exp2())
            .unwrap();
        // Geometric-ish decay of the update magnitude.
        let h = &result.history;
        assert!(h.len() >= 3);
        assert!(h.last().unwrap() < &s.tolerance_k);
        assert!(h[0] > *h.last().unwrap());
    }

    #[test]
    fn tight_budget_reports_not_converged() {
        let mut s = solver();
        s.max_iterations = 2;
        s.tolerance_k = 1e-9;
        let err = s.solve(|_, _| 0.3).unwrap_err();
        assert!(matches!(err, CosimError::NotConverged { .. }));
    }

    #[test]
    fn operator_path_matches_the_rebuilding_reference() {
        let s = solver();
        let feedback = |_: usize, t: f64| 0.3 + 0.05 * ((t - 300.0) / 20.0).exp2();
        let fast = s.solve(feedback).unwrap();
        let reference = s.solve_rebuilding(feedback).unwrap();
        // Same closed forms, different summation order: rounding only.
        assert!((fast.iterations as i64 - reference.iterations as i64).abs() <= 1);
        for (a, b) in fast
            .block_temperatures
            .iter()
            .zip(&reference.block_temperatures)
        {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        for (a, b) in fast.block_powers.iter().zip(&reference.block_powers) {
            assert!((a - b).abs() < 1e-9 * b.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn solve_with_reuses_operator_and_workspace_bit_identically() {
        let s = solver();
        let op = s.operator();
        let mut ws = Workspace::new();
        let feedback = |_: usize, t: f64| 0.25 + 0.04 * ((t - 300.0) / 25.0).exp2();
        // A different first solve leaves stale state; reuse must not leak it.
        s.solve_with(&op, &mut ws, |_, _| 0.5).unwrap();
        s.solve_with(&op, &mut ws, feedback).unwrap();
        let oneshot = s.solve(feedback).unwrap();
        assert_eq!(ws.temperatures(), oneshot.block_temperatures.as_slice());
        assert_eq!(ws.powers(), oneshot.block_powers.as_slice());
        assert_eq!(ws.iterations(), oneshot.iterations);
        assert_eq!(ws.history(), oneshot.history.as_slice());
    }

    #[test]
    fn ambient_override_shifts_the_operating_point() {
        let s = solver();
        let op = s.operator();
        let mut ws = Workspace::new();
        // Constant power: the fixed point is linear in ambient.
        s.solve_with_ambient(&op, 320.0, &mut ws, |_, _| 0.3)
            .unwrap();
        let hot = ws.peak_temperature();
        s.solve_with_ambient(&op, 300.0, &mut ws, |_, _| 0.3)
            .unwrap();
        let cold = ws.peak_temperature();
        assert!((hot - cold - 20.0).abs() < 1e-6, "{hot} vs {cold}");
    }

    #[test]
    fn zero_power_chip_sits_at_sink_temperature() {
        let s = solver();
        let r = s.solve(|_, _| 0.0).unwrap();
        for t in &r.block_temperatures {
            assert!((t - 300.0).abs() < 1e-9);
        }
        assert_eq!(r.total_power(), 0.0);
    }
}
