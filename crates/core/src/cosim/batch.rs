//! The GEMM-batched Picard hot path: advancing many scenarios per step.
//!
//! The per-scenario engine solves one fixed point at a time — each Picard
//! iteration is one `n × n` mat-vec plus `n` power-model calls. Batched,
//! `B` scenarios advance together:
//!
//! ```text
//! P[:, 0..B] = power_model(T[:, 0..B])           (elementwise, vectorized)
//! T[:, 0..B] ← T + λ·(R·P + ambient − T)         (one n×n · n×B GEMM)
//! ```
//!
//! The GEMM amortises every load of the influence matrix across `B`
//! lanes ([`Matrix::mul_into`](ptherm_math::Matrix::mul_into)), and the
//! power model evaluates contiguous lanes, which is what lets the Eq. 13
//! exponentials batch ([`ptherm_math::expv`]). Scenario lifetimes differ
//! (8 iterations here, runaway detection after 3 there), so lanes are
//! **masked and refilled**: the moment a lane's scenario converges, runs
//! away or trips the power guard it is retired — dropping out of the
//! per-lane bookkeeping — and the lane is immediately reloaded with the
//! next pending scenario, keeping the batch dense until the sweep runs
//! dry.
//!
//! # Numerical contract
//!
//! Per lane, every operation happens in the same order as the
//! per-scenario oracle ([`ElectroThermalSolver::solve_with_ambient`]):
//! powers in block order, ascending-`k` accumulation in the thermal
//! product, the same damped update, the same guard sequence (bad power →
//! ceiling → tolerance). With a scalar power model and the portable GEMM
//! tier the results are **bit-identical** to the oracle. On FMA hardware
//! the dispatched GEMM fuses multiply-adds (≈1 ULP per term), and
//! batched power models may evaluate their exponentials through
//! [`ptherm_math::expv`] (≤ 5e-13 relative per call) — the fixed point
//! is a contraction, so converged temperatures agree with the oracle to
//! ~1e-9 K and iteration counts match except exactly at a convergence
//! threshold. `docs/PERFORMANCE.md` quantifies this; the sweep tests and
//! the `sweep` bench assert it.

use crate::cosim::sweep::SweepOutcome;
use crate::cosim::{ElectroThermalSolver, ThermalOperator};
use ptherm_math::MultiVec;
use ptherm_par::CancelToken;

/// One scenario start pulled from a [`BatchedSolver::drive`] source:
/// the caller's scenario id, the lane's ambient, and an optional
/// warm-start seed.
///
/// `seed: None` loads the lane cold — every block starts at
/// `ambient_k`, exactly the per-scenario oracle's initial state.
/// `seed: Some(t)` loads block `b` at `t[b].max(ambient_k)` instead
/// (the clamp keeps a seed borrowed from a cooler neighbor physical:
/// Picard iterates from below, so an initial state under ambient would
/// leave the oracle's basin). A seed whose length does not match the
/// operator's block count is ignored and the lane starts cold — a
/// mismatched seed must degrade to correctness, never index out of
/// bounds on a worker thread.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneStart {
    /// The caller's scenario index, echoed back through the sink.
    pub id: usize,
    /// Lane ambient temperature, K.
    pub ambient_k: f64,
    /// Optional per-block initial temperatures, K.
    pub seed: Option<Vec<f64>>,
}

impl LaneStart {
    /// A cold start: every block begins at `ambient_k`.
    pub fn cold(id: usize, ambient_k: f64) -> Self {
        LaneStart {
            id,
            ambient_k,
            seed: None,
        }
    }

    /// A warm start seeded from `seed` (clamped to at least `ambient_k`
    /// per block at load time).
    pub fn warm(id: usize, ambient_k: f64, seed: Vec<f64>) -> Self {
        LaneStart {
            id,
            ambient_k,
            seed: Some(seed),
        }
    }
}

/// Power evaluation over a batch of scenario lanes.
///
/// The solver drives the model through three calls: [`Self::begin_lane`]
/// when a scenario is loaded into a lane, [`Self::fill_powers`] once per
/// Picard step (full batch width — retired lanes may hold stale state
/// and their outputs are ignored), and [`Self::lane_power`] to refresh a
/// converged lane's powers at its final temperatures (this one must match
/// the per-scenario oracle's power model exactly, since the oracle's
/// reported powers come from a plain scalar call).
pub trait BatchPowerModel {
    /// Loads scenario `id` (the caller's index) into `lane`.
    fn begin_lane(&mut self, lane: usize, id: usize);

    /// Writes `powers[block][lane]` from `temps[block][lane]` for the
    /// whole batch. Lanes that never saw [`Self::begin_lane`] may be
    /// skipped; outputs of retired lanes are ignored.
    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec);

    /// Scalar power of `block` at temperature `t` for the scenario
    /// currently loaded in `lane`, or `None` when no scenario was ever
    /// loaded there.
    ///
    /// # Invariant
    ///
    /// The solvers only query lanes they previously passed to
    /// [`Self::begin_lane`], so `None` never surfaces on the hot path;
    /// it exists so an out-of-contract query is a typed, testable
    /// condition instead of a panic inside a worker thread (which would
    /// poison the whole sweep).
    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64>;

    /// Recomputes every block power of `lane` at the converged
    /// temperatures `temps`, writing into `powers` — the final refresh
    /// the oracle performs before reporting. The default loops
    /// [`Self::lane_power`]; vectorized models may override it with the
    /// same batched arithmetic they use in [`Self::fill_powers`].
    /// Querying an empty lane (see [`Self::lane_power`]) writes NaN,
    /// which the power guards surface as `BadPower` instead of silently
    /// reporting a wrong operating point.
    fn refresh_lane(&mut self, lane: usize, temps: &[f64], powers: &mut [f64]) {
        for (block, (&t, p)) in temps.iter().zip(powers.iter_mut()).enumerate() {
            *p = self.lane_power(lane, block, t).unwrap_or(f64::NAN);
        }
    }
}

/// [`BatchPowerModel`] for a plain `power(id, block, T)` closure —
/// bit-identical to calling the closure from the per-scenario loop.
pub struct FnBatchPower<F> {
    f: F,
    lane_id: Vec<Option<usize>>,
}

impl<F: Fn(usize, usize, f64) -> f64> FnBatchPower<F> {
    /// Wraps `f(scenario_id, block, temperature_k) -> W`.
    pub fn new(f: F) -> Self {
        FnBatchPower {
            f,
            lane_id: Vec::new(),
        }
    }
}

impl<F: Fn(usize, usize, f64) -> f64> BatchPowerModel for FnBatchPower<F> {
    fn begin_lane(&mut self, lane: usize, id: usize) {
        if self.lane_id.len() <= lane {
            self.lane_id.resize(lane + 1, None);
        }
        self.lane_id[lane] = Some(id);
    }

    fn fill_powers(&mut self, temps: &MultiVec, powers: &mut MultiVec) {
        for i in 0..temps.rows() {
            for (j, id) in self.lane_id.iter().enumerate() {
                if let Some(id) = id {
                    let p = (self.f)(*id, i, temps.get(i, j));
                    powers.set(i, j, p);
                }
            }
        }
    }

    fn lane_power(&self, lane: usize, block: usize, t: f64) -> Option<f64> {
        let id = self.lane_id.get(lane).copied().flatten()?;
        Some((self.f)(id, block, t))
    }
}

/// Reusable per-worker state for [`BatchedSolver`]: the three `n × B`
/// batch panels plus per-lane bookkeeping. Buffers keep their capacity
/// across [`BatchedSolver::drive`] calls, so a sweep worker allocates
/// only the per-outcome result vectors in steady state.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    temps: MultiVec,
    powers: MultiVec,
    fresh: MultiVec,
    ambient: Vec<f64>,
    delta: Vec<f64>,
    peak: Vec<f64>,
    /// Per-lane running min of the power panel (negative-power detector).
    power_min: Vec<f64>,
    /// Per-lane `Σ p·0` (NaN exactly when some power is non-finite).
    power_poison: Vec<f64>,
    lane_id: Vec<usize>,
    lane_iter: Vec<usize>,
    alive: Vec<bool>,
}

impl BatchWorkspace {
    /// An empty workspace; panels size themselves on first use.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    fn reset(&mut self, blocks: usize, lanes: usize) {
        self.temps.reset(blocks, lanes);
        self.powers.reset(blocks, lanes);
        self.fresh.reset(blocks, lanes);
        self.ambient.clear();
        self.ambient.resize(lanes, 0.0);
        self.delta.clear();
        self.delta.resize(lanes, 0.0);
        self.peak.clear();
        self.peak.resize(lanes, f64::NEG_INFINITY);
        self.power_min.clear();
        self.power_min.resize(lanes, 0.0);
        self.power_poison.clear();
        self.power_poison.resize(lanes, 0.0);
        self.lane_id.clear();
        self.lane_id.resize(lanes, usize::MAX);
        self.lane_iter.clear();
        self.lane_iter.resize(lanes, 0);
        self.alive.clear();
        self.alive.resize(lanes, false);
    }
}

/// Batched fixed-point driver over one solver configuration and one
/// precomputed operator. See the [module docs](self).
///
/// # Example
///
/// ```
/// use ptherm_core::cosim::batch::{BatchWorkspace, BatchedSolver, FnBatchPower};
/// use ptherm_core::cosim::ElectroThermalSolver;
/// use ptherm_floorplan::Floorplan;
///
/// let solver = ElectroThermalSolver::new(Floorplan::paper_three_blocks());
/// let op = solver.operator();
/// let batched = BatchedSolver::new(&solver, &op);
/// // Four scenarios: constant powers scaled by the scenario index.
/// let mut model = FnBatchPower::new(|id, _block, _t| 0.1 * (id + 1) as f64);
/// let outcomes = batched.solve(&[300.0; 4], &mut model, &mut BatchWorkspace::new());
/// assert_eq!(outcomes.len(), 4);
/// assert!(outcomes.iter().all(|o| o.is_converged()));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BatchedSolver<'a> {
    solver: &'a ElectroThermalSolver,
    operator: &'a ThermalOperator,
}

impl<'a> BatchedSolver<'a> {
    /// Couples a solver configuration with its precomputed operator.
    ///
    /// # Panics
    ///
    /// Panics if `operator` was built for a different block count than
    /// `solver`'s floorplan.
    pub fn new(solver: &'a ElectroThermalSolver, operator: &'a ThermalOperator) -> Self {
        assert_eq!(
            operator.len(),
            solver.floorplan().blocks().len(),
            "operator/floorplan block-count mismatch"
        );
        BatchedSolver { solver, operator }
    }

    /// Solves one fixed batch: scenario `id = i` runs at ambient
    /// `ambients[i]`, outcomes return in input order. A convenience
    /// wrapper over [`Self::drive`] with `lanes = ambients.len()`.
    pub fn solve<M: BatchPowerModel + ?Sized>(
        &self,
        ambients: &[f64],
        model: &mut M,
        ws: &mut BatchWorkspace,
    ) -> Vec<SweepOutcome> {
        let b = ambients.len();
        let mut out: Vec<Option<SweepOutcome>> = (0..b).map(|_| None).collect();
        let mut next = 0usize;
        self.drive(
            b,
            model,
            ws,
            None,
            &mut || {
                (next < b).then(|| {
                    let id = next;
                    next += 1;
                    LaneStart::cold(id, ambients[id])
                })
            },
            &mut |id, outcome| out[id] = Some(outcome),
        );
        out.into_iter()
            // lint:allow(panic-freedom) — the closure source yields each id in 0..b exactly once and the sink stores every retired lane
            .map(|o| o.expect("every scenario retired"))
            .collect()
    }

    /// The streaming entry point: pulls [`LaneStart`]s from `source`
    /// into `lanes` solver lanes (clamped to at least 1, so no scenario
    /// can be silently dropped), advances the whole batch one Picard
    /// step at a time, and hands each retired scenario to `sink` as
    /// soon as it resolves. Lanes are refilled immediately, so the
    /// batch stays dense until `source` is exhausted; each worker of a
    /// parallel sweep runs one `drive` against a shared atomic source.
    ///
    /// A `None` from `source` is not final: the source is re-polled on
    /// every later iteration with a free lane, so a warm-start chain
    /// may withhold a successor until its predecessor retires through
    /// the sink. The drive ends when `source` returns `None` while no
    /// lane is in flight.
    pub fn drive<M: BatchPowerModel + ?Sized>(
        &self,
        lanes: usize,
        model: &mut M,
        ws: &mut BatchWorkspace,
        cancel: Option<&CancelToken>,
        source: &mut dyn FnMut() -> Option<LaneStart>,
        sink: &mut dyn FnMut(usize, SweepOutcome),
    ) {
        let operator = self.operator;
        drive_picard(
            self.solver,
            operator.len(),
            lanes,
            model,
            ws,
            cancel,
            source,
            sink,
            // Closed-form thermal solve: one matrix × batch product. The
            // GEMM computes every column, live or not — cheaper than
            // masking, and dead-lane columns never mix into live lanes.
            &mut |powers, fresh, _alive| operator.influence().mul_into(powers, fresh),
        );
    }
}

/// The batched Picard skeleton shared by the dense and spectral
/// backends: lane refill, power evaluation, the damped update and the
/// oracle's guard sequence are all here, so the two backends cannot
/// drift apart in anything but the thermal apply itself. `apply` writes
/// the temperature **rises** `R·P` of (at least) every lane flagged in
/// `alive` into `fresh`; the dense backend passes one GEMM, the
/// spectral backend a per-lane rasterize → FFT → sample pipeline.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_picard<M: BatchPowerModel + ?Sized>(
    solver: &ElectroThermalSolver,
    blocks: usize,
    lanes: usize,
    model: &mut M,
    ws: &mut BatchWorkspace,
    cancel: Option<&CancelToken>,
    source: &mut dyn FnMut() -> Option<LaneStart>,
    sink: &mut dyn FnMut(usize, SweepOutcome),
    apply: &mut dyn FnMut(&MultiVec, &mut MultiVec, &[bool]),
) {
    let lanes = lanes.max(1);
    ws.reset(blocks, lanes);
    let mut pending = 0usize;
    loop {
        // Cooperative-cancellation checkpoint: exactly one poll per
        // Picard iteration (shared by the dense and spectral backends).
        // Live lanes retire as Cancelled carrying their iteration
        // count; scenarios still in `source` are the caller's to
        // account for. A token that never fires costs one relaxed
        // atomic load here and changes no arithmetic.
        if cancel.is_some_and(|token| token.is_cancelled()) {
            for lane in 0..lanes {
                if ws.alive[lane] {
                    ws.alive[lane] = false;
                    sink(
                        ws.lane_id[lane],
                        SweepOutcome::Cancelled {
                            iterations: ws.lane_iter[lane],
                        },
                    );
                }
            }
            return;
        }
        // Refill every free lane. A `None` only ends *this* refill
        // round, not the drive: warm-start chains hold a successor
        // back until its predecessor retires, so the source is
        // re-polled each iteration as long as anything is in flight.
        for lane in 0..lanes {
            if ws.alive[lane] {
                continue;
            }
            match source() {
                Some(start) => {
                    ws.lane_id[lane] = start.id;
                    ws.lane_iter[lane] = 0;
                    ws.alive[lane] = true;
                    ws.ambient[lane] = start.ambient_k;
                    match &start.seed {
                        // A well-formed seed loads per block, clamped
                        // to ambient (see [`LaneStart`]); anything else
                        // degrades to the cold start.
                        Some(seed) if seed.len() == blocks => {
                            for (block, &t) in seed.iter().enumerate() {
                                ws.temps.set(block, lane, t.max(start.ambient_k));
                            }
                        }
                        _ => ws.temps.fill_lane(lane, start.ambient_k),
                    }
                    model.begin_lane(lane, start.id);
                    pending += 1;
                }
                None => break,
            }
        }
        if pending == 0 {
            return;
        }
        step_picard(solver, blocks, model, ws, sink, &mut pending, apply);
    }
}

/// One batched Picard iteration: fill powers, one thermal apply, damped
/// update with per-lane reductions, then classify and retire lanes.
fn step_picard<M: BatchPowerModel + ?Sized>(
    solver: &ElectroThermalSolver,
    blocks: usize,
    model: &mut M,
    ws: &mut BatchWorkspace,
    sink: &mut dyn FnMut(usize, SweepOutcome),
    pending: &mut usize,
    apply: &mut dyn FnMut(&MultiVec, &mut MultiVec, &[bool]),
) {
    let n = blocks;
    let lanes = ws.ambient.len();
    let damping = solver.damping;

    // Power at the current temperature estimates (all lanes).
    model.fill_powers(&ws.temps, &mut ws.powers);

    // Vectorized per-lane poison detection; only flagged lanes pay a
    // precise scan.
    scan_power_poison(&ws.powers, lanes, &mut ws.power_min, &mut ws.power_poison);

    // Backend-specific thermal apply: fresh ← R·powers.
    apply(&ws.powers, &mut ws.fresh, &ws.alive);

    // Damped update with the per-lane max-|ΔT| and peak reductions
    // fused in. Same per-lane arithmetic order as the scalar path;
    // `f64::max` is exact, so the fused reductions lose nothing.
    ws.delta.fill(0.0);
    ws.peak.fill(f64::NEG_INFINITY);
    {
        let delta = &mut ws.delta[..lanes];
        let peak = &mut ws.peak[..lanes];
        let ambient = &ws.ambient[..lanes];
        for i in 0..n {
            let frow = &ws.fresh.component(i)[..lanes];
            let trow = &mut ws.temps.component_mut(i)[..lanes];
            for j in 0..lanes {
                let fresh = frow[j] + ambient[j];
                let prev = trow[j];
                let next = prev + damping * (fresh - prev);
                delta[j] = delta[j].max((next - prev).abs());
                peak[j] = peak[j].max(next);
                trow[j] = next;
            }
        }
    }

    // Classify each live lane with the oracle's guard order: bad
    // power (checked before the thermal solve there, harmless to
    // defer here — a poisoned lane touches only its own column),
    // then the runaway ceiling, then convergence.
    for lane in 0..lanes {
        if !ws.alive[lane] {
            continue;
        }
        let iteration = ws.lane_iter[lane];
        ws.lane_iter[lane] = iteration + 1;
        // lint:allow(float-compare) — exact sentinel: poison stays literal 0.0 until a non-finite write lands (NaN also compares unequal)
        let suspect = ws.power_min[lane] < 0.0 || ws.power_poison[lane] != 0.0;
        let bad = if suspect {
            first_bad_power(&ws.powers, lane)
        } else {
            None
        };
        let outcome = if let Some((block, power)) = bad {
            Some(SweepOutcome::BadPower { block, power })
        } else if ws.peak[lane] > solver.ceiling_k {
            Some(SweepOutcome::Runaway {
                iteration,
                temperature: ws.peak[lane],
            })
        } else if ws.delta[lane] < solver.tolerance_k {
            // Refresh powers at the converged temperatures — the
            // oracle's final call before reporting.
            let mut block_temperatures = vec![0.0; n];
            ws.temps.copy_lane_into(lane, &mut block_temperatures);
            let mut block_powers = vec![0.0; n];
            model.refresh_lane(lane, &block_temperatures, &mut block_powers);
            Some(SweepOutcome::Converged {
                block_temperatures,
                block_powers,
                iterations: iteration + 1,
            })
        } else if iteration + 1 >= solver.max_iterations {
            Some(SweepOutcome::NotConverged {
                last_delta: ws.delta[lane],
            })
        } else {
            None
        };
        if let Some(outcome) = outcome {
            ws.alive[lane] = false;
            *pending -= 1;
            sink(ws.lane_id[lane], outcome);
        }
    }
}

/// Vectorized per-lane bad-power pre-screen shared by the Picard and
/// transient batch solvers: `power_min` tracks the running min over the
/// lane's powers (flags negatives) and `power_poison` accumulates
/// `Σ p·0`, which is NaN exactly when the lane holds a non-finite power.
/// A lane is suspect iff `power_min < 0` or `power_poison != 0`.
pub(crate) fn scan_power_poison(
    powers: &MultiVec,
    lanes: usize,
    power_min: &mut [f64],
    power_poison: &mut [f64],
) {
    let power_min = &mut power_min[..lanes];
    let power_poison = &mut power_poison[..lanes];
    power_min.fill(0.0);
    power_poison.fill(0.0);
    for i in 0..powers.rows() {
        let prow = &powers.component(i)[..lanes];
        for j in 0..lanes {
            let p = prow[j];
            power_min[j] = power_min[j].min(p);
            power_poison[j] += p * 0.0;
        }
    }
}

/// First block whose power is non-finite or negative in `lane`, with the
/// offending value — the batched form of the oracle's per-block guard.
pub(crate) fn first_bad_power(powers: &MultiVec, lane: usize) -> Option<(usize, f64)> {
    let lanes = powers.lanes();
    let data = powers.as_slice();
    for i in 0..powers.rows() {
        let p = data[i * lanes + lane];
        if !p.is_finite() || p < 0.0 {
            return Some((i, p));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::Workspace;
    use ptherm_floorplan::{ChipGeometry, Floorplan};

    fn solver() -> ElectroThermalSolver {
        ElectroThermalSolver::new(Floorplan::paper_three_blocks())
    }

    /// Oracle outcomes via the per-scenario path, same model closure.
    fn oracle<F: Fn(usize, usize, f64) -> f64>(
        s: &ElectroThermalSolver,
        op: &ThermalOperator,
        ambients: &[f64],
        f: F,
    ) -> Vec<SweepOutcome> {
        let mut ws = Workspace::new();
        ambients
            .iter()
            .enumerate()
            .map(|(id, &ambient)| {
                match s.solve_with_ambient(op, ambient, &mut ws, |b, t| f(id, b, t)) {
                    Ok(()) => SweepOutcome::Converged {
                        block_temperatures: ws.temperatures().to_vec(),
                        block_powers: ws.powers().to_vec(),
                        iterations: ws.iterations(),
                    },
                    Err(e) => SweepOutcome::from_error(e),
                }
            })
            .collect()
    }

    fn assert_outcomes_match(got: &[SweepOutcome], want: &[SweepOutcome]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            match (g, w) {
                (
                    SweepOutcome::Converged {
                        block_temperatures: gt,
                        block_powers: gp,
                        iterations: gi,
                    },
                    SweepOutcome::Converged {
                        block_temperatures: wt,
                        block_powers: wp,
                        iterations: wi,
                    },
                ) => {
                    assert_eq!(gi, wi, "scenario {i} iterations");
                    for (a, b) in gt.iter().zip(wt) {
                        assert!((a - b).abs() < 1e-9, "scenario {i}: {a} vs {b}");
                    }
                    for (a, b) in gp.iter().zip(wp) {
                        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "scenario {i}");
                    }
                }
                (
                    SweepOutcome::Runaway {
                        iteration: gi,
                        temperature: gt,
                    },
                    SweepOutcome::Runaway {
                        iteration: wi,
                        temperature: wt,
                    },
                ) => {
                    // Divergence amplifies the ULP-level gap in absolute
                    // terms; relative agreement stays at the contract.
                    assert_eq!(gi, wi, "scenario {i} runaway iteration");
                    assert!(
                        (gt - wt).abs() <= 1e-9 * wt.abs(),
                        "scenario {i}: {gt} vs {wt}"
                    );
                }
                (
                    SweepOutcome::BadPower {
                        block: gb,
                        power: gp,
                    },
                    SweepOutcome::BadPower {
                        block: wb,
                        power: wp,
                    },
                ) => {
                    // Bitwise power comparison: NaN payloads must match too.
                    assert_eq!(gb, wb, "scenario {i} bad block");
                    assert_eq!(gp.to_bits(), wp.to_bits(), "scenario {i} bad power");
                }
                (g, w) => assert_eq!(g, w, "scenario {i}"),
            }
        }
    }

    #[test]
    fn batch_of_one_matches_the_oracle() {
        let s = solver();
        let op = s.operator();
        let f = |_id: usize, _b: usize, t: f64| 0.2 + 0.03 * ((t - 300.0) / 25.0).exp2();
        let got = BatchedSolver::new(&s, &op).solve(
            &[310.0],
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
        );
        assert_outcomes_match(&got, &oracle(&s, &op, &[310.0], f));
    }

    #[test]
    fn all_runaway_batch_retires_every_lane() {
        let s = solver();
        let op = s.operator();
        let f = |_id: usize, _b: usize, t: f64| 0.5 * ((t - 300.0) / 3.0).exp2();
        let got = BatchedSolver::new(&s, &op).solve(
            &[300.0; 5],
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
        );
        assert_eq!(got.len(), 5);
        assert!(got
            .iter()
            .all(|o| matches!(o, SweepOutcome::Runaway { .. })));
        assert_outcomes_match(&got, &oracle(&s, &op, &[300.0; 5], f));
    }

    #[test]
    fn mixed_batch_converges_runs_away_and_reports_bad_power() {
        let s = solver();
        let op = s.operator();
        // id 0 converges, id 1 runs away, id 2 converges after refill
        // pressure, id 3 returns NaN power on block 1.
        let f = |id: usize, b: usize, t: f64| match id {
            1 => 0.5 * ((t - 300.0) / 3.0).exp2(),
            3 if b == 1 => f64::NAN,
            _ => 0.15 * (id + 1) as f64,
        };
        let ambients = [300.0, 300.0, 320.0, 300.0];
        let got = BatchedSolver::new(&s, &op).solve(
            &ambients,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
        );
        assert!(got[0].is_converged());
        assert!(matches!(got[1], SweepOutcome::Runaway { .. }));
        assert!(got[2].is_converged());
        assert!(matches!(
            got[3],
            SweepOutcome::BadPower { block: 1, power: _ }
        ));
        assert_outcomes_match(&got, &oracle(&s, &op, &ambients, f));
    }

    #[test]
    fn empty_floorplan_converges_immediately() {
        let fp = Floorplan::new(ChipGeometry::paper_1mm(), Vec::new()).expect("empty plan");
        let s = ElectroThermalSolver::new(fp);
        let op = s.operator();
        assert!(op.is_empty());
        let got = BatchedSolver::new(&s, &op).solve(
            &[300.0, 350.0],
            &mut FnBatchPower::new(|_, _, _| 0.0),
            &mut BatchWorkspace::new(),
        );
        for o in &got {
            match o {
                SweepOutcome::Converged {
                    block_temperatures,
                    block_powers,
                    iterations,
                } => {
                    assert!(block_temperatures.is_empty());
                    assert!(block_powers.is_empty());
                    assert_eq!(*iterations, 1);
                }
                other => panic!("expected convergence, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let s = solver();
        let op = s.operator();
        let got = BatchedSolver::new(&s, &op).solve(
            &[],
            &mut FnBatchPower::new(|_, _, _| 0.1),
            &mut BatchWorkspace::new(),
        );
        assert!(got.is_empty());
    }

    #[test]
    fn lane_refill_drives_more_scenarios_than_lanes() {
        let s = solver();
        let op = s.operator();
        // 11 scenarios through 3 lanes; iteration counts vary with id.
        let f = |id: usize, _b: usize, t: f64| {
            0.05 + 0.02 * (id % 4) as f64 + 0.02 * ((t - 300.0) / 30.0).exp2()
        };
        let ambients: Vec<f64> = (0..11).map(|i| 295.0 + i as f64).collect();
        let mut out: Vec<Option<SweepOutcome>> = (0..11).map(|_| None).collect();
        let mut next = 0usize;
        let batched = BatchedSolver::new(&s, &op);
        batched.drive(
            3,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
            None,
            &mut || {
                (next < 11).then(|| {
                    let id = next;
                    next += 1;
                    LaneStart::cold(id, ambients[id])
                })
            },
            &mut |id, o| out[id] = Some(o),
        );
        let got: Vec<SweepOutcome> = out.into_iter().map(Option::unwrap).collect();
        assert_outcomes_match(&got, &oracle(&s, &op, &ambients, f));
    }

    #[test]
    fn zero_lane_drive_still_resolves_every_scenario() {
        // `drive` clamps the lane count, so a computed width of 0 cannot
        // silently drop scenarios.
        let s = solver();
        let op = s.operator();
        let mut resolved = 0usize;
        let mut next = 0usize;
        BatchedSolver::new(&s, &op).drive(
            0,
            &mut FnBatchPower::new(|_, _, _| 0.2),
            &mut BatchWorkspace::new(),
            None,
            &mut || {
                (next < 3).then(|| {
                    let id = next;
                    next += 1;
                    LaneStart::cold(id, 300.0)
                })
            },
            &mut |_, outcome| {
                assert!(outcome.is_converged());
                resolved += 1;
            },
        );
        assert_eq!(resolved, 3);
    }

    #[test]
    fn lane_power_on_an_empty_lane_is_none_not_a_panic() {
        // Regression: this used to `expect` and take down the worker
        // thread (and with it the whole sweep). The contract is now a
        // typed None for lanes never loaded, including out-of-range
        // lane indices.
        let f = |id: usize, _b: usize, _t: f64| 0.1 * (id + 1) as f64;
        let mut model = FnBatchPower::new(f);
        assert_eq!(model.lane_power(0, 0, 300.0), None);
        model.begin_lane(2, 7);
        assert_eq!(model.lane_power(0, 0, 300.0), None);
        assert_eq!(model.lane_power(1, 0, 300.0), None);
        assert_eq!(model.lane_power(2, 0, 300.0), Some(0.8));
        assert_eq!(model.lane_power(99, 0, 300.0), None);
        // The default refresh on an empty lane poisons with NaN rather
        // than fabricating powers.
        let mut powers = [0.0; 2];
        model.refresh_lane(0, &[300.0, 300.0], &mut powers);
        assert!(powers.iter().all(|p| p.is_nan()));
    }

    /// Drives a single scenario through `drive` with the given start.
    fn drive_one<F: Fn(usize, usize, f64) -> f64>(
        s: &ElectroThermalSolver,
        op: &ThermalOperator,
        start: LaneStart,
        f: F,
    ) -> SweepOutcome {
        let mut fed = false;
        let mut out = None;
        BatchedSolver::new(s, op).drive(
            1,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
            None,
            &mut || {
                (!fed).then(|| {
                    fed = true;
                    start.clone()
                })
            },
            &mut |_, o| out = Some(o),
        );
        out.expect("scenario retired")
    }

    #[test]
    fn warm_seed_reaches_the_cold_fixed_point_with_fewer_iterations() {
        let s = solver();
        let op = s.operator();
        let f = |_id: usize, _b: usize, t: f64| 0.2 + 0.03 * ((t - 300.0) / 25.0).exp2();
        let cold = drive_one(&s, &op, LaneStart::cold(0, 310.0), f);
        let SweepOutcome::Converged {
            block_temperatures: cold_t,
            iterations: cold_iters,
            ..
        } = &cold
        else {
            panic!("cold run converged, got {cold:?}")
        };
        // Seed the warm run with the cold fixed point itself: it must
        // land on the same temperatures in (far) fewer iterations.
        let warm = drive_one(&s, &op, LaneStart::warm(0, 310.0, cold_t.clone()), f);
        let SweepOutcome::Converged {
            block_temperatures: warm_t,
            iterations: warm_iters,
            ..
        } = &warm
        else {
            panic!("warm run converged, got {warm:?}")
        };
        assert!(*warm_iters < *cold_iters, "{warm_iters} vs {cold_iters}");
        for (a, b) in warm_t.iter().zip(cold_t) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn sub_ambient_and_mismatched_seeds_degrade_to_the_cold_start() {
        let s = solver();
        let op = s.operator();
        let blocks = op.len();
        let f = |_id: usize, _b: usize, t: f64| 0.2 + 0.03 * ((t - 300.0) / 25.0).exp2();
        let cold = drive_one(&s, &op, LaneStart::cold(0, 310.0), f);
        // A seed entirely below ambient clamps to ambient per block —
        // bitwise the cold start.
        let clamped = drive_one(&s, &op, LaneStart::warm(0, 310.0, vec![0.0; blocks]), f);
        assert_eq!(clamped, cold);
        // A seed with the wrong block count is ignored, not indexed.
        let mismatched = drive_one(&s, &op, LaneStart::warm(0, 310.0, vec![500.0]), f);
        assert_eq!(mismatched, cold);
    }

    #[test]
    fn a_chained_source_is_repolled_after_returning_none() {
        // A warm-chain source withholds scenario 1 until scenario 0 has
        // retired; the drive must keep polling instead of latching shut
        // on the first None.
        let s = solver();
        let op = s.operator();
        let f = |_id: usize, _b: usize, _t: f64| 0.2;
        let mut done0 = false;
        let mut fed = [false; 2];
        let mut resolved = 0usize;
        let out0_seen = std::rc::Rc::new(std::cell::Cell::new(false));
        let out0_src = std::rc::Rc::clone(&out0_seen);
        BatchedSolver::new(&s, &op).drive(
            2,
            &mut FnBatchPower::new(f),
            &mut BatchWorkspace::new(),
            None,
            &mut || {
                if !fed[0] {
                    fed[0] = true;
                    return Some(LaneStart::cold(0, 300.0));
                }
                if out0_src.get() && !fed[1] {
                    fed[1] = true;
                    return Some(LaneStart::cold(1, 305.0));
                }
                None
            },
            &mut |id, o| {
                assert!(o.is_converged());
                if id == 0 {
                    done0 = true;
                    out0_seen.set(true);
                }
                resolved += 1;
            },
        );
        assert!(done0);
        assert_eq!(resolved, 2, "the withheld successor must still run");
    }

    #[test]
    fn workspace_is_reusable_across_batches() {
        let s = solver();
        let op = s.operator();
        let batched = BatchedSolver::new(&s, &op);
        let mut ws = BatchWorkspace::new();
        let f = |_id: usize, _b: usize, _t: f64| 0.3;
        let first = batched.solve(&[300.0; 4], &mut FnBatchPower::new(f), &mut ws);
        // Different batch width, stale state must not leak.
        let second = batched.solve(&[300.0; 2], &mut FnBatchPower::new(f), &mut ws);
        assert_eq!(&first[..2], &second[..]);
    }
}
