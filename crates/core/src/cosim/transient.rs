//! Chip-scale batched **transient** electro-thermal solver.
//!
//! The paper's Fig. 9 transient — the RC charging of a thermal
//! capacitance under electro-thermal feedback — scaled from one
//! transistor to the whole floorplan:
//!
//! ```text
//! C dT/dt = P(T, t) − G·(T − T_amb),     G = R⁻¹
//! ```
//!
//! with `R` the steady-state influence matrix ([`ThermalOperator`],
//! Eq. 21 factored) and `C` the diagonal of per-block thermal
//! capacitances ([`crate::thermal::capacitance`]). Writing `u = T −
//! T_amb` and left-multiplying by `R`, the θ-scheme
//! ([`ImplicitScheme`]) collapses to a dense linear recurrence:
//!
//! ```text
//! (A + θI) u⁺ = (A − (1−θ)I) u + R·P̄        A = R·diag(C)/Δt
//!          u⁺ = Φ·u + Q·P̄                  Φ, Q precomputed
//! ```
//!
//! `(A + θI)` is LU-factored **once per (floorplan, C, Δt, scheme)** to
//! build the propagator `Φ` and injection map `Q` — after that every
//! time step is two dense products, with no per-step factorization or
//! stability limit: stiff blocks (small `τ_i = R_ii·C_i`) do not
//! constrain the step, unlike explicit RK4 whose step is capped by the
//! fastest time constant (the [`TransientRk4Reference`] this engine is
//! validated and benchmarked against).
//!
//! # Batching
//!
//! Exactly like the Picard hot path ([`crate::cosim::batch`]), `B`
//! scenario×waveform lanes advance together per time step: the power
//! model fills an `n × B` panel (the Eq. 13 exponentials batch through
//! [`ptherm_math::expv`] via [`BatchPowerModel`]), and the recurrence
//! runs as two `n×n · n×B` GEMMs ([`Matrix::mul_into`]). Per lane the
//! arithmetic order is identical whatever the batch width or worker
//! count, so results are independent of both (bit-identical on the
//! portable GEMM tier, ~ULP on FMA hardware — the same contract as the
//! steady-state batch engine).
//!
//! [`SweepEngine::run_transient`](crate::cosim::SweepEngine::run_transient)
//! shards scenario×waveform grids over worker threads on this path;
//! [`SweepEngine::run_transient_per_scenario`](crate::cosim::SweepEngine::run_transient_per_scenario)
//! is the one-lane-at-a-time oracle and
//! [`SweepEngine::run_transient_rk4`](crate::cosim::SweepEngine::run_transient_rk4)
//! the explicit reference. The `transient` bench bin measures the gap
//! and emits `BENCH_transient.json`; `docs/PERFORMANCE.md` documents
//! the tolerances.

use crate::cosim::batch::{first_bad_power, scan_power_poison, BatchPowerModel};
use crate::cosim::ThermalOperator;
use ptherm_math::ode::{rk4, ImplicitScheme};
use ptherm_math::{Matrix, MultiVec};
use ptherm_par::CancelToken;
use std::fmt;

/// Error building or driving a transient solve.
#[derive(Debug, Clone, PartialEq)]
pub enum TransientError {
    /// The capacitance vector does not match the operator's block count.
    DimensionMismatch {
        /// Operator block count.
        blocks: usize,
        /// Capacitance entries supplied.
        capacitances: usize,
    },
    /// A capacitance is non-finite or not strictly positive (the
    /// chip-scale system needs every block to store heat; the lumped
    /// `ThermalRc` quasi-static limit covers `C = 0`).
    BadCapacitance {
        /// Offending block.
        block: usize,
        /// Offending value, J/K.
        value: f64,
    },
    /// The time step is non-finite or not strictly positive.
    BadStep {
        /// Offending step, s.
        dt: f64,
    },
    /// The implicit system matrix could not be factored (non-physical
    /// influence matrix).
    Singular,
    /// A drive waveform is malformed (mismatched trace lengths,
    /// non-increasing trace times, or a non-positive gating
    /// frequency/duty).
    BadWaveform {
        /// Index into the configured waveform axis.
        index: usize,
        /// Explanation.
        detail: &'static str,
    },
}

impl fmt::Display for TransientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientError::DimensionMismatch {
                blocks,
                capacitances,
            } => write!(
                f,
                "capacitance vector has {capacitances} entries for {blocks} blocks"
            ),
            TransientError::BadCapacitance { block, value } => {
                write!(f, "block {block} capacitance {value} J/K is not positive")
            }
            TransientError::BadStep { dt } => write!(f, "time step {dt} s is not positive"),
            TransientError::Singular => write!(f, "implicit transient matrix is singular"),
            TransientError::BadWaveform { index, detail } => {
                write!(f, "drive waveform {index} is invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for TransientError {}

/// Power-drive waveform multiplying the scenario power model over time —
/// the chip-scale counterpart of the measurement rig's gating
/// (`ptherm-thermal-num`'s 3 Hz square wave, §4.2 / Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub enum DriveWaveform {
    /// Constant full power from `t = 0` (the Fig. 9 step).
    Step,
    /// ON/OFF gating: scale 1 during the ON fraction of each period,
    /// 0 otherwise (the paper gates its device at 3 Hz, duty 0.5).
    SquareWave {
        /// Gating frequency, Hz.
        frequency: f64,
        /// ON duty cycle in (0, 1].
        duty: f64,
    },
    /// Piecewise-linear power trace: `(times, scales)` samples,
    /// linearly interpolated and clamped at the ends. An empty trace is
    /// full power.
    Trace {
        /// Sample times, strictly increasing, s.
        times: Vec<f64>,
        /// Power scale at each sample time.
        scales: Vec<f64>,
    },
}

impl DriveWaveform {
    /// The paper's measurement gating: 3 Hz, 50% duty.
    pub fn paper_gating() -> Self {
        DriveWaveform::SquareWave {
            frequency: 3.0,
            duty: 0.5,
        }
    }

    /// Checks the waveform's invariants: trace `times`/`scales` must be
    /// the same length with strictly increasing times, and square-wave
    /// gating needs a positive finite frequency and a duty in (0, 1].
    /// The engine validates every configured waveform up front
    /// ([`TransientError::BadWaveform`]) so a malformed one is a typed
    /// error at the API boundary, never a panic inside a sweep worker.
    ///
    /// # Errors
    ///
    /// A static description of the violated invariant.
    pub fn validate(&self) -> Result<(), &'static str> {
        match self {
            DriveWaveform::Step => Ok(()),
            DriveWaveform::SquareWave { frequency, duty } => {
                if !frequency.is_finite() || *frequency <= 0.0 {
                    return Err("gating frequency must be positive and finite");
                }
                if !duty.is_finite() || *duty <= 0.0 || *duty > 1.0 {
                    return Err("duty cycle must lie in (0, 1]");
                }
                Ok(())
            }
            DriveWaveform::Trace { times, scales } => {
                if times.len() != scales.len() {
                    return Err("trace times and scales differ in length");
                }
                if times.iter().chain(scales).any(|v| !v.is_finite()) {
                    return Err("trace times and scales must be finite");
                }
                // Times are finite here, so <= is a total comparison.
                if times.iter().zip(times.iter().skip(1)).any(|(a, b)| b <= a) {
                    return Err("trace times must be strictly increasing");
                }
                Ok(())
            }
        }
    }

    /// Power scale at time `t`. Tolerant of malformed traces (it reads
    /// only the zipped `times`/`scales` prefix), but the engine rejects
    /// those up front via [`Self::validate`].
    pub fn scale_at(&self, t: f64) -> f64 {
        match self {
            DriveWaveform::Step => 1.0,
            DriveWaveform::SquareWave { frequency, duty } => {
                let phase = (t * frequency).fract();
                if phase < *duty {
                    1.0
                } else {
                    0.0
                }
            }
            DriveWaveform::Trace { times, scales } => {
                let n = times.len().min(scales.len());
                if n == 0 {
                    return 1.0;
                }
                let (times, scales) = (&times[..n], &scales[..n]);
                // lint:allow(panic-freedom) — `n == 0` returned early above; both slices have exactly n elements
                if t <= times[0] {
                    // lint:allow(panic-freedom) — as above: n >= 1 here
                    return scales[0];
                }
                if t >= times[n - 1] {
                    return scales[n - 1];
                }
                let idx = times.partition_point(|&x| x < t);
                let (t0, t1) = (times[idx - 1], times[idx]);
                let w = (t - t0) / (t1 - t0);
                scales[idx - 1] + w * (scales[idx] - scales[idx - 1])
            }
        }
    }
}

/// Precomputed implicit transient operator of one floorplan at one
/// `(capacitances, Δt, scheme)`: the propagator `Φ` and power-injection
/// map `Q` of the module-level recurrence, built from one LU
/// factorization and shared read-only by every lane and worker.
#[derive(Debug, Clone)]
pub struct TransientOperator {
    /// Rise propagator `Φ = (A + θI)⁻¹(A − (1−θ)I)`, dimensionless.
    phi: Matrix,
    /// Power injection `Q = (A + θI)⁻¹R`, K/W per step.
    q: Matrix,
    capacitances: Vec<f64>,
    dt: f64,
    scheme: ImplicitScheme,
    sink_temperature: f64,
    /// Smallest diagonal block time constant `R_ii·C_i`, s.
    min_tau: Option<f64>,
    /// Content fingerprint: source operator × capacitances × dt × scheme.
    fingerprint: u64,
}

/// Fingerprint of the propagator [`TransientOperator::new`] would build:
/// the source operator's fingerprint mixed with the capacitance vector,
/// the time step and the scheme — every input of the factorization.
/// Computable without factoring, so a cache can decide hit/miss first.
pub fn propagator_fingerprint(
    op: &ThermalOperator,
    capacitances: &[f64],
    dt: f64,
    scheme: ImplicitScheme,
) -> u64 {
    let mut f = ptherm_floorplan::fingerprint::Fingerprinter::new("ptherm.propagator.v1");
    f.write_u64(op.fingerprint());
    f.write_f64_slice(capacitances);
    f.write_f64(dt);
    f.write_u64(match scheme {
        ImplicitScheme::BackwardEuler => 0,
        ImplicitScheme::Trapezoidal => 1,
    });
    f.finish()
}

impl TransientOperator {
    /// Builds the implicit stepping operator.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn new(
        op: &ThermalOperator,
        capacitances: &[f64],
        dt: f64,
        scheme: ImplicitScheme,
    ) -> Result<Self, TransientError> {
        let n = op.len();
        if capacitances.len() != n {
            return Err(TransientError::DimensionMismatch {
                blocks: n,
                capacitances: capacitances.len(),
            });
        }
        if let Some(block) = capacitances
            .iter()
            .position(|c| !c.is_finite() || *c <= 0.0)
        {
            return Err(TransientError::BadCapacitance {
                block,
                value: capacitances[block],
            });
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(TransientError::BadStep { dt });
        }
        let r = op.influence();
        let theta = scheme.theta();
        // A = R·diag(C)/dt; M = A + θI; E = A − (1−θ)I.
        let mut m = Matrix::zeros(n, n);
        let mut e = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let aij = r[(i, j)] * capacitances[j] / dt;
                let delta = if i == j { 1.0 } else { 0.0 };
                m[(i, j)] = aij + theta * delta;
                e[(i, j)] = aij - (1.0 - theta) * delta;
            }
        }
        // One factorization serves every step: Φ and Q are its solves
        // against the E and R columns.
        let (phi, q) = if n == 0 {
            (Matrix::zeros(0, 0), Matrix::zeros(0, 0))
        } else {
            let lu = m.lu().map_err(|_| TransientError::Singular)?;
            let mut phi = Matrix::zeros(n, n);
            let mut q = Matrix::zeros(n, n);
            let mut col = vec![0.0; n];
            let mut sol = vec![0.0; n];
            for j in 0..n {
                for i in 0..n {
                    col[i] = e[(i, j)];
                }
                lu.solve_into(&col, &mut sol)
                    .map_err(|_| TransientError::Singular)?;
                for i in 0..n {
                    phi[(i, j)] = sol[i];
                }
                for i in 0..n {
                    col[i] = r[(i, j)];
                }
                lu.solve_into(&col, &mut sol)
                    .map_err(|_| TransientError::Singular)?;
                for i in 0..n {
                    q[(i, j)] = sol[i];
                }
            }
            (phi, q)
        };
        let min_tau = (0..n).map(|i| r[(i, i)] * capacitances[i]).reduce(f64::min);
        Ok(TransientOperator {
            phi,
            q,
            capacitances: capacitances.to_vec(),
            dt,
            scheme,
            sink_temperature: op.sink_temperature(),
            min_tau,
            fingerprint: propagator_fingerprint(op, capacitances, dt, scheme),
        })
    }

    /// Stable content fingerprint of this propagator (see
    /// [`propagator_fingerprint`]): equal fingerprints imply
    /// bit-identical `Φ`/`Q` factorizations.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.capacitances.len()
    }

    /// True for an empty floorplan.
    pub fn is_empty(&self) -> bool {
        self.capacitances.is_empty()
    }

    /// Time step, s.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Stepping scheme.
    pub fn scheme(&self) -> ImplicitScheme {
        self.scheme
    }

    /// Per-block thermal capacitances, J/K.
    pub fn capacitances(&self) -> &[f64] {
        &self.capacitances
    }

    /// Sink temperature of the source operator, K.
    pub fn sink_temperature(&self) -> f64 {
        self.sink_temperature
    }

    /// Smallest diagonal block time constant `R_ii·C_i`, s — the
    /// stiffness scale an explicit integrator would be capped by;
    /// `None` for an empty floorplan.
    pub fn min_time_constant(&self) -> Option<f64> {
        self.min_tau
    }

    /// The rise propagator `Φ`.
    pub fn propagator(&self) -> &Matrix {
        &self.phi
    }

    /// The power-injection map `Q`, K/W.
    pub fn injection(&self) -> &Matrix {
        &self.q
    }

    /// Drive-evaluation offset into the step — the scheme's shared
    /// forcing-sampling convention ([`ImplicitScheme::forcing_offset`]).
    fn drive_offset(&self) -> f64 {
        self.scheme.forcing_offset(self.dt)
    }

    /// One implicit step for a single scenario, allocation-free:
    /// `out = Φ·rises + Q·powers`. `scratch` must not alias the others.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from [`Self::len`].
    pub fn step_into(&self, rises: &[f64], powers: &[f64], scratch: &mut [f64], out: &mut [f64]) {
        self.phi.mul_vec_into(rises, out);
        self.q.mul_vec_into(powers, scratch);
        for (o, s) in out.iter_mut().zip(scratch.iter()) {
            *o += *s;
        }
    }
}

/// One recorded point of a transient trajectory (decimated by
/// [`TransientConfig::record_stride`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSample {
    /// Time after the drive was applied, s.
    pub time_s: f64,
    /// Hottest block temperature at this time, K (the ambient for an
    /// empty floorplan).
    pub peak_temperature_k: f64,
    /// Total injected power over this step, W.
    pub total_power_w: f64,
}

/// Outcome of one scenario×waveform transient.
#[derive(Debug, Clone, PartialEq)]
pub enum TransientOutcome {
    /// The transient ran to the configured end time.
    Finished {
        /// Block temperatures at the final step, K.
        final_temperatures: Vec<f64>,
        /// Hottest block temperature over the whole transient, K;
        /// `None` for an empty floorplan.
        peak_temperature: Option<f64>,
        /// Time of that peak, s.
        peak_time_s: f64,
        /// Decimated trajectory (empty unless recording was requested).
        samples: Vec<TransientSample>,
    },
    /// The power model returned a non-finite or negative value.
    BadPower {
        /// Step index at which it happened.
        step: usize,
        /// Offending block.
        block: usize,
        /// Offending value, W.
        power: f64,
    },
    /// The temperature crossed the solver ceiling (thermal runaway in
    /// finite time).
    Diverged {
        /// Time at which the ceiling was crossed, s.
        time_s: f64,
        /// Peak temperature reached, K.
        temperature: f64,
    },
    /// The solve was cancelled cooperatively (deadline or explicit
    /// [`CancelToken`]) before this lane
    /// finished.
    Cancelled {
        /// Steps completed before cancellation (0 for lanes never
        /// started).
        step: usize,
    },
}

impl TransientOutcome {
    /// True for [`TransientOutcome::Finished`].
    pub fn is_finished(&self) -> bool {
        matches!(self, TransientOutcome::Finished { .. })
    }

    /// Peak temperature for finished transients, K.
    pub fn peak_temperature(&self) -> Option<f64> {
        match self {
            TransientOutcome::Finished {
                peak_temperature, ..
            } => *peak_temperature,
            _ => None,
        }
    }

    /// Final block temperatures for finished transients.
    pub fn final_temperatures(&self) -> Option<&[f64]> {
        match self {
            TransientOutcome::Finished {
                final_temperatures, ..
            } => Some(final_temperatures),
            _ => None,
        }
    }
}

/// Configuration of one transient sweep: the time grid, scheme, drive
/// waveforms and recording policy.
#[derive(Debug, Clone)]
pub struct TransientConfig {
    /// Time step, s.
    pub dt: f64,
    /// Number of steps (total span `steps · dt`).
    pub steps: usize,
    /// Implicit scheme (default: trapezoidal, second order).
    pub scheme: ImplicitScheme,
    /// Drive waveforms — the second sweep axis; every scenario runs
    /// under every waveform. Empty means a single [`DriveWaveform::Step`].
    pub waveforms: Vec<DriveWaveform>,
    /// Per-block thermal capacitances, J/K; `None` derives silicon
    /// column capacitances from the floorplan geometry
    /// ([`crate::thermal::capacitance::silicon_block_capacitances`]).
    pub capacitances: Option<Vec<f64>>,
    /// Record every `record_stride`-th step into
    /// [`TransientOutcome::Finished::samples`] (0 = record nothing).
    pub record_stride: usize,
}

impl TransientConfig {
    /// A trapezoidal step-drive transient over `steps · dt` seconds with
    /// no trajectory recording.
    pub fn new(dt: f64, steps: usize) -> Self {
        TransientConfig {
            dt,
            steps,
            scheme: ImplicitScheme::Trapezoidal,
            waveforms: Vec::new(),
            capacitances: None,
            record_stride: 0,
        }
    }

    /// Replaces the stepping scheme.
    #[must_use]
    pub fn scheme(mut self, scheme: ImplicitScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Replaces the waveform axis.
    #[must_use]
    pub fn waveforms(mut self, waveforms: Vec<DriveWaveform>) -> Self {
        self.waveforms = waveforms;
        self
    }

    /// Supplies explicit per-block capacitances, J/K.
    #[must_use]
    pub fn capacitances(mut self, capacitances: Vec<f64>) -> Self {
        self.capacitances = Some(capacitances);
        self
    }

    /// Records every `stride`-th step of the trajectory.
    #[must_use]
    pub fn record_stride(mut self, stride: usize) -> Self {
        self.record_stride = stride;
        self
    }

    /// Total simulated span, s.
    pub fn duration(&self) -> f64 {
        self.dt * self.steps as f64
    }

    /// The effective waveform axis — the configured list, or the single
    /// step drive when none was given — with every waveform validated.
    pub(crate) fn effective_waveforms(&self) -> Result<Vec<DriveWaveform>, TransientError> {
        let waveforms = if self.waveforms.is_empty() {
            vec![DriveWaveform::Step]
        } else {
            self.waveforms.clone()
        };
        for (index, w) in waveforms.iter().enumerate() {
            w.validate()
                .map_err(|detail| TransientError::BadWaveform { index, detail })?;
        }
        Ok(waveforms)
    }
}

/// Results of one transient sweep, scenario-major: the outcome of
/// scenario `s` under waveform `w` sits at index `s · waveforms + w`.
#[derive(Debug, Clone)]
pub struct TransientReport {
    /// One outcome per scenario×waveform pair.
    pub outcomes: Vec<TransientOutcome>,
    /// Width of the waveform axis.
    pub waveform_count: usize,
}

impl TransientReport {
    /// Number of transients run.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True for an empty sweep.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Outcome of `scenario` under `waveform`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is out of range.
    pub fn outcome(&self, scenario: usize, waveform: usize) -> &TransientOutcome {
        assert!(waveform < self.waveform_count, "waveform out of range");
        &self.outcomes[scenario * self.waveform_count + waveform]
    }

    /// Transients that ran to the end time.
    pub fn finished_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_finished()).count()
    }

    /// Hottest finished transient across the sweep, K.
    pub fn max_peak_temperature(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(TransientOutcome::peak_temperature)
            .reduce(f64::max)
    }
}

impl fmt::Display for TransientReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transients: {} finished, {} other",
            self.len(),
            self.finished_count(),
            self.len() - self.finished_count()
        )
    }
}

/// Reusable per-worker state for [`TransientBatchedSolver`]: the batch
/// panels plus per-lane bookkeeping. Buffers keep capacity across
/// chunks.
#[derive(Debug, Clone, Default)]
pub struct TransientWorkspace {
    rises: MultiVec,
    temps: MultiVec,
    powers: MultiVec,
    fresh: MultiVec,
    inject: MultiVec,
    ambient: Vec<f64>,
    scale: Vec<f64>,
    power_min: Vec<f64>,
    power_poison: Vec<f64>,
    peak: Vec<f64>,
    peak_time: Vec<f64>,
    alive: Vec<bool>,
    outcomes: Vec<Option<TransientOutcome>>,
    samples: Vec<Vec<TransientSample>>,
    lane_buf: Vec<f64>,
}

impl TransientWorkspace {
    /// An empty workspace; panels size themselves on first use.
    pub fn new() -> Self {
        TransientWorkspace::default()
    }

    fn reset(&mut self, blocks: usize, lanes: usize, sink_k: f64) {
        self.rises.reset(blocks, lanes);
        self.temps.reset(blocks, lanes);
        self.powers.reset(blocks, lanes);
        self.fresh.reset(blocks, lanes);
        self.inject.reset(blocks, lanes);
        self.ambient.clear();
        self.ambient.resize(lanes, sink_k);
        self.scale.clear();
        self.scale.resize(lanes, 1.0);
        self.power_min.clear();
        self.power_min.resize(lanes, 0.0);
        self.power_poison.clear();
        self.power_poison.resize(lanes, 0.0);
        self.peak.clear();
        self.peak.resize(lanes, sink_k);
        self.peak_time.clear();
        self.peak_time.resize(lanes, 0.0);
        self.alive.clear();
        self.alive.resize(lanes, false);
        self.outcomes.clear();
        self.outcomes.resize(lanes, None);
        self.samples.clear();
        self.samples.resize(lanes, Vec::new());
        self.lane_buf.clear();
        self.lane_buf.resize(blocks, 0.0);
        // Idle lanes still flow through the power model and the GEMMs;
        // a sane temperature keeps batched models (1/T terms) finite.
        for lane in 0..lanes {
            self.temps.fill_lane(lane, sink_k);
        }
    }
}

/// Batched implicit transient driver over one [`TransientOperator`].
///
/// Unlike the Picard batch (whose lanes retire at different iterations),
/// every transient lane runs the same fixed number of steps, so a chunk
/// of `B` scenario×waveform pairs advances in lockstep — two GEMMs per
/// step for the whole chunk — with per-lane divergence/bad-power
/// classification along the way.
#[derive(Debug, Clone, Copy)]
pub struct TransientBatchedSolver<'a> {
    op: &'a TransientOperator,
    /// Runaway ceiling, K.
    ceiling_k: f64,
}

/// Per-lane drive description for one chunk.
#[derive(Debug, Clone)]
pub struct TransientLane<'w> {
    /// Ambient (initial and sink) temperature of this lane, K.
    pub ambient_k: f64,
    /// Drive waveform scaling the lane's power model over time.
    pub waveform: &'w DriveWaveform,
}

impl<'a> TransientBatchedSolver<'a> {
    /// Couples the stepping operator with a runaway ceiling.
    pub fn new(op: &'a TransientOperator, ceiling_k: f64) -> Self {
        TransientBatchedSolver { op, ceiling_k }
    }

    /// Advances one chunk of lanes through `steps` implicit steps.
    ///
    /// The batch panels are `width` lanes wide (the power model's batch
    /// width); only the first `lanes.len() <= width` lanes are active —
    /// trailing lanes idle through the arithmetic at the sink
    /// temperature and are ignored. `model` must have
    /// [`BatchPowerModel::begin_lane`] already called for every entry of
    /// `lanes` (lane `j` ↔ `lanes[j]`). Returns one outcome per active
    /// lane, in order.
    ///
    /// # Panics
    ///
    /// Panics if `width < lanes.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_chunk<M: BatchPowerModel + ?Sized>(
        &self,
        width: usize,
        lanes: &[TransientLane<'_>],
        model: &mut M,
        ws: &mut TransientWorkspace,
        steps: usize,
        record_stride: usize,
        cancel: Option<&CancelToken>,
    ) -> Vec<TransientOutcome> {
        assert!(width >= lanes.len(), "chunk wider than the batch panels");
        let n = self.op.len();
        let active = lanes.len();
        let dt = self.op.dt();
        let drive_offset = self.op.drive_offset();
        ws.reset(n, width, self.op.sink_temperature());
        for (j, lane) in lanes.iter().enumerate() {
            ws.ambient[j] = lane.ambient_k;
            ws.alive[j] = true;
            ws.peak[j] = lane.ambient_k;
            ws.temps.fill_lane(j, lane.ambient_k);
        }

        for step in 0..steps {
            // Cooperative-cancellation checkpoint: one poll per
            // transient step; still-running lanes retire as Cancelled
            // at the step they reached.
            if cancel.is_some_and(|token| token.is_cancelled()) {
                for j in 0..width {
                    if ws.alive[j] {
                        ws.alive[j] = false;
                        ws.outcomes[j] = Some(TransientOutcome::Cancelled { step });
                    }
                }
                break;
            }
            let t = dt * step as f64;
            // Power panel at the step-start temperatures, scaled by each
            // lane's drive at the scheme's evaluation time.
            model.fill_powers(&ws.temps, &mut ws.powers);
            for (j, lane) in lanes.iter().enumerate() {
                ws.scale[j] = lane.waveform.scale_at(t + drive_offset);
            }
            {
                let scale = &ws.scale[..width];
                for i in 0..n {
                    let prow = &mut ws.powers.component_mut(i)[..width];
                    for j in 0..width {
                        prow[j] *= scale[j];
                    }
                }
            }
            // Vectorized per-lane poison detection — the helper shared
            // with the Picard batch solver.
            scan_power_poison(&ws.powers, width, &mut ws.power_min, &mut ws.power_poison);
            for j in 0..width {
                // lint:allow(float-compare) — exact sentinel: poison stays literal 0.0 until a non-finite write lands (NaN also compares unequal)
                if ws.alive[j] && (ws.power_min[j] < 0.0 || ws.power_poison[j] != 0.0) {
                    if let Some((block, power)) = first_bad_power(&ws.powers, j) {
                        ws.alive[j] = false;
                        ws.outcomes[j] = Some(TransientOutcome::BadPower { step, block, power });
                    }
                }
            }
            // The implicit step: rises ← Φ·rises + Q·powers, batched.
            self.op.phi.mul_into(&ws.rises, &mut ws.fresh);
            self.op.q.mul_into(&ws.powers, &mut ws.inject);
            {
                let fresh = ws.fresh.as_slice();
                let inject = ws.inject.as_slice();
                let rises = ws.rises.as_mut_slice();
                for (r, (f, q)) in rises.iter_mut().zip(fresh.iter().zip(inject)) {
                    *r = *f + *q;
                }
            }
            // Absolute temperatures for the next power evaluation and
            // the per-lane peak/ceiling bookkeeping.
            let t_next = dt * (step + 1) as f64;
            {
                let ambient = &ws.ambient[..width];
                for i in 0..n {
                    let rrow = &ws.rises.component(i)[..width];
                    let trow = &mut ws.temps.component_mut(i)[..width];
                    for j in 0..width {
                        trow[j] = rrow[j] + ambient[j];
                    }
                }
            }
            for j in 0..width {
                if !ws.alive[j] {
                    continue;
                }
                let mut lane_peak = f64::NEG_INFINITY;
                for i in 0..n {
                    lane_peak = lane_peak.max(ws.temps.get(i, j));
                }
                if n > 0 && lane_peak > ws.peak[j] {
                    ws.peak[j] = lane_peak;
                    ws.peak_time[j] = t_next;
                }
                if n > 0 && lane_peak > self.ceiling_k {
                    ws.alive[j] = false;
                    ws.outcomes[j] = Some(TransientOutcome::Diverged {
                        time_s: t_next,
                        temperature: lane_peak,
                    });
                    continue;
                }
                if record_stride > 0 && (step + 1).is_multiple_of(record_stride) {
                    let mut total = 0.0;
                    for i in 0..n {
                        total += ws.powers.get(i, j);
                    }
                    ws.samples[j].push(TransientSample {
                        time_s: t_next,
                        peak_temperature_k: if n > 0 { lane_peak } else { ws.ambient[j] },
                        total_power_w: total,
                    });
                }
            }
        }

        (0..active)
            .map(|j| {
                if let Some(out) = ws.outcomes[j].take() {
                    return out;
                }
                let mut final_temperatures = vec![0.0; n];
                ws.temps.copy_lane_into(j, &mut final_temperatures);
                TransientOutcome::Finished {
                    final_temperatures,
                    peak_temperature: (n > 0).then_some(ws.peak[j]),
                    peak_time_s: ws.peak_time[j],
                    samples: std::mem::take(&mut ws.samples[j]),
                }
            })
            .collect()
    }

    /// The one-lane oracle: identical per-step arithmetic through the
    /// same `Φ`/`Q` matrices, driven with plain vectors. On the portable
    /// GEMM tier this is bit-identical to the batched path; on FMA
    /// hardware they agree to ~1 ULP per accumulation (the
    /// [`crate::cosim::batch`] contract).
    pub fn solve_single<P>(
        &self,
        ambient_k: f64,
        waveform: &DriveWaveform,
        mut power: P,
        steps: usize,
        record_stride: usize,
    ) -> TransientOutcome
    where
        P: FnMut(usize, f64) -> f64,
    {
        let n = self.op.len();
        let dt = self.op.dt();
        let drive_offset = self.op.drive_offset();
        let mut rises = vec![0.0; n];
        let mut temps = vec![ambient_k; n];
        let mut powers = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        let mut next = vec![0.0; n];
        let mut peak = ambient_k;
        let mut peak_time = 0.0;
        let mut samples = Vec::new();
        for step in 0..steps {
            let t = dt * step as f64;
            let scale = waveform.scale_at(t + drive_offset);
            for i in 0..n {
                let p = power(i, temps[i]) * scale;
                if !p.is_finite() || p < 0.0 {
                    return TransientOutcome::BadPower {
                        step,
                        block: i,
                        power: p,
                    };
                }
                powers[i] = p;
            }
            self.op.step_into(&rises, &powers, &mut scratch, &mut next);
            rises.copy_from_slice(&next);
            let t_next = dt * (step + 1) as f64;
            let mut lane_peak = f64::NEG_INFINITY;
            for i in 0..n {
                temps[i] = rises[i] + ambient_k;
                lane_peak = lane_peak.max(temps[i]);
            }
            if n > 0 && lane_peak > peak {
                peak = lane_peak;
                peak_time = t_next;
            }
            if n > 0 && lane_peak > self.ceiling_k {
                return TransientOutcome::Diverged {
                    time_s: t_next,
                    temperature: lane_peak,
                };
            }
            if record_stride > 0 && (step + 1).is_multiple_of(record_stride) {
                samples.push(TransientSample {
                    time_s: t_next,
                    peak_temperature_k: if n > 0 { lane_peak } else { ambient_k },
                    total_power_w: powers.iter().sum(),
                });
            }
        }
        TransientOutcome::Finished {
            final_temperatures: temps,
            peak_temperature: (n > 0).then_some(peak),
            peak_time_s: peak_time,
            samples,
        }
    }
}

/// Explicit RK4 reference for the chip-scale transient: integrates
/// `du/dt = C⁻¹(P̂(t, u + T_amb) − G·u)` with `G = R⁻¹`, the textbook
/// formulation the implicit engine is validated and benchmarked
/// against. Explicit stability caps its step at the fastest network
/// mode (`h·λ_max ≲ 2.78`), which is exactly the cost the implicit
/// engine avoids.
#[derive(Debug, Clone)]
pub struct TransientRk4Reference {
    /// `G = R⁻¹`, W/K.
    g: Matrix,
    inv_c: Vec<f64>,
    sink_temperature: f64,
}

impl TransientRk4Reference {
    /// Inverts the influence operator and couples it with `capacitances`.
    ///
    /// # Errors
    ///
    /// See [`TransientError`].
    pub fn new(op: &ThermalOperator, capacitances: &[f64]) -> Result<Self, TransientError> {
        let n = op.len();
        if capacitances.len() != n {
            return Err(TransientError::DimensionMismatch {
                blocks: n,
                capacitances: capacitances.len(),
            });
        }
        if let Some(block) = capacitances
            .iter()
            .position(|c| !c.is_finite() || *c <= 0.0)
        {
            return Err(TransientError::BadCapacitance {
                block,
                value: capacitances[block],
            });
        }
        let g = if n == 0 {
            Matrix::zeros(0, 0)
        } else {
            op.influence()
                .inverse()
                .map_err(|_| TransientError::Singular)?
        };
        Ok(TransientRk4Reference {
            g,
            inv_c: capacitances.iter().map(|c| 1.0 / c).collect(),
            sink_temperature: op.sink_temperature(),
        })
    }

    /// Gershgorin upper bound on the fastest network rate `λ_max`
    /// (1/s): `max_i Σ_j |G_ij| / C_i`. Zero for an empty floorplan.
    pub fn lambda_max_bound(&self) -> f64 {
        let n = self.inv_c.len();
        let mut bound: f64 = 0.0;
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..n {
                row += self.g[(i, j)].abs();
            }
            bound = bound.max(row * self.inv_c[i]);
        }
        bound
    }

    /// A stability-safe explicit step count for `duration`: `h·λ_max ≤ 1`
    /// (comfortably inside RK4's ≈2.78 linear stability bound, and
    /// accurate at 4th order). At least one step.
    pub fn stable_steps(&self, duration: f64) -> usize {
        ((duration * self.lambda_max_bound()).ceil() as usize).max(1)
    }

    /// Integrates one scenario with RK4 over `steps` fixed steps,
    /// returning the same outcome shape as the implicit engine (samples
    /// left empty). `power(block, T)` is the scenario power model,
    /// `waveform` the drive.
    pub fn solve<P>(
        &self,
        ambient_k: f64,
        waveform: &DriveWaveform,
        power: P,
        duration: f64,
        steps: usize,
    ) -> TransientOutcome
    where
        P: Fn(usize, f64) -> f64,
    {
        let n = self.inv_c.len();
        if n == 0 || duration <= 0.0 {
            return TransientOutcome::Finished {
                final_temperatures: Vec::new(),
                peak_temperature: None,
                peak_time_s: 0.0,
                samples: Vec::new(),
            };
        }
        let g = &self.g;
        let inv_c = &self.inv_c;
        let traj = rk4(
            move |t, u| {
                let mut du = g.mul_vec(u);
                let scale = waveform.scale_at(t);
                for (i, d) in du.iter_mut().enumerate() {
                    *d = (scale * power(i, u[i] + ambient_k) - *d) * inv_c[i];
                }
                du
            },
            0.0,
            duration,
            &vec![0.0; n],
            steps,
        );
        let mut peak = ambient_k;
        let mut peak_time = 0.0;
        for (t, u) in traj.t.iter().zip(&traj.y) {
            for r in u {
                let temp = r + ambient_k;
                if temp > peak {
                    peak = temp;
                    peak_time = *t;
                }
            }
        }
        // rk4 always records y0, so the fallback (the unexcited t = 0
        // state) is never taken; it replaces a panic site all the same.
        let final_temperatures: Vec<f64> = traj.y.last().map_or_else(
            || vec![ambient_k; n],
            |u| u.iter().map(|r| r + ambient_k).collect(),
        );
        TransientOutcome::Finished {
            final_temperatures,
            peak_temperature: Some(peak),
            peak_time_s: peak_time,
            samples: Vec::new(),
        }
    }

    /// Sink temperature of the source operator, K.
    pub fn sink_temperature(&self) -> f64 {
        self.sink_temperature
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptherm_floorplan::{Block, ChipGeometry, Floorplan};

    /// A single centred block on the paper die.
    fn one_block_plan() -> Floorplan {
        Floorplan::new(
            ChipGeometry::paper_1mm(),
            vec![Block::new("b0", 0.5e-3, 0.5e-3, 0.4e-3, 0.4e-3, 0.0)],
        )
        .expect("valid plan")
    }

    #[test]
    fn one_block_trapezoidal_matches_the_analytic_step_response() {
        // The chip-scale engine on a 1-block floorplan IS the Fig. 9
        // lumped RC: rth = R[0][0], cth = C[0]. Trapezoidal stepping at
        // dt = tau/400 must track rth*P*(1 - e^{-t/tau}) to <= 1e-6
        // relative (second-order error ~ (t/tau)e^{-t/tau}(dt/tau)^2/12).
        let fp = one_block_plan();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let rth = op.influence()[(0, 0)];
        let tau = rth * caps[0];
        let steps = 2000usize;
        let dt = 5.0 * tau / steps as f64; // tau/400
        let top = TransientOperator::new(&op, &caps, dt, ImplicitScheme::Trapezoidal)
            .expect("valid operator");
        let p = 0.3;
        let solver = TransientBatchedSolver::new(&top, 1e6);
        let out = solver.solve_single(300.0, &DriveWaveform::Step, |_, _| p, steps, 1);
        let TransientOutcome::Finished { samples, .. } = out else {
            panic!("finished expected");
        };
        let steady = rth * p;
        for s in &samples {
            let exact = 300.0 + steady * (1.0 - (-s.time_s / tau).exp());
            let gap = (s.peak_temperature_k - exact).abs();
            assert!(
                gap <= 1e-6 * steady,
                "t = {}: {} vs {exact}",
                s.time_s,
                s.peak_temperature_k
            );
        }
    }

    #[test]
    fn backward_euler_converges_first_order_to_the_same_steady_state() {
        let fp = one_block_plan();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let rth = op.influence()[(0, 0)];
        let tau = rth * caps[0];
        let p = 0.3;
        // 20 tau at a coarse dt = tau: BE is unconditionally stable and
        // the steady state is exact for any dt.
        let top = TransientOperator::new(&op, &caps, tau, ImplicitScheme::BackwardEuler)
            .expect("valid operator");
        let solver = TransientBatchedSolver::new(&top, 1e6);
        let out = solver.solve_single(300.0, &DriveWaveform::Step, |_, _| p, 40, 0);
        let finals = out.final_temperatures().expect("finished");
        assert!((finals[0] - (300.0 + rth * p)).abs() < 1e-6 * rth * p);
    }

    #[test]
    fn implicit_steps_are_stable_far_beyond_the_explicit_limit() {
        // dt = 1000x the smallest block tau: explicit RK4 would overflow
        // within a few steps; the implicit engine stays bounded and lands
        // on the steady state.
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let tmin = (0..3)
            .map(|i| op.influence()[(i, i)] * caps[i])
            .fold(f64::INFINITY, f64::min);
        // L-stable backward Euler kills stiff modes even at dt = 1000x
        // the fastest tau; A-stable trapezoidal needs its stiff modes
        // merely bounded (they oscillate with |amplification| < 1), so
        // it runs at 5x tau_min — still ~2x past RK4's 2.78*tau
        // stability bound — for long enough to drain them.
        let cases = [
            (ImplicitScheme::BackwardEuler, 1000.0 * tmin, 200usize),
            (ImplicitScheme::Trapezoidal, 5.0 * tmin, 4000usize),
        ];
        for (scheme, dt, steps) in cases {
            let top = TransientOperator::new(&op, &caps, dt, scheme).expect("valid operator");
            let solver = TransientBatchedSolver::new(&top, 1e6);
            let out = solver.solve_single(
                300.0,
                &DriveWaveform::Step,
                |i, _| 0.1 * (i + 1) as f64,
                steps,
                0,
            );
            let finals = out.final_temperatures().expect("finished");
            let steady = op.temperatures(&[0.1, 0.2, 0.3]);
            for (a, b) in finals.iter().zip(&steady) {
                assert!(a.is_finite());
                assert!((a - b).abs() < 1e-6, "{scheme:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_chunk_matches_the_single_lane_oracle() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let tau = op.influence()[(0, 0)] * caps[0];
        let top = TransientOperator::new(&op, &caps, tau / 10.0, ImplicitScheme::Trapezoidal)
            .expect("valid operator");
        let solver = TransientBatchedSolver::new(&top, 1e6);
        let wave_step = DriveWaveform::Step;
        let wave_gate = DriveWaveform::SquareWave {
            frequency: 1.0 / (20.0 * tau),
            duty: 0.5,
        };
        let lanes = vec![
            TransientLane {
                ambient_k: 300.0,
                waveform: &wave_step,
            },
            TransientLane {
                ambient_k: 320.0,
                waveform: &wave_gate,
            },
            TransientLane {
                ambient_k: 310.0,
                waveform: &wave_step,
            },
        ];
        // Feedback power: leakage-like exponential growth with T.
        let f = |id: usize, b: usize, t: f64| {
            0.05 * (id + 1) as f64 + 0.01 * (b + 1) as f64 * ((t - 300.0) / 40.0).exp2()
        };
        let mut model = crate::cosim::batch::FnBatchPower::new(f);
        for (lane, _) in lanes.iter().enumerate() {
            model.begin_lane(lane, lane);
        }
        let mut ws = TransientWorkspace::new();
        let batched = solver.solve_chunk(lanes.len(), &lanes, &mut model, &mut ws, 400, 40, None);
        for (id, lane) in lanes.iter().enumerate() {
            let single =
                solver.solve_single(lane.ambient_k, lane.waveform, |b, t| f(id, b, t), 400, 40);
            match (&batched[id], &single) {
                (
                    TransientOutcome::Finished {
                        final_temperatures: bt,
                        peak_temperature: bp,
                        samples: bs,
                        ..
                    },
                    TransientOutcome::Finished {
                        final_temperatures: st,
                        peak_temperature: sp,
                        samples: ss,
                        ..
                    },
                ) => {
                    for (a, b) in bt.iter().zip(st) {
                        assert!((a - b).abs() < 1e-9, "lane {id}: {a} vs {b}");
                    }
                    assert!((bp.unwrap() - sp.unwrap()).abs() < 1e-9);
                    assert_eq!(bs.len(), ss.len());
                    for (a, b) in bs.iter().zip(ss) {
                        assert_eq!(a.time_s, b.time_s);
                        assert!((a.peak_temperature_k - b.peak_temperature_k).abs() < 1e-9);
                        assert!((a.total_power_w - b.total_power_w).abs() < 1e-9);
                    }
                }
                other => panic!("mismatched outcomes: {other:?}"),
            }
        }
    }

    #[test]
    fn implicit_operator_agrees_with_the_math_theta_method() {
        // Two assemblies of the same θ-scheme: `ode::theta_method`
        // factors `I − hθA` on the raw Jacobian `A = −C⁻¹R⁻¹`, while
        // `TransientOperator` factors the R-premultiplied form
        // `A' + θI`. Algebraically identical per step, so the results
        // must agree to rounding — this cross-check keeps the two
        // implementations (and their shared forcing-offset convention)
        // from drifting.
        use ptherm_math::ode::theta_method;
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let n = caps.len();
        let g = op.influence().inverse().expect("invertible");
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = -g[(i, j)] / caps[i];
            }
        }
        let powers = [0.1, 0.2, 0.3];
        let tau0 = op.influence()[(0, 0)] * caps[0];
        let steps = 50usize;
        for scheme in [ImplicitScheme::BackwardEuler, ImplicitScheme::Trapezoidal] {
            let dt = 0.7 * tau0;
            let top = TransientOperator::new(&op, &caps, dt, scheme).expect("valid operator");
            let engine_out = TransientBatchedSolver::new(&top, 1e6).solve_single(
                300.0,
                &DriveWaveform::Step,
                |i, _| powers[i],
                steps,
                0,
            );
            let engine_finals = engine_out.final_temperatures().expect("finished");
            let reference = theta_method(
                &a,
                |_, _| (0..n).map(|i| powers[i] / caps[i]).collect(),
                0.0,
                dt * steps as f64,
                &vec![0.0; n],
                steps,
                scheme,
            )
            .expect("valid system");
            let end = reference.y.last().expect("nonempty");
            for (i, (x, u)) in engine_finals.iter().zip(end).enumerate() {
                let y = 300.0 + u;
                assert!((x - y).abs() < 1e-8, "{scheme:?} block {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn malformed_waveforms_are_rejected_as_typed_errors() {
        let bad_trace = DriveWaveform::Trace {
            times: vec![0.0, 1.0],
            scales: vec![0.5],
        };
        assert!(bad_trace.validate().is_err());
        // Tolerant query path: never a panic even on malformed data.
        assert_eq!(bad_trace.scale_at(5.0), 0.5);
        let decreasing = DriveWaveform::Trace {
            times: vec![1.0, 0.5],
            scales: vec![0.1, 0.2],
        };
        assert!(decreasing.validate().is_err());
        assert!(DriveWaveform::SquareWave {
            frequency: 0.0,
            duty: 0.5
        }
        .validate()
        .is_err());
        assert!(DriveWaveform::SquareWave {
            frequency: 3.0,
            duty: 1.5
        }
        .validate()
        .is_err());
        assert!(DriveWaveform::paper_gating().validate().is_ok());
        assert!(DriveWaveform::Step.validate().is_ok());
    }

    #[test]
    fn implicit_engine_matches_the_rk4_reference() {
        // Same continuous system, two discretizations: with dt well under
        // the smallest tau both land on the true trajectory; agreement is
        // limited by the trapezoidal O(dt^2) term (documented tolerance).
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let tmin = (0..3)
            .map(|i| op.influence()[(i, i)] * caps[i])
            .fold(f64::INFINITY, f64::min);
        let duration = 20.0 * tmin;
        let steps = 800usize; // dt = tmin/40
        let dt = duration / steps as f64;
        let top = TransientOperator::new(&op, &caps, dt, ImplicitScheme::Trapezoidal)
            .expect("valid operator");
        let reference = TransientRk4Reference::new(&op, &caps).expect("invertible");
        let power = |b: usize, t: f64| 0.1 * (b + 1) as f64 + 0.02 * ((t - 300.0) / 30.0).exp2();
        let implicit = TransientBatchedSolver::new(&top, 1e6).solve_single(
            305.0,
            &DriveWaveform::Step,
            power,
            steps,
            0,
        );
        let rk_steps = reference.stable_steps(duration).max(steps);
        let explicit = reference.solve(305.0, &DriveWaveform::Step, power, duration, rk_steps);
        let fi = implicit.final_temperatures().expect("finished");
        let fe = explicit.final_temperatures().expect("finished");
        for (a, b) in fi.iter().zip(fe) {
            let rise = b - 305.0;
            assert!((a - b).abs() <= 1e-4 * rise.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn bad_power_and_divergence_are_classified_per_lane() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let tau = op.influence()[(0, 0)] * caps[0];
        let top = TransientOperator::new(&op, &caps, tau, ImplicitScheme::BackwardEuler)
            .expect("valid operator");
        let solver = TransientBatchedSolver::new(&top, 400.0);
        let wave = DriveWaveform::Step;
        let lanes = vec![
            TransientLane {
                ambient_k: 300.0,
                waveform: &wave,
            },
            TransientLane {
                ambient_k: 300.0,
                waveform: &wave,
            },
            TransientLane {
                ambient_k: 300.0,
                waveform: &wave,
            },
        ];
        // Lane 0 finishes; lane 1 reports NaN power at block 1; lane 2
        // heats violently past the 400 K ceiling.
        let f = |id: usize, b: usize, t: f64| match id {
            1 if b == 1 => f64::NAN,
            2 => 50.0 * ((t - 300.0) / 50.0).exp2(),
            _ => 0.1,
        };
        let mut model = crate::cosim::batch::FnBatchPower::new(f);
        for lane in 0..3 {
            model.begin_lane(lane, lane);
        }
        let mut ws = TransientWorkspace::new();
        let out = solver.solve_chunk(lanes.len(), &lanes, &mut model, &mut ws, 100, 0, None);
        assert!(out[0].is_finished());
        assert!(matches!(
            out[1],
            TransientOutcome::BadPower {
                step: 0,
                block: 1,
                ..
            }
        ));
        assert!(matches!(out[2], TransientOutcome::Diverged { .. }));
        // The poisoned/diverged lanes must not contaminate lane 0.
        let finals = out[0].final_temperatures().expect("finished");
        assert!(finals.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn square_wave_cycles_between_heating_and_cooling() {
        let fp = one_block_plan();
        let op = ThermalOperator::new(&fp);
        let caps = crate::thermal::capacitance::silicon_block_capacitances(&fp);
        let rth = op.influence()[(0, 0)];
        let tau = rth * caps[0];
        // Slow gating: each half-period is 10 tau, so the block settles
        // fully both ways, like the paper's 3 Hz scope traces.
        let period = 20.0 * tau;
        let wave = DriveWaveform::SquareWave {
            frequency: 1.0 / period,
            duty: 0.5,
        };
        let steps = 2000usize;
        let dt = period / steps as f64;
        let top = TransientOperator::new(&op, &caps, dt, ImplicitScheme::Trapezoidal)
            .expect("valid operator");
        let p = 0.3;
        let out =
            TransientBatchedSolver::new(&top, 1e6).solve_single(300.0, &wave, |_, _| p, steps, 1);
        let TransientOutcome::Finished { samples, .. } = out else {
            panic!("finished expected");
        };
        let steady = rth * p;
        // End of the ON half-period: fully risen.
        let on_end = samples[steps / 2 - 2].peak_temperature_k - 300.0;
        assert!(
            (on_end - steady).abs() < 0.01 * steady,
            "{on_end} vs {steady}"
        );
        // End of the OFF half-period: fully decayed.
        let off_end = samples[steps - 2].peak_temperature_k - 300.0;
        assert!(off_end < 0.01 * steady, "{off_end}");
    }

    #[test]
    fn trace_waveform_interpolates_and_clamps() {
        let w = DriveWaveform::Trace {
            times: vec![0.0, 1.0, 2.0],
            scales: vec![0.0, 1.0, 0.5],
        };
        assert_eq!(w.scale_at(-1.0), 0.0);
        assert_eq!(w.scale_at(0.5), 0.5);
        assert_eq!(w.scale_at(1.0), 1.0);
        assert!((w.scale_at(1.5) - 0.75).abs() < 1e-15);
        assert_eq!(w.scale_at(5.0), 0.5);
        let empty = DriveWaveform::Trace {
            times: Vec::new(),
            scales: Vec::new(),
        };
        assert_eq!(empty.scale_at(3.0), 1.0);
    }

    #[test]
    fn operator_construction_is_validated() {
        let fp = Floorplan::paper_three_blocks();
        let op = ThermalOperator::new(&fp);
        assert!(matches!(
            TransientOperator::new(&op, &[1.0, 1.0], 1e-3, ImplicitScheme::BackwardEuler),
            Err(TransientError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            TransientOperator::new(&op, &[1.0, 0.0, 1.0], 1e-3, ImplicitScheme::BackwardEuler),
            Err(TransientError::BadCapacitance { block: 1, .. })
        ));
        assert!(matches!(
            TransientOperator::new(&op, &[1.0, 1.0, 1.0], 0.0, ImplicitScheme::BackwardEuler),
            Err(TransientError::BadStep { .. })
        ));
        assert!(matches!(
            TransientRk4Reference::new(&op, &[1.0]),
            Err(TransientError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_floorplan_transient_finishes_trivially() {
        let fp = Floorplan::new(ChipGeometry::paper_1mm(), Vec::new()).expect("empty plan");
        let op = ThermalOperator::new(&fp);
        let top = TransientOperator::new(&op, &[], 1e-3, ImplicitScheme::Trapezoidal)
            .expect("valid operator");
        assert!(top.is_empty());
        assert_eq!(top.min_time_constant(), None);
        let out = TransientBatchedSolver::new(&top, 1e6).solve_single(
            300.0,
            &DriveWaveform::Step,
            |_, _| 0.0,
            10,
            2,
        );
        match out {
            TransientOutcome::Finished {
                final_temperatures,
                peak_temperature,
                ..
            } => {
                assert!(final_temperatures.is_empty());
                assert_eq!(peak_temperature, None);
            }
            other => panic!("expected finished, got {other:?}"),
        }
    }
}
